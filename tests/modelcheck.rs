//! Bounded model checking of the workspace's four concurrency protocols.
//!
//! Gated behind the `loom_model` cargo feature (CI runs
//! `cargo test -p fidelity --features loom_model --test modelcheck`); a
//! plain `cargo test` compiles none of this. Each test drives one of the
//! `modelcheck` modules, which re-express a production protocol against
//! the vendored `loom` shim so every interleaving (or a seeded sample of
//! them, where the space is too large) is executed and its invariants
//! asserted. Failures panic with the decision trace that reproduces the
//! bad schedule.

#![cfg(feature = "loom_model")]

/// Owner-pop vs thief-steal: 2 workers, 3 funneled tasks, exhaustive.
/// No task lost or duplicated in any schedule.
#[test]
fn work_steal_deque_exhaustive() {
    let report = fidelity_par::modelcheck::deque_exhaustive();
    assert!(report.complete, "DFS must exhaust the space: {report:?}");
    assert_eq!(report.truncated, 0, "no schedule may hit the step bound");
    assert!(
        report.executions > 1,
        "the funnel must force at least one real scheduling choice"
    );
}

/// The same deque protocol at 3 workers / 6 tasks, seeded random walks.
#[test]
fn work_steal_deque_random_walk() {
    let report = fidelity_par::modelcheck::deque_random_walk(0xF1DE_117F, 300);
    assert_eq!(report.executions, 300);
    assert_eq!(report.truncated, 0, "walks must terminate within bounds");
}

/// OrderedCommit: out-of-order completions with one failure skip drain to
/// the identical plan-order write log under every schedule.
#[test]
fn ordered_commit_exhaustive() {
    let report = fidelity_core::modelcheck::ordered_commit_exhaustive();
    assert!(report.complete, "DFS must exhaust the space: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// Supervisor single-flight: duplicate submissions attach, never double-
/// enqueue, even with a worker claiming concurrently.
#[test]
fn supervisor_dedup_exhaustive() {
    let report = fidelity_serve::modelcheck::supervisor_dedup_exhaustive();
    assert!(report.complete, "DFS must exhaust the space: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// Supervisor shedding: a full queue always resolves to the high-priority
/// job queued and the low one shed or bounced — never both, never neither.
#[test]
fn supervisor_shed_exhaustive() {
    let report = fidelity_serve::modelcheck::supervisor_shed_exhaustive();
    assert!(report.complete, "DFS must exhaust the space: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// Histogram record/snapshot: a concurrent snapshot never observes more
/// bucketed samples than counted ones.
#[test]
fn histogram_snapshot_exhaustive() {
    let report = fidelity_obs::modelcheck::histogram_exhaustive();
    assert!(report.complete, "DFS must exhaust the space: {report:?}");
    assert_eq!(report.truncated, 0);
}
