//! Multi-core wall-clock scaling of the batched parallel campaign engine.
//!
//! Hardware-gated: set `FIDELITY_MULTICORE=1` on a host with ≥4 hardware
//! threads to assert that 4 workers complete the same batched campaign at
//! least 2× faster than 1 worker. On other hosts (the CI container has a
//! single core, where no wall-clock speedup is physically available) the
//! test reports why it skipped and passes; the *correctness* of the
//! parallel path — bit-identical results at any worker count — is covered
//! unconditionally by `tests/parallel_determinism.rs` and
//! `tests/batched_vs_serial.rs`, and the single-core overhead bound is
//! recorded in EXPERIMENTS.md.

use std::time::{Duration, Instant};

use fidelity::accel::presets;
use fidelity::core::campaign::{CampaignSpec, MacTier, ParallelCampaignRunner};
use fidelity::core::outcome::TopOneMatch;
use fidelity::core::resilience::ResilienceSpec;
use fidelity::dnn::graph::{Engine, Trace};
use fidelity::dnn::precision::Precision;
use fidelity::workloads::classification_suite;

fn deploy() -> (Engine, Trace) {
    let w = classification_suite(42).remove(0);
    let inputs = w.inputs;
    let engine = Engine::new(w.network, Precision::Fp16, std::slice::from_ref(&inputs)).unwrap();
    let trace = engine.trace(&inputs).unwrap();
    (engine, trace)
}

/// Best-of-N wall time of the campaign at a worker count (best-of filters
/// scheduler noise; the units of work are identical by the determinism
/// contract, so best-case is the honest comparison).
fn best_wall(engine: &Engine, trace: &Trace, spec: &CampaignSpec, jobs: usize) -> Duration {
    let cfg = presets::nvdla_like();
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        ParallelCampaignRunner::new(engine, trace, &cfg, &TopOneMatch, spec.clone())
            .with_jobs(jobs)
            .run()
            .unwrap();
        best = best.min(start.elapsed());
    }
    best
}

#[test]
fn four_workers_give_at_least_2x_on_multicore_hosts() {
    if std::env::var("FIDELITY_MULTICORE").as_deref() != Ok("1") {
        eprintln!("skipped: set FIDELITY_MULTICORE=1 on a multi-core host to run");
        return;
    }
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if threads < 4 {
        eprintln!("skipped: host has {threads} hardware threads, need >= 4");
        return;
    }

    let (engine, trace) = deploy();
    let spec = CampaignSpec {
        samples_per_cell: 40,
        seed: 9,
        threads: 1,
        record_events: false,
        target_ci_halfwidth: None,
        resilience: ResilienceSpec::default(),
        progress: None,
        batch: 16,
        mac_tier: MacTier::Bitwise,
        adaptive: None,
    };

    let serial = best_wall(&engine, &trace, &spec, 1);
    let parallel = best_wall(&engine, &trace, &spec, 4);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    eprintln!("multicore scaling: jobs=1 {serial:?}, jobs=4 {parallel:?}, speedup {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "4 workers must be >= 2x serial on a {threads}-thread host, got {speedup:.2}x \
         (jobs=1 {serial:?}, jobs=4 {parallel:?})"
    );
}
