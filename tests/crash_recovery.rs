//! Torn-state recovery properties: a checkpoint or job journal truncated at
//! ANY byte offset — the exact artifact of a crash or `kill -9` mid-write —
//! must yield either a clean resume or a clean, named error. Never a wrong
//! result, never a panic.

use std::sync::OnceLock;

use proptest::prelude::*;

use fidelity::core::campaign::run_campaign;
use fidelity::core::resilience::CheckpointSpec;
use fidelity::serve::journal::{replay_bytes, Journal, JournalEvent, HEADER};
use fidelity::serve::JobSpec;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fidelity-crash-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const SPEC: &str = "{\"network\":\"lstm\",\"samples\":2,\"seed\":13}";

/// The uninterrupted run's checkpoint bytes — the ground truth every
/// recovered run must reproduce exactly.
fn reference_ckpt() -> &'static [u8] {
    static REF: OnceLock<Vec<u8>> = OnceLock::new();
    REF.get_or_init(|| {
        let path = scratch("reference.ckpt");
        run_to_checkpoint(&path).unwrap();
        std::fs::read(&path).unwrap()
    })
}

/// Runs the tiny campaign with its checkpoint at `path` (resuming whatever
/// the file already holds).
fn run_to_checkpoint(path: &std::path::Path) -> Result<(), String> {
    let job = JobSpec::from_json_str(SPEC).unwrap();
    let (engine, trace, metric) = job.deploy().unwrap();
    let accel = fidelity::accel::presets::nvdla_like();
    let mut spec = job.campaign_spec(2);
    spec.resilience.checkpoint = Some(CheckpointSpec::resuming(path));
    run_campaign(&engine, &trace, &accel, metric.as_ref(), &spec)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

fn journal_fixture() -> &'static (Vec<u8>, Vec<JournalEvent>) {
    static FIX: OnceLock<(Vec<u8>, Vec<JournalEvent>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let events = vec![
            JournalEvent::Submit {
                id: "aaaa000011112222".to_owned(),
                spec_json: "{\"network\":\"lstm\",\"samples\":2}".to_owned(),
            },
            JournalEvent::Start {
                id: "aaaa000011112222".to_owned(),
            },
            JournalEvent::Fail {
                id: "aaaa000011112222".to_owned(),
                reason: "line\nbreak and \"quotes\"".to_owned(),
            },
            JournalEvent::Submit {
                id: "bbbb000011112222".to_owned(),
                spec_json: "{\"network\":\"yolo\",\"samples\":3}".to_owned(),
            },
            JournalEvent::Done {
                id: "bbbb000011112222".to_owned(),
                summary_json: "{\"fit_total\":1.5}".to_owned(),
            },
            JournalEvent::Cancel {
                id: "cccc000011112222".to_owned(),
            },
            JournalEvent::Shed {
                id: "dddd000011112222".to_owned(),
            },
        ];
        let path = scratch("journal-fixture.journal");
        let mut j = Journal::create(&path).unwrap();
        for ev in &events {
            j.append(ev).unwrap();
        }
        drop(j);
        (std::fs::read(&path).unwrap(), events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checkpoint truncated at any byte: the resumed campaign either
    /// completes with byte-identical final checkpoint contents, or fails
    /// with a clean checkpoint error. No third outcome.
    #[test]
    fn truncated_checkpoint_resumes_or_errors_cleanly(frac in 0.0f64..1.0) {
        let reference = reference_ckpt();
        let cut = ((reference.len() as f64) * frac) as usize;
        let path = scratch(&format!("truncated-{cut}.ckpt"));
        std::fs::write(&path, &reference[..cut]).unwrap();
        match run_to_checkpoint(&path) {
            Ok(()) => {
                let recovered = std::fs::read(&path).unwrap();
                prop_assert_eq!(
                    recovered.as_slice(),
                    reference,
                    "resume from cut {} diverged",
                    cut
                );
            }
            Err(e) => {
                prop_assert!(
                    e.contains("checkpoint"),
                    "cut {} produced an unnamed error: {}",
                    cut,
                    e
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Journal truncated at any byte: replay yields an exact prefix of the
    /// recorded events (torn tail dropped) or a clean corruption error with
    /// a line number. Never wrong events, never a panic.
    #[test]
    fn truncated_journal_replays_a_prefix_or_errors_cleanly(frac in 0.0f64..1.0) {
        let (bytes, events) = journal_fixture();
        let cut = ((bytes.len() as f64) * frac) as usize;
        match replay_bytes(&bytes[..cut]) {
            Ok(replayed) => {
                prop_assert!(replayed.len() <= events.len());
                prop_assert_eq!(
                    replayed.as_slice(),
                    &events[..replayed.len()],
                    "cut {} replayed non-prefix events",
                    cut
                );
            }
            Err(e) => {
                prop_assert!(
                    e.contains("corrupt journal"),
                    "cut {} produced an unnamed error: {}",
                    cut,
                    e
                );
            }
        }
    }
}

/// Every single-byte boundary of the journal header itself is covered
/// exhaustively — the region proptest sampling can miss.
#[test]
fn journal_header_truncations_all_error_cleanly() {
    let (bytes, _) = journal_fixture();
    for cut in 0..=HEADER.len() + 1 {
        let out = replay_bytes(&bytes[..cut.min(bytes.len())]);
        match out {
            Ok(events) => assert!(events.is_empty(), "cut {cut} invented events"),
            Err(e) => assert!(e.contains("corrupt journal"), "cut {cut}: {e}"),
        }
    }
}
