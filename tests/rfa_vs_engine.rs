//! Integration: Reuse Factor Analysis predictions vs. exhaustive injection
//! sweeps on the register-level engines.
//!
//! The RF derived by Algorithm 1 is the *maximum* number of faulty neurons a
//! single-cycle flip in the target FF can produce. Sweeping every compute
//! cycle of a real engine and measuring the observed faulty-neuron counts
//! must (a) never exceed the RF and (b) actually reach it — otherwise either
//! the analysis or the dataflow description is wrong.

use fidelity::accel::dataflow::{EyerissDataflow, NvdlaDataflow};
use fidelity::core::rfa::reuse_factor_analysis;
use fidelity::dnn::init::uniform_tensor;
use fidelity::dnn::macspec::{ConvSpec, MacSpec};
use fidelity::dnn::precision::{Precision, ValueCodec};
use fidelity::rtl::{
    Disturbance, FaultSite, FfId, RtlEngine, RtlLayer, SysFaultSite, SysFfId, SystolicEngine,
};

fn conv_layer(seed: u64) -> RtlLayer {
    let spec = ConvSpec {
        batch: 1,
        in_c: 2,
        in_h: 6,
        in_w: 6,
        out_c: 6,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        padding: (1, 1),
        dilation: (1, 1),
        groups: 1,
    };
    let codec = ValueCodec::float(Precision::Fp16);
    // Offset inputs away from zero so exponent-bit flips are always visible
    // (a zero operand masks any weight perturbation).
    let input = uniform_tensor(seed, vec![1, 2, 6, 6], 0.5).map(|v| codec.quantize(v + 1.0));
    let weight = uniform_tensor(seed ^ 1, vec![6, 2, 3, 3], 0.25).map(|v| codec.quantize(v + 0.5));
    RtlLayer::new(MacSpec::Conv(spec), input, weight, codec, codec, codec).unwrap()
}

fn max_observed_nvdla(engine: &RtlEngine, ff: FfId, bit: u32) -> usize {
    let mut max = 0;
    for cycle in 0..engine.clean_cycles() {
        let run = engine.run(Disturbance::Ff(FaultSite { ff, bit, cycle }));
        let n = engine
            .clean_output()
            .diff_indices(&run.output, 0.0)
            .unwrap()
            .len();
        max = max.max(n);
    }
    max
}

#[test]
fn nvdla_input_operand_rf_matches_rfa() {
    let lanes = 4;
    let stripe = 4;
    let engine = RtlEngine::new(conv_layer(3), lanes, stripe);
    let df = NvdlaDataflow {
        lanes,
        weight_hold: stripe,
    };
    let rf = reuse_factor_analysis(&df.input_operand_rfa()).unwrap().rf();
    // Exponent-bit flip in the broadcast input register: affects up to
    // `lanes` neurons; output channels = 6 so partial lane groups cap some
    // cycles at 2.
    let observed = max_observed_nvdla(&engine, FfId::InputOperand, 13);
    assert!(observed <= rf, "observed {observed} exceeds RF {rf}");
    assert_eq!(observed, rf, "RF should be reached by some cycle");
}

#[test]
fn nvdla_weight_operand_rf_matches_rfa() {
    let lanes = 4;
    let stripe = 4;
    let engine = RtlEngine::new(conv_layer(4), lanes, stripe);
    let df = NvdlaDataflow {
        lanes,
        weight_hold: stripe,
    };
    let rf = reuse_factor_analysis(&df.weight_operand_rfa())
        .unwrap()
        .rf();
    let observed = max_observed_nvdla(&engine, FfId::WeightOperand { lane: 1 }, 13);
    assert!(observed <= rf);
    assert_eq!(observed, rf);
}

#[test]
fn nvdla_output_rf_is_one() {
    let engine = RtlEngine::new(conv_layer(5), 4, 4);
    let df = NvdlaDataflow {
        lanes: 4,
        weight_hold: 4,
    };
    let rf = reuse_factor_analysis(&df.output_rfa()).unwrap().rf();
    assert_eq!(rf, 1);
    let observed = max_observed_nvdla(&engine, FfId::OutputReg { lane: 2 }, 14);
    assert!(observed <= 1);
}

#[test]
fn systolic_weight_broadcast_rf_matches_rfa() {
    let k = 3;
    let t = 2;
    let engine = SystolicEngine::new(conv_layer(6), k, t);
    let df = EyerissDataflow {
        k,
        channel_reuse: t,
    };
    let rf = reuse_factor_analysis(&df.weight_broadcast_rfa())
        .unwrap()
        .rf();
    let mut observed = 0;
    for cycle in 0..engine.clean_cycles() {
        let run = engine.run(SysFaultSite {
            ff: SysFfId::WeightOperand,
            bit: 13,
            cycle,
        });
        let n = engine
            .clean_output()
            .diff_indices(&run.output, 0.0)
            .unwrap()
            .len();
        observed = observed.max(n);
    }
    assert!(observed <= rf, "observed {observed} exceeds RF {rf}");
    assert_eq!(observed, rf);
}

#[test]
fn systolic_private_input_rf_matches_rfa() {
    let k = 3;
    let t = 2;
    let engine = SystolicEngine::new(conv_layer(7), k, t);
    let df = EyerissDataflow {
        k,
        channel_reuse: t,
    };
    let analysis = reuse_factor_analysis(&df.private_input_rfa()).unwrap();
    let rf = analysis.rf();
    assert_eq!(rf, t);
    let mut observed = 0;
    for cycle in 0..engine.clean_cycles() {
        let run = engine.run(SysFaultSite {
            ff: SysFfId::InputOperand { pe: 0 },
            bit: 13,
            cycle,
        });
        let n = engine
            .clean_output()
            .diff_indices(&run.output, 0.0)
            .unwrap()
            .len();
        observed = observed.max(n);
    }
    assert!(observed <= rf);
    assert_eq!(observed, rf);
}
