//! Integration: the Sec.-IV validation claim as a test — software fault
//! models must match the register-level golden reference with zero
//! mismatches across random fault sites, layer families, and precisions.

use fidelity::core::validate::{random_sites, rtl_layer_for, validate_many};
use fidelity::dnn::graph::Engine;
use fidelity::dnn::init::SplitMix64;
use fidelity::dnn::precision::Precision;
use fidelity::rtl::RtlEngine;
use fidelity::workloads::{classification_suite, transformer_workload};

fn validate_layer(
    workload: fidelity::workloads::Workload,
    layer: &str,
    precision: Precision,
    lanes: usize,
    hold: usize,
    sites: usize,
    seed: u64,
) {
    let name = workload.name.clone();
    let engine = Engine::new(
        workload.network,
        precision,
        std::slice::from_ref(&workload.inputs),
    )
    .unwrap();
    let trace = engine.trace(&workload.inputs).unwrap();
    let node = engine.network().node_index(layer).expect("layer exists");
    let rtl_layer = rtl_layer_for(&engine, &trace, node).expect("lifts to RTL");
    let rtl = RtlEngine::new(rtl_layer, lanes, hold);
    let mut rng = SplitMix64::new(seed);
    let site_list = random_sites(&rtl, sites, &mut rng);
    let report = validate_many(&rtl, &site_list);
    assert!(
        report.mismatches.is_empty(),
        "{name}/{layer}@{precision}: {:#?}",
        &report.mismatches[..report.mismatches.len().min(3)]
    );
    assert_eq!(report.datapath_exact, report.datapath_cases);
    assert_eq!(report.total, sites);
}

#[test]
fn conv_fp16_paper_geometry() {
    let w = classification_suite(42).remove(1); // resnet
    validate_layer(w, "r1_c1", Precision::Fp16, 16, 16, 600, 1);
}

#[test]
fn conv_int8() {
    let w = classification_suite(42).remove(0); // inception
    validate_layer(w, "m0_b1b", Precision::Int8, 16, 16, 400, 2);
}

#[test]
fn conv_int16_small_geometry() {
    let w = classification_suite(42).remove(2); // mobilenet (pointwise conv)
    validate_layer(w, "ds0_pw", Precision::Int16, 4, 8, 400, 3);
}

#[test]
fn dense_fp16() {
    let w = transformer_workload(42);
    validate_layer(w, "enc_ffn1", Precision::Fp16, 16, 16, 400, 4);
}

#[test]
fn attention_matmul_fp16() {
    let w = transformer_workload(42);
    validate_layer(w, "dec_ca_h1_scores", Precision::Fp16, 4, 4, 400, 5);
}

#[test]
fn global_control_failure_rate_is_dominant() {
    let w = classification_suite(42).remove(1);
    let engine = Engine::new(w.network, Precision::Fp16, std::slice::from_ref(&w.inputs)).unwrap();
    let trace = engine.trace(&w.inputs).unwrap();
    let node = engine.network().node_index("r1_c1").unwrap();
    let rtl = RtlEngine::new(rtl_layer_for(&engine, &trace, node).unwrap(), 16, 16);
    let mut rng = SplitMix64::new(6);
    // Sample only global-control sites.
    let inventory: Vec<_> = rtl
        .inventory()
        .into_iter()
        .filter(|(ff, _)| ff.category() == fidelity::accel::ff::FfCategory::GlobalControl)
        .collect();
    let sites: Vec<_> = (0..200)
        .map(|_| {
            let (ff, width) = inventory[rng.next_below(inventory.len() as u64) as usize];
            fidelity::rtl::FaultSite {
                ff,
                bit: rng.next_below(u64::from(width)) as u32,
                cycle: rng.next_below(rtl.clean_cycles()),
            }
        })
        .collect();
    let report = validate_many(&rtl, &sites);
    assert_eq!(report.global_cases, 200);
    // The conservative always-fails model is right for the majority.
    assert!(report.global_failure * 2 > report.global_cases);
}
