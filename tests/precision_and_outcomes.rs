//! Integration: precision / perturbation effects (Key results 4 and 5) and
//! outcome-classification behaviour under deliberately injected extremes.

use fidelity::core::campaign::{run_campaign, CampaignSpec};
use fidelity::core::inject::inject_once;
use fidelity::core::models::SoftwareFaultModel;
use fidelity::core::outcome::{Outcome, TopOneMatch};
use fidelity::dnn::graph::Engine;
use fidelity::dnn::init::SplitMix64;
use fidelity::dnn::macspec::OperandKind;
use fidelity::dnn::precision::Precision;
use fidelity::workloads::classification_suite;

fn spec(samples: usize, events: bool) -> CampaignSpec {
    CampaignSpec {
        samples_per_cell: samples,
        seed: 0xACC,
        record_events: events,
        ..CampaignSpec::default()
    }
}

#[test]
fn fp16_faults_produce_larger_perturbations_than_int8() {
    // The dynamic-range argument behind Key result 4: FP16's exponent bits
    // allow enormous perturbations; the INT8 grid bounds them.
    let accel = fidelity::accel::presets::nvdla_like();
    let mut max_fp16 = 0.0f32;
    let mut max_int8 = 0.0f32;
    for precision in [Precision::Fp16, Precision::Int8] {
        let w = classification_suite(9).remove(1);
        let engine = Engine::new(w.network, precision, std::slice::from_ref(&w.inputs)).unwrap();
        let trace = engine.trace(&w.inputs).unwrap();
        let campaign =
            run_campaign(&engine, &trace, &accel, &TopOneMatch, &spec(80, true)).unwrap();
        let max_pert = campaign
            .cells
            .iter()
            .flat_map(|c| c.events.iter())
            .map(|e| e.max_perturbation)
            .filter(|p| p.is_finite())
            .fold(0.0f32, f32::max);
        match precision {
            Precision::Fp16 => max_fp16 = max_pert,
            _ => max_int8 = max_pert,
        }
    }
    assert!(
        max_fp16 > 10.0 * max_int8,
        "FP16 perturbations ({max_fp16}) should dwarf INT8 ({max_int8})"
    );
}

#[test]
fn large_perturbations_cause_more_output_errors() {
    // Key result 5 as a coarse assertion over recorded single-neuron events.
    let accel = fidelity::accel::presets::nvdla_like();
    let mut small = (0usize, 0usize);
    let mut large = (0usize, 0usize);
    for workload in classification_suite(11) {
        let engine = Engine::new(
            workload.network,
            Precision::Fp16,
            std::slice::from_ref(&workload.inputs),
        )
        .unwrap();
        let trace = engine.trace(&workload.inputs).unwrap();
        let campaign =
            run_campaign(&engine, &trace, &accel, &TopOneMatch, &spec(120, true)).unwrap();
        for event in campaign.cells.iter().flat_map(|c| c.events.iter()) {
            if event.faulty_neurons != 1 {
                continue;
            }
            let err = usize::from(event.outcome == Outcome::OutputError);
            if event.max_perturbation <= 100.0 {
                small = (small.0 + err, small.1 + 1);
            } else {
                large = (large.0 + err, large.1 + 1);
            }
        }
    }
    assert!(small.1 > 50 && large.1 > 10, "need events in both buckets");
    let p_small = small.0 as f64 / small.1 as f64;
    let p_large = large.0 as f64 / large.1 as f64;
    assert!(
        p_large > 2.0 * p_small,
        "large perturbations ({p_large:.3}) should fail much more than small ({p_small:.3})"
    );
}

#[test]
fn before_buffer_weight_fault_can_break_top1() {
    // Direct, deterministic-seeded check that the injection plumbing can
    // actually change the application output: keep injecting until a fault
    // flips the label, then verify the outcome classification agrees.
    let w = classification_suite(5).remove(0);
    let engine = Engine::new(w.network, Precision::Fp16, std::slice::from_ref(&w.inputs)).unwrap();
    let trace = engine.trace(&w.inputs).unwrap();
    let node = engine.network().node_index("stem").unwrap();
    let mut rng = SplitMix64::new(1);
    let mut saw_error = false;
    for _ in 0..400 {
        let inj = inject_once(
            &engine,
            &trace,
            node,
            SoftwareFaultModel::BeforeBuffer {
                kind: OperandKind::Weight,
            },
            &TopOneMatch,
            &mut rng,
        )
        .unwrap();
        if inj.outcome == Outcome::OutputError {
            let final_out = inj.final_output.expect("completed run has output");
            assert_ne!(final_out.argmax(), trace.output.argmax());
            saw_error = true;
            break;
        }
    }
    assert!(saw_error, "no output error in 400 weight-memory faults");
}

#[test]
fn int8_outcomes_differ_from_fp16_under_same_seed() {
    let accel = fidelity::accel::presets::nvdla_like();
    let masked_frac = |precision| {
        let w = classification_suite(13).remove(2);
        let engine = Engine::new(w.network, precision, std::slice::from_ref(&w.inputs)).unwrap();
        let trace = engine.trace(&w.inputs).unwrap();
        let campaign =
            run_campaign(&engine, &trace, &accel, &TopOneMatch, &spec(60, false)).unwrap();
        let (masked, total) = campaign
            .cells
            .iter()
            .filter(|c| c.category != fidelity::accel::ff::FfCategory::GlobalControl)
            .fold((0, 0), |(m, t), c| (m + c.masked, t + c.samples));
        masked as f64 / total as f64
    };
    let fp16 = masked_frac(Precision::Fp16);
    let int8 = masked_frac(Precision::Int8);
    // Both deployments mask most faults, but not identically.
    assert!(fp16 > 0.3 && int8 > 0.3);
    assert_ne!(fp16, int8);
}
