//! Integration: Reuse Factor Analysis reproduces every hand-derived number
//! in the paper's Fig. 2 and respects the Datapath RF properties of
//! Sec. III-B.

use fidelity::accel::dataflow::{EyerissDataflow, NvdlaDataflow};
use fidelity::core::rfa::{local_control_rfa, reuse_factor_analysis};
use fidelity::dnn::init::SplitMix64;

#[test]
fn paper_fig2a_numbers() {
    let df = NvdlaDataflow::paper_config();
    assert_eq!(df.lanes, 16);
    assert_eq!(df.weight_hold, 16);
    assert_eq!(reuse_factor_analysis(&df.example_a1()).unwrap().rf(), 16);
    assert_eq!(reuse_factor_analysis(&df.example_a2()).unwrap().rf(), 16);
    assert_eq!(reuse_factor_analysis(&df.example_a3()).unwrap().rf(), 1);
    assert_eq!(reuse_factor_analysis(&df.example_a4()).unwrap().rf(), 16);
}

#[test]
fn paper_fig2b_numbers() {
    for (k, t) in [(4usize, 4usize), (12, 16), (3, 7)] {
        let df = EyerissDataflow {
            k,
            channel_reuse: t,
        };
        assert_eq!(reuse_factor_analysis(&df.example_b1()).unwrap().rf(), k);
        assert_eq!(reuse_factor_analysis(&df.example_b2()).unwrap().rf(), k * t);
        assert_eq!(reuse_factor_analysis(&df.example_b3()).unwrap().rf(), 1);
    }
}

#[test]
fn rf_property_4_monotone_along_pipeline() {
    // A FF cannot drive another FF with a higher RF: a1 >= a2 >= a3 along
    // the weight flow, for several geometries.
    for (lanes, hold) in [(4usize, 4usize), (16, 16), (8, 32)] {
        let df = NvdlaDataflow {
            lanes,
            weight_hold: hold,
        };
        let a1 = reuse_factor_analysis(&df.example_a1()).unwrap().rf();
        let a2 = reuse_factor_analysis(&df.example_a2()).unwrap().rf();
        let a3 = reuse_factor_analysis(&df.example_a3()).unwrap().rf();
        assert!(a1 >= a2 && a2 >= a3, "lanes={lanes}, hold={hold}");
    }
}

#[test]
fn rf_equals_unique_faulty_neurons() {
    let df = EyerissDataflow {
        k: 6,
        channel_reuse: 5,
    };
    let r = reuse_factor_analysis(&df.example_b2()).unwrap();
    let unique: std::collections::HashSet<_> = r.faulty_neurons.iter().map(|t| t.neuron).collect();
    assert_eq!(unique.len(), r.rf());
}

#[test]
fn a2_effective_sample_is_suffix_of_hold_window() {
    let df = NvdlaDataflow {
        lanes: 4,
        weight_hold: 16,
    };
    let r = reuse_factor_analysis(&df.example_a2()).unwrap();
    let mut rng = SplitMix64::new(3);
    for _ in 0..100 {
        let eff = r.sample_effective(&mut rng);
        // Effective neurons are a contiguous suffix of the width offsets.
        let widths: Vec<i32> = eff.iter().map(|n| n.width).collect();
        for pair in widths.windows(2) {
            assert_eq!(pair[1], pair[0] + 1);
        }
        assert_eq!(*widths.last().unwrap(), 15);
    }
}

#[test]
fn local_control_coupling_sums_rf() {
    let df = NvdlaDataflow {
        lanes: 8,
        weight_hold: 4,
    };
    let a3 = reuse_factor_analysis(&df.example_a3()).unwrap();
    let a4 = reuse_factor_analysis(&df.example_a4()).unwrap();
    // Disjoint sets would sum; a3's neuron is inside a4's set, so the union
    // is just a4's RF.
    let combined = local_control_rfa(&[&a3, &a4]);
    assert_eq!(combined.rf(), 8);
    let alone = local_control_rfa(&[&a3]);
    assert_eq!(alone.rf(), 1);
}
