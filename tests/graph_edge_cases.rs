//! Integration: graph executor edge cases and failure paths that campaigns
//! rely on but rarely hit with the standard workloads.

use fidelity::dnn::graph::{Engine, NetworkBuilder};
use fidelity::dnn::init::uniform_tensor;
use fidelity::dnn::layers::{Activation, ActivationKind, Add, Concat, Dense, MatMul};
use fidelity::dnn::precision::Precision;
use fidelity::dnn::tensor::Tensor;
use fidelity::dnn::DnnError;

fn dense(name: &str, seed: u64, out_f: usize, in_f: usize) -> Dense {
    Dense::new(name, uniform_tensor(seed, vec![out_f, in_f], 0.5)).unwrap()
}

#[test]
fn multiple_graph_inputs_bind_in_order() {
    let net = NetworkBuilder::new("two-in")
        .input("a")
        .input("b")
        .layer(MatMul::new("mm"), &["a", "b"])
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
    let a = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]).unwrap();
    let b = Tensor::from_vec(vec![3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
    let y = engine.forward(&[a.clone(), b.clone()]).unwrap();
    assert_eq!(y.data(), &[4.0, 5.0]);
    // Swapped binding is a shape error, not a silent transpose.
    assert!(engine.forward(&[b, a]).is_err());
}

#[test]
fn wrong_input_count_is_reported() {
    let net = NetworkBuilder::new("t")
        .input("x")
        .layer(dense("fc", 1, 2, 2), &["x"])
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
    match engine.forward(&[]) {
        Err(DnnError::ArityMismatch {
            expected, actual, ..
        }) => {
            assert_eq!((expected, actual), (1, 0));
        }
        other => panic!("expected arity error, got {other:?}"),
    }
}

#[test]
fn resume_at_first_and_last_node() {
    let net = NetworkBuilder::new("chain")
        .input("x")
        .layer(dense("fc1", 1, 3, 3), &["x"])
        .unwrap()
        .layer(Activation::new("relu", ActivationKind::Relu), &["fc1"])
        .unwrap()
        .layer(dense("fc2", 2, 3, 3), &["relu"])
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
    let x = uniform_tensor(9, vec![1, 3], 1.0);
    let trace = engine.trace(&[x]).unwrap();

    // Resume at the first node with the unmodified output = clean result.
    let same = engine
        .resume(&trace, 0, trace.node_outputs[0].clone())
        .unwrap();
    assert_eq!(same.data(), trace.output.data());

    // Resume at the last node replaces the final output entirely.
    let replaced = Tensor::from_vec(vec![1, 3], vec![5.0, 6.0, 7.0]).unwrap();
    let y = engine.resume(&trace, 2, replaced.clone()).unwrap();
    assert_eq!(y.data(), replaced.data());
}

#[test]
fn resume_rejects_bad_node() {
    let net = NetworkBuilder::new("t")
        .input("x")
        .layer(dense("fc", 1, 2, 2), &["x"])
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
    let x = uniform_tensor(1, vec![1, 2], 1.0);
    let trace = engine.trace(&[x]).unwrap();
    let err = engine
        .resume(&trace, 5, Tensor::zeros(vec![1, 2]))
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn fan_out_consumer_sees_one_producer_output() {
    // One producer feeding three consumers through concat: corrupting the
    // producer's output reaches all of them exactly once.
    let net = NetworkBuilder::new("fan")
        .input("x")
        .layer(dense("prod", 3, 2, 2), &["x"])
        .unwrap()
        .layer(Activation::new("a1", ActivationKind::Relu), &["prod"])
        .unwrap()
        .layer(Activation::new("a2", ActivationKind::Tanh), &["prod"])
        .unwrap()
        .layer(Add::new("mix"), &["a1", "a2"])
        .unwrap()
        .layer(Concat::new("cat", 1), &["mix", "prod"])
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
    let x = uniform_tensor(2, vec![1, 2], 1.0);
    let trace = engine.trace(&[x]).unwrap();
    let mut corrupted = trace.node_outputs[0].clone();
    corrupted.data_mut()[0] += 10.0;
    let y = engine.resume(&trace, 0, corrupted).unwrap();
    // Both halves of the concat changed relative to clean.
    let clean = &trace.output;
    assert_ne!(y.at2(0, 0), clean.at2(0, 0)); // via mix
    assert_ne!(y.at2(0, 2), clean.at2(0, 2)); // via direct prod
}

#[test]
fn calibration_uses_all_samples() {
    // Two calibration samples with very different ranges: the INT8 scale
    // must cover the larger one.
    let net = NetworkBuilder::new("t")
        .input("x")
        .layer(dense("fc", 4, 2, 2), &["x"])
        .unwrap()
        .build()
        .unwrap();
    let small = vec![Tensor::from_vec(vec![1, 2], vec![0.1, 0.1]).unwrap()];
    let large = vec![Tensor::from_vec(vec![1, 2], vec![50.0, -50.0]).unwrap()];
    let engine = Engine::new(net, Precision::Int8, &[small.clone(), large.clone()]).unwrap();
    // The large sample must survive quantization roughly intact.
    let y = engine.forward(&large).unwrap();
    assert!(y.max_abs() > 1.0, "large-range sample was crushed: {y:?}");
    // Per-input codec covers ±50.
    assert!(engine.input_codec(0).max_magnitude() >= 49.0);
}

#[test]
fn quantized_weights_are_on_grid() {
    let net = NetworkBuilder::new("t")
        .input("x")
        .layer(dense("fc", 4, 3, 3), &["x"])
        .unwrap()
        .build()
        .unwrap();
    let cal = vec![uniform_tensor(5, vec![1, 3], 1.0)];
    let engine = Engine::new(net, Precision::Int8, &[cal]).unwrap();
    let codec = engine.weight_codec(0, 0).unwrap();
    for &w in engine.network().layer(0).weights()[0].data() {
        assert_eq!(codec.quantize(w), w, "weight {w} off the INT8 grid");
    }
}
