//! Property tests for the parallel campaign engine: for random small
//! campaigns, per-cell outcomes, masking probabilities, and checkpoint bytes
//! must be identical to the serial run for every worker count — including
//! under injected cell panics and after a mid-campaign kill/resume.
//!
//! This is the determinism contract of `ParallelCampaignRunner`: every cell
//! derives its RNG stream from `(campaign seed, cell id)` alone, shared
//! accounting is commutative, and checkpoint records pass through the
//! ordered commit buffer. Nothing observable may depend on scheduling.

use std::path::PathBuf;

use fidelity::accel::ff::FfCategory;
use fidelity::accel::presets;
use fidelity::core::adaptive::AdaptivePlan;
use fidelity::core::campaign::{
    run_campaign, CampaignResult, CampaignSpec, CellStats, MacTier, ParallelCampaignRunner,
};
use fidelity::core::outcome::TopOneMatch;
use fidelity::core::resilience::{ChaosMode, ChaosSpec, CheckpointSpec, ResilienceSpec};
use fidelity::dnn::graph::{Engine, NetworkBuilder, Trace};
use fidelity::dnn::init::uniform_tensor;
use fidelity::dnn::layers::{Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool};
use fidelity::dnn::precision::Precision;
use proptest::prelude::*;

/// Worker counts every property is checked against (serial first). The CI
/// matrix appends an extra count via `FIDELITY_JOBS`.
fn job_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 8];
    if let Some(extra) = std::env::var("FIDELITY_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn tiny_engine(weight_seed: u64) -> (Engine, Trace) {
    let net = NetworkBuilder::new("clf")
        .input("x")
        .layer(
            Conv2d::new("conv", uniform_tensor(weight_seed, vec![4, 2, 3, 3], 0.6))
                .unwrap()
                .with_padding(1, 1),
            &["x"],
        )
        .unwrap()
        .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
        .unwrap()
        .layer(GlobalAvgPool::new("gap"), &["relu"])
        .unwrap()
        .layer(Flatten::new("flat"), &["gap"])
        .unwrap()
        .layer(
            Dense::new("fc", uniform_tensor(weight_seed ^ 1, vec![5, 4], 0.6)).unwrap(),
            &["flat"],
        )
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
    let x = uniform_tensor(weight_seed ^ 2, vec![1, 2, 6, 6], 1.0);
    let trace = engine.trace(&[x]).unwrap();
    (engine, trace)
}

/// A per-test scratch path that is removed on drop, pass or fail.
struct ScratchCkpt(PathBuf);

impl ScratchCkpt {
    fn new(tag: &str) -> Self {
        ScratchCkpt(
            std::env::temp_dir().join(format!("fidelity_pardet_{tag}_{}.ckpt", std::process::id())),
        )
    }
}

impl Drop for ScratchCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Everything observable about a cell, floats as exact bit patterns.
fn cell_key(c: &CellStats) -> String {
    let events: Vec<String> = c
        .events
        .iter()
        .map(|e| {
            format!(
                "{}:{:08x}:{:?}",
                e.faulty_neurons,
                e.max_perturbation.to_bits(),
                e.outcome
            )
        })
        .collect();
    format!(
        "{} {} {:?} {:?} s={} m={} oe={} an={} p={} ev={}",
        c.node,
        c.layer,
        c.category,
        c.model,
        c.samples,
        c.masked,
        c.output_error,
        c.anomaly,
        c.prob_swmask().to_bits(),
        events.join(",")
    )
}

/// The full observable surface of a campaign result: every cell (including
/// masking probability bits) plus every failure, in order.
fn result_key(r: &CampaignResult) -> Vec<String> {
    let mut keys: Vec<String> = r.cells.iter().map(cell_key).collect();
    keys.extend(r.failures.iter().map(|f| {
        format!(
            "FAIL {} {} {:?} attempts={} samples={} reason={}",
            f.node, f.layer, f.category, f.attempts, f.samples_completed, f.reason
        )
    }));
    keys
}

/// Runs the same spec at a given job count with its own checkpoint file and
/// returns (result surface, checkpoint bytes).
fn run_at(
    engine: &Engine,
    trace: &Trace,
    spec: &CampaignSpec,
    jobs: usize,
    tag: &str,
) -> (Vec<String>, Vec<u8>) {
    let cfg = presets::nvdla_like();
    let ckpt = ScratchCkpt::new(&format!("{tag}_{jobs}"));
    let mut spec = spec.clone();
    spec.resilience.checkpoint = Some(CheckpointSpec::new(&ckpt.0));
    let result = ParallelCampaignRunner::new(engine, trace, &cfg, &TopOneMatch, spec)
        .with_jobs(jobs)
        .run()
        .unwrap();
    let bytes = std::fs::read(&ckpt.0).unwrap();
    (result_key(&result), bytes)
}

/// The checkpoint's records as `(plan index, canonical serialized record)`,
/// in file order — the unit the ordered-commit guarantees are stated in.
fn records(bytes: &[u8]) -> Vec<(usize, Vec<u8>)> {
    let parsed = fidelity::core::resilience::parse_checkpoint(std::io::BufReader::new(bytes))
        .expect("checkpoint must parse");
    parsed
        .cells
        .into_iter()
        .map(|(idx, stats)| {
            let mut buf = Vec::new();
            fidelity::core::resilience::write_cell(&mut buf, idx, &stats).unwrap();
            (idx, buf)
        })
        .collect()
}

/// First and last non-global cells of a clean run — chaos victims (global
/// cells never enter the injection loop, so chaos cannot fire there).
fn victims(engine: &Engine, trace: &Trace, spec: &CampaignSpec) -> Vec<(usize, FfCategory)> {
    let cfg = presets::nvdla_like();
    let clean = run_campaign(engine, trace, &cfg, &TopOneMatch, spec).unwrap();
    let non_global: Vec<(usize, FfCategory)> = clean
        .cells
        .iter()
        .filter(|c| c.category != FfCategory::GlobalControl)
        .map(|c| (c.node, c.category))
        .collect();
    vec![non_global[0], *non_global.last().unwrap()]
}

/// A small adaptive plan for the tiny engine: the injection ceiling keeps
/// test runs fast whether or not the bound converges first.
fn adaptive_spec(seed: u64, batch: usize) -> CampaignSpec {
    CampaignSpec {
        samples_per_cell: 10, // ignored in adaptive mode
        seed,
        threads: 1,
        record_events: false,
        target_ci_halfwidth: None,
        resilience: ResilienceSpec::default(),
        progress: None,
        batch,
        mac_tier: MacTier::Bitwise,
        adaptive: Some(AdaptivePlan {
            epsilon: 0.002,
            confidence: 0.95,
            max_injections: 2_000,
        }),
    }
}

/// Runs an adaptive spec at a job count and returns (result surface,
/// certificate canonical bytes, checkpoint bytes).
fn run_adaptive_at(
    engine: &Engine,
    trace: &Trace,
    spec: &CampaignSpec,
    jobs: usize,
    tag: &str,
) -> (Vec<String>, Vec<u8>, Vec<u8>) {
    let cfg = presets::nvdla_like();
    let ckpt = ScratchCkpt::new(&format!("adaptive_{tag}_{jobs}"));
    let mut spec = spec.clone();
    spec.resilience.checkpoint = Some(CheckpointSpec::new(&ckpt.0));
    let result = ParallelCampaignRunner::new(engine, trace, &cfg, &TopOneMatch, spec)
        .with_jobs(jobs)
        .run()
        .unwrap();
    let cert = result.certificate.as_ref().expect("adaptive emits cert");
    let bytes = std::fs::read(&ckpt.0).unwrap();
    (result_key(&result), cert.canonical_bytes(), bytes)
}

/// Adaptive campaigns: per-cell outcomes, confidence-certificate bytes, and
/// checkpoint bytes are identical across worker counts and batch modes, and
/// the offline verifier recomputes the exact same certificate from the
/// checkpoint alone.
#[test]
fn adaptive_campaigns_are_identical_across_jobs_and_batch() {
    let (engine, trace) = tiny_engine(13);
    let reference = run_adaptive_at(&engine, &trace, &adaptive_spec(42, 0), 1, "grid");
    // The plan must have run more than the seed wave (uncertainty-driven
    // reallocation actually exercised).
    let verified =
        fidelity::core::adaptive::verify_checkpoint(std::io::BufReader::new(&reference.2[..]))
            .expect("checkpoint re-verifies offline");
    assert_eq!(
        verified.canonical_bytes(),
        reference.1,
        "offline verifier disagrees with the runner's certificate"
    );
    assert!(verified.waves > 1, "expected multiple waves");
    for batch in [0usize, 16] {
        for jobs in [1usize, 2, 8] {
            if (jobs, batch) == (1, 0) {
                continue;
            }
            let got = run_adaptive_at(
                &engine,
                &trace,
                &adaptive_spec(42, batch),
                jobs,
                &format!("grid{batch}"),
            );
            assert_eq!(
                got.0, reference.0,
                "outcomes diverge at jobs={jobs} batch={batch}"
            );
            assert_eq!(
                got.1, reference.1,
                "certificate bytes diverge at jobs={jobs} batch={batch}"
            );
            assert_eq!(
                got.2, reference.2,
                "checkpoint bytes diverge at jobs={jobs} batch={batch}"
            );
        }
    }
}

/// A SIGKILL mid-wave leaves a torn checkpoint tail; resuming completes to
/// byte-identical checkpoint, certificate, and outcomes, for any worker
/// count.
#[test]
fn adaptive_kill_mid_wave_then_resume_is_identical() {
    let (engine, trace) = tiny_engine(17);
    let cfg = presets::nvdla_like();
    let spec = adaptive_spec(7, 0);
    let reference = run_adaptive_at(&engine, &trace, &spec, 1, "killref");

    // Cut the file mid-way through the second wave block and append a torn
    // partial row — exactly what a kill during a block write leaves behind.
    let text = String::from_utf8(reference.2.clone()).unwrap();
    let second_wave = text.match_indices("\nwave ").nth(1).map(|(i, _)| i + 1);
    let cut = second_wave.expect("reference has at least two waves");
    let torn_end = text[cut..].find('\n').map(|i| cut + i + 30).unwrap();
    let mut torn = text.as_bytes()[..torn_end].to_vec();
    torn.extend_from_slice(b"\nw 3 1");

    for jobs in [1usize, 4] {
        let ckpt = ScratchCkpt::new(&format!("killresume_{jobs}"));
        std::fs::write(&ckpt.0, &torn).unwrap();
        let mut resuming = spec.clone();
        resuming.resilience.checkpoint = Some(CheckpointSpec::resuming(&ckpt.0));
        let result = ParallelCampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, resuming)
            .with_jobs(jobs)
            .run()
            .unwrap();
        assert_eq!(
            result_key(&result),
            reference.0,
            "resumed outcomes diverge at jobs={jobs}"
        );
        assert_eq!(
            result.certificate.unwrap().canonical_bytes(),
            reference.1,
            "resumed certificate diverges at jobs={jobs}"
        );
        assert_eq!(
            std::fs::read(&ckpt.0).unwrap(),
            reference.2,
            "resumed checkpoint bytes diverge at jobs={jobs}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random small campaigns, every job count yields the same per-cell
    /// outcomes, the same masking probabilities (exact bits), and the same
    /// checkpoint bytes as the serial run.
    #[test]
    fn campaigns_are_identical_across_job_counts(
        seed in 0u64..10_000,
        weight_seed in 1u64..50,
        samples in 5usize..20,
        record_events in 0u64..2,
    ) {
        let (engine, trace) = tiny_engine(weight_seed);
        let spec = CampaignSpec {
            samples_per_cell: samples,
            seed,
            threads: 1,
            record_events: record_events == 1,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let (serial_key, serial_bytes) = run_at(&engine, &trace, &spec, 1, "clean");
        for jobs in &job_counts()[1..] {
            let (key, bytes) = run_at(&engine, &trace, &spec, *jobs, "clean");
            prop_assert_eq!(&key, &serial_key, "results diverge at jobs={}", jobs);
            prop_assert_eq!(&bytes, &serial_bytes, "checkpoint bytes diverge at jobs={}", jobs);
        }
    }

    /// Same contract with injected cell panics: chaos panics two cells on
    /// every attempt, so both degrade to deterministic partial statistics
    /// and are reported as failures — identically for every job count.
    #[test]
    fn panicking_cells_stay_identical_across_job_counts(
        seed in 0u64..10_000,
        samples in 5usize..15,
        panic_at in 0usize..5,
    ) {
        let (engine, trace) = tiny_engine(7);
        let mut spec = CampaignSpec {
            samples_per_cell: samples,
            seed,
            threads: 1,
            record_events: true,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        spec.resilience.chaos = victims(&engine, &trace, &spec)
            .into_iter()
            .map(|(node, category)| ChaosSpec {
                node,
                category,
                mode: ChaosMode::PanicAtSample(panic_at),
            })
            .collect();
        spec.resilience.max_retries_per_cell = 1;
        spec.resilience.failure_budget = 4;
        let (serial_key, serial_bytes) = run_at(&engine, &trace, &spec, 1, "chaos");
        // Both chaos cells must actually have failed.
        prop_assert_eq!(serial_key.iter().filter(|k| k.starts_with("FAIL")).count(), 2);
        for jobs in &job_counts()[1..] {
            let (key, bytes) = run_at(&engine, &trace, &spec, *jobs, "chaos");
            prop_assert_eq!(&key, &serial_key, "results diverge at jobs={}", jobs);
            prop_assert_eq!(&bytes, &serial_bytes, "checkpoint bytes diverge at jobs={}", jobs);
        }
    }

    /// Kill/resume: a campaign aborted mid-run leaves a partial checkpoint;
    /// resuming that same checkpoint completes to the full serial result and
    /// the full serial checkpoint bytes, for every job count.
    #[test]
    fn kill_then_resume_is_identical_across_job_counts(
        seed in 0u64..10_000,
        samples in 5usize..15,
        kill_jobs in 1usize..5,
    ) {
        let (engine, trace) = tiny_engine(11);
        let cfg = presets::nvdla_like();
        let clean = CampaignSpec {
            samples_per_cell: samples,
            seed,
            threads: 1,
            record_events: true,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        // The uninterrupted reference: result surface and checkpoint bytes.
        let (reference_key, reference_bytes) = run_at(&engine, &trace, &clean, 1, "ref");

        // Kill the campaign mid-run: chaos panics the last non-global cell
        // with a zero failure budget, aborting after some cells completed.
        let killed_ckpt = ScratchCkpt::new(&format!("kill_{kill_jobs}"));
        let mut killed = clean.clone();
        killed.resilience.failure_budget = 0;
        killed.resilience.max_retries_per_cell = 0;
        killed.resilience.checkpoint = Some(CheckpointSpec::new(&killed_ckpt.0));
        let (_, victim) = {
            let v = victims(&engine, &trace, &clean);
            (v[0], v[1])
        };
        killed.resilience.chaos = vec![ChaosSpec {
            node: victim.0,
            category: victim.1,
            mode: ChaosMode::PanicAtSample(0),
        }];
        let err = ParallelCampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, killed)
            .with_jobs(kill_jobs)
            .run()
            .unwrap_err();
        prop_assert!(err.to_string().contains("failure budget exhausted"));
        let killed_bytes = std::fs::read(&killed_ckpt.0).unwrap();

        // Whatever made it to disk obeys the ordered-commit contract: record
        // indices strictly increase through the file, and every record is
        // byte-identical to the serial reference's record for that cell.
        let reference_records = records(&reference_bytes);
        let killed_records = records(&killed_bytes);
        prop_assert!(
            killed_records.windows(2).all(|w| w[0].0 < w[1].0),
            "interrupted checkpoint records are out of plan order"
        );
        for (idx, record) in &killed_records {
            let reference = reference_records.iter().find(|(i, _)| i == idx);
            prop_assert_eq!(
                Some(record),
                reference.map(|(_, r)| r),
                "record {} differs from the serial reference", idx
            );
        }
        // A serial kill stops in plan order, so its file is literally a
        // prefix of the uninterrupted serial file.
        if kill_jobs == 1 {
            prop_assert!(
                reference_bytes.starts_with(&killed_bytes),
                "serially-interrupted checkpoint is not a prefix of the serial file"
            );
        }

        // Resume the same partial checkpoint at every job count: identical
        // final results, and final checkpoint bytes that are identical
        // across job counts and carry exactly the reference's records.
        let mut first_final: Option<Vec<u8>> = None;
        for jobs in job_counts() {
            let resume_ckpt = ScratchCkpt::new(&format!("resume_{kill_jobs}_{jobs}"));
            std::fs::write(&resume_ckpt.0, &killed_bytes).unwrap();
            let mut resuming = clean.clone();
            resuming.resilience.checkpoint = Some(CheckpointSpec::resuming(&resume_ckpt.0));
            let result = ParallelCampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, resuming)
                .with_jobs(jobs)
                .run()
                .unwrap();
            prop_assert_eq!(result_key(&result), reference_key.clone(), "resume diverges at jobs={}", jobs);
            let final_bytes = std::fs::read(&resume_ckpt.0).unwrap();
            let mut final_records = records(&final_bytes);
            final_records.sort_by_key(|&(idx, _)| idx);
            prop_assert_eq!(
                &final_records,
                &reference_records,
                "resumed checkpoint content diverges at jobs={}", jobs
            );
            match &first_final {
                None => first_final = Some(final_bytes),
                Some(expected) => prop_assert_eq!(
                    &final_bytes,
                    expected,
                    "resumed checkpoint bytes diverge at jobs={}", jobs
                ),
            }
        }
    }
}
