//! Property-based tests on the core data structures and invariants.

use fidelity::dnn::f16::{round_to_f16, F16};
use fidelity::dnn::macspec::{
    AccFlip, ConvSpec, DenseSpec, MacSpec, MatMulSpec, OperandKind, Operands, Substitution,
};
use fidelity::dnn::precision::{calibrate_scale, Precision, ValueCodec};
use fidelity::dnn::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    /// binary16 round-trip: converting f32→f16→f32→f16 is stable after the
    /// first rounding.
    #[test]
    fn f16_round_trip_idempotent(v in -1e6f32..1e6f32) {
        let once = round_to_f16(v);
        let twice = round_to_f16(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// binary16 conversion is monotone on finite values.
    #[test]
    fn f16_monotone(a in -6e4f32..6e4f32, b in -6e4f32..6e4f32) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(round_to_f16(lo) <= round_to_f16(hi));
    }

    /// binary16 rounding error is within half a ulp-ish bound (relative
    /// 2^-11 for normals).
    #[test]
    fn f16_error_bounded(v in -6e4f32..6e4f32) {
        let r = round_to_f16(v);
        if v.abs() > 1e-4 {
            prop_assert!(((r - v) / v).abs() <= 1.0 / 2048.0 + 1e-7, "{v} -> {r}");
        }
    }

    /// Integer quantization: the grid error never exceeds half a step, and
    /// quantize is idempotent.
    #[test]
    fn int_quantize_idempotent(v in -100.0f32..100.0, scale in 0.01f32..2.0) {
        for precision in [Precision::Int8, Precision::Int16] {
            let codec = ValueCodec::new(precision, scale);
            let q = codec.quantize(v);
            prop_assert_eq!(codec.quantize(q).to_bits(), q.to_bits());
            if q.abs() < codec.max_magnitude() {
                prop_assert!((q - v).abs() <= scale / 2.0 + 1e-5);
            }
        }
    }

    /// Bit flips on the integer grid stay decodable and differ from the
    /// original unless the encoding saturated.
    #[test]
    fn int8_flip_changes_encoded_value(q in -127i32..=127, bit in 0u32..8) {
        let codec = ValueCodec::new(Precision::Int8, 0.5);
        let v = q as f32 * 0.5;
        let flipped = codec.flip_bit(v, bit);
        prop_assert_ne!(flipped.to_bits(), v.to_bits());
        // Storage is two's complement, so a flip can land on -128 even
        // though symmetric quantization clamps at ±127.
        prop_assert!(flipped.abs() <= 128.0 * 0.5 + 1e-6);
    }

    /// Calibrated scales always produce codecs that can represent the
    /// calibration range.
    #[test]
    fn calibration_covers_range(max_abs in 0.001f32..1e4) {
        for precision in [Precision::Int8, Precision::Int16] {
            let codec = ValueCodec::new(precision, calibrate_scale(precision, max_abs));
            prop_assert!(codec.max_magnitude() >= max_abs * 0.999);
        }
    }
}

fn conv_strategy() -> impl Strategy<Value = ConvSpec> {
    (
        1usize..3, // batch
        1usize..4, // in_c
        3usize..8, // in_h
        3usize..8, // in_w
        1usize..5, // out_c
        1usize..4, // kh
        1usize..4, // kw
        1usize..3, // stride
        0usize..2, // padding
        1usize..3, // dilation
    )
        .prop_map(
            |(batch, in_c, in_h, in_w, out_c, kh, kw, s, p, d)| ConvSpec {
                batch,
                in_c,
                in_h,
                in_w,
                out_c,
                kh,
                kw,
                stride: (s, s),
                padding: (p, p),
                dilation: (d, d),
                groups: 1,
            },
        )
        .prop_filter("non-empty output", |c| c.out_h() > 0 && c.out_w() > 0)
}

fn filled(shape: Vec<usize>, seed: u64) -> Tensor {
    fidelity::dnn::init::uniform_tensor(seed, shape, 1.0)
}

proptest! {
    /// A weight substitution changes exactly the neurons that
    /// `neurons_using_weight` reports (up to arithmetic no-ops), never any
    /// other neuron.
    #[test]
    fn conv_weight_users_are_sound(spec in conv_strategy(), seed in 0u64..1000) {
        let c = spec.clone();
        let input = filled(vec![c.batch, c.in_c, c.in_h, c.in_w], seed);
        let weight = filled(vec![c.out_c, c.in_c, c.kh, c.kw], seed ^ 1);
        let mac = MacSpec::Conv(c);
        let ops = Operands { input: &input, weight: &weight };
        let w_off = (seed as usize) % weight.len();
        let subst = Substitution {
            kind: OperandKind::Weight,
            offset: w_off,
            value: weight.data()[w_off] + 1000.0,
        };
        let users: std::collections::HashSet<usize> =
            mac.neurons_using_weight(w_off).into_iter().collect();
        for off in 0..mac.out_len() {
            let clean = mac.compute_at(&ops, off, None);
            let faulty = mac.compute_at(&ops, off, Some(&subst));
            if !users.contains(&off) {
                prop_assert_eq!(clean.to_bits(), faulty.to_bits(), "non-user {} changed", off);
            }
        }
    }

    /// Same soundness for input substitutions.
    #[test]
    fn conv_input_users_are_sound(spec in conv_strategy(), seed in 0u64..1000) {
        let c = spec.clone();
        let input = filled(vec![c.batch, c.in_c, c.in_h, c.in_w], seed);
        let weight = filled(vec![c.out_c, c.in_c, c.kh, c.kw], seed ^ 1);
        let mac = MacSpec::Conv(c);
        let ops = Operands { input: &input, weight: &weight };
        let in_off = (seed as usize) % input.len();
        let subst = Substitution {
            kind: OperandKind::Input,
            offset: in_off,
            value: input.data()[in_off] + 1000.0,
        };
        let users: std::collections::HashSet<usize> =
            mac.neurons_using_input(in_off).into_iter().collect();
        for off in 0..mac.out_len() {
            let clean = mac.compute_at(&ops, off, None);
            let faulty = mac.compute_at(&ops, off, Some(&subst));
            if !users.contains(&off) {
                prop_assert_eq!(clean.to_bits(), faulty.to_bits());
            }
        }
    }

    /// (position, channel) coordinates round-trip through offset_of/coords_of.
    #[test]
    fn coords_round_trip(spec in conv_strategy(), off_seed in 0usize..10_000) {
        let mac = MacSpec::Conv(spec);
        let off = off_seed % mac.out_len();
        let (p, c) = mac.coords_of(off);
        prop_assert!(p < mac.position_count());
        prop_assert!(c < mac.channel_count());
        prop_assert_eq!(mac.offset_of(p, c), off);
    }

    /// Accumulator flip after the final step equals an f32 bit flip of the
    /// full sum.
    #[test]
    fn acc_flip_at_end_is_plain_flip(seed in 0u64..500, bit in 0u32..32) {
        let d = DenseSpec { batch: 1, in_features: 7, out_features: 3 };
        let input = filled(vec![1, 7], seed);
        let weight = filled(vec![3, 7], seed ^ 1);
        let mac = MacSpec::Dense(d);
        let ops = Operands { input: &input, weight: &weight };
        for off in 0..3 {
            let clean = mac.compute_at(&ops, off, None);
            let flipped = mac.compute_at_acc_flip(&ops, off, AccFlip::new(7, bit).unwrap());
            let expect = f32::from_bits(clean.to_bits() ^ (1 << bit));
            prop_assert!(
                flipped.to_bits() == expect.to_bits()
                    || (flipped.is_nan() && expect.is_nan())
            );
        }
    }

    /// Matmul users: a B-element substitution only affects its column.
    #[test]
    fn matmul_weight_users_are_sound(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..100) {
        let spec = MacSpec::MatMul(MatMulSpec { batch: 1, m, k, n, transpose_b: false });
        let a = filled(vec![m, k], seed);
        let b = filled(vec![k, n], seed ^ 1);
        let ops = Operands { input: &a, weight: &b };
        let w_off = (seed as usize) % b.len();
        let subst = Substitution { kind: OperandKind::Weight, offset: w_off, value: 999.0 };
        let users: std::collections::HashSet<usize> =
            spec.neurons_using_weight(w_off).into_iter().collect();
        for off in 0..spec.out_len() {
            let clean = spec.compute_at(&ops, off, None);
            let faulty = spec.compute_at(&ops, off, Some(&subst));
            if !users.contains(&off) {
                prop_assert_eq!(clean.to_bits(), faulty.to_bits());
            } else {
                prop_assert_ne!(clean.to_bits(), faulty.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The register-level engine's fault-free output equals the software
    /// layer for arbitrary conv geometry (the foundation of validation).
    #[test]
    fn rtl_clean_matches_software(spec in conv_strategy(), lanes in 1usize..6, stripe in 1usize..6) {
        use fidelity::rtl::{RtlEngine, RtlLayer};
        let c = spec.clone();
        let codec = ValueCodec::float(Precision::Fp16);
        let input = filled(vec![c.batch, c.in_c, c.in_h, c.in_w], 7).map(|v| codec.quantize(v));
        let weight = filled(vec![c.out_c, c.in_c, c.kh, c.kw], 8).map(|v| codec.quantize(v));
        let mac = MacSpec::Conv(c);
        let layer = RtlLayer::new(mac.clone(), input.clone(), weight.clone(), codec, codec, codec).unwrap();
        let engine = RtlEngine::new(layer, lanes, stripe);
        let ops = Operands { input: &input, weight: &weight };
        for off in 0..mac.out_len() {
            let sw = codec.quantize(mac.compute_at(&ops, off, None));
            prop_assert_eq!(sw.to_bits(), engine.clean_output().data()[off].to_bits());
        }
    }
}

#[test]
fn f16_all_bit_patterns_survive_codec() {
    // Exhaustive, not random: every 16-bit pattern decodes and re-encodes
    // consistently through the codec used for fault injection.
    let codec = ValueCodec::float(Precision::Fp16);
    for bits in 0u16..=u16::MAX {
        let v = F16::from_bits(bits).to_f32();
        let re = codec.quantize(v);
        if v.is_nan() {
            assert!(re.is_nan());
        } else {
            assert_eq!(re.to_bits(), v.to_bits());
        }
    }
}

fn conv_packed_strategy() -> impl Strategy<Value = ConvSpec> {
    // Richer geometry than `conv_strategy`: channel groups, asymmetric
    // stride/padding/dilation — the edge cases the packed kernel's hoisted
    // valid ranges must get right.
    (
        (1usize..3, 1usize..4), // batch, groups
        (1usize..3, 1usize..4), // in_c per group, out_c per group
        (3usize..9, 3usize..9), // in_h, in_w
        (1usize..4, 1usize..4), // kh, kw
        (1usize..4, 1usize..3), // stride
        (0usize..3, 0usize..3), // padding
        (1usize..3, 1usize..3), // dilation
    )
        .prop_map(
            |((batch, groups), (gic, goc), (in_h, in_w), (kh, kw), stride, padding, dilation)| {
                ConvSpec {
                    batch,
                    in_c: gic * groups,
                    in_h,
                    in_w,
                    out_c: goc * groups,
                    kh,
                    kw,
                    stride,
                    padding,
                    dilation,
                    groups,
                }
            },
        )
        .prop_filter("non-empty output", |c| c.out_h() > 0 && c.out_w() > 0)
}

proptest! {
    /// The packed forward kernel is bit-identical to per-neuron
    /// `compute_at` across groups, dilation, asymmetric padding, and stride
    /// edge cases — the kernel invariant everything else rests on.
    #[test]
    fn packed_conv_kernel_matches_compute_at(spec in conv_packed_strategy(), seed in 0u64..10_000) {
        let c = spec.clone();
        let input = filled(vec![c.batch, c.in_c, c.in_h, c.in_w], seed);
        let weight = filled(vec![c.out_c, c.group_in_c(), c.kh, c.kw], seed ^ 1);
        let mac = MacSpec::Conv(c);
        let ops = Operands { input: &input, weight: &weight };
        let mut out = vec![0.0f32; mac.out_len()];
        mac.forward_into(&ops, &mut out);
        for (off, got) in out.iter().enumerate() {
            let want = mac.compute_at(&ops, off, None);
            prop_assert_eq!(want.to_bits(), got.to_bits(), "neuron {}", off);
        }
    }

    /// `offset_of`/`coords_of` round-trip on the richer (grouped,
    /// asymmetric) conv geometry.
    #[test]
    fn packed_conv_coords_round_trip(spec in conv_packed_strategy(), off_seed in 0usize..100_000) {
        let mac = MacSpec::Conv(spec);
        let off = off_seed % mac.out_len();
        let (p, ch) = mac.coords_of(off);
        prop_assert!(p < mac.position_count());
        prop_assert!(ch < mac.channel_count());
        prop_assert_eq!(mac.offset_of(p, ch), off);
    }
}
