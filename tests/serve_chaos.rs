//! The hard crash drill: `kill -9` the daemon mid-campaign, restart it on
//! the same state directory, and verify nothing was lost and nothing was
//! invented — the recovered job finishes with checkpoint bytes identical to
//! an uninterrupted `fidelity analyze` of the same spec, which pins the
//! masking probabilities (they are pure functions of the checkpointed cell
//! tallies) to the same values bit for bit.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use fidelity::serve::Client;

const NETWORK: &str = "lstm";
const SAMPLES: &str = "1200";
const SEED: &str = "91";

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fidelity-serve-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Spawns `fidelity serve` on an ephemeral port and waits for its
/// "listening on" line. stdout keeps draining on a thread so the child
/// never blocks on a full pipe.
fn spawn_daemon(state: &std::path::Path) -> (Child, Client) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fidelity"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state",
            state.to_str().unwrap(),
            "--workers",
            "1",
            "--jobs",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().unwrap();
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("daemon stdout");
        assert!(n > 0, "daemon exited before listening");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.trim().to_owned();
        }
        if let Some(rest) = line.trim().strip_prefix("smoke: listening on ") {
            break rest.trim().to_owned();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, Client::new(addr))
}

fn submit_spec() -> String {
    format!("{{\"network\":\"{NETWORK}\",\"samples\":{SAMPLES},\"seed\":{SEED}}}")
}

fn id_of(body: &str) -> String {
    let key = "\"id\":\"";
    let start = body.find(key).expect("no id in body") + key.len();
    body[start..].split('"').next().unwrap().to_owned()
}

fn committed_cells(ckpt: &std::path::Path) -> usize {
    std::fs::read_to_string(ckpt)
        .map_or(0, |s| s.lines().filter(|l| l.starts_with("cell ")).count())
}

#[test]
fn sigkill_mid_campaign_restart_recovers_bit_identical() {
    let state = scratch("state");
    std::fs::create_dir_all(&state).unwrap();

    // Lifetime 1: accept the job, let some cells commit, then SIGKILL —
    // no drain, no flush, the worst-case crash.
    let (mut child, client) = spawn_daemon(&state);
    let reply = client.submit(&submit_spec()).expect("submit");
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = id_of(&reply.body);
    let ckpt = state.join(format!("job-{id}.ckpt"));
    let mut progressed = false;
    for _ in 0..2400 {
        if committed_cells(&ckpt) >= 2 {
            progressed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(progressed, "no cells committed before the kill window");
    let done_already = client
        .status(&id)
        .is_ok_and(|r| r.body.contains("\"state\":\"done\""));
    assert!(!done_already, "job finished before the kill; raise SAMPLES");
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Lifetime 2: the journal replays, the job re-enqueues, the campaign
    // resumes from the checkpoint and completes.
    let (mut child, client) = spawn_daemon(&state);
    let mut final_status = String::new();
    for _ in 0..4800 {
        let reply = client.status(&id).expect("status after restart");
        assert_eq!(reply.status, 200, "job lost after restart: {}", reply.body);
        if reply.body.contains("\"state\":\"done\"") {
            final_status = reply.body;
            break;
        }
        assert!(
            !reply.body.contains("\"state\":\"failed\""),
            "recovered job failed: {}",
            reply.body
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!final_status.is_empty(), "recovered job never finished");
    assert!(
        final_status.contains("\"masked_probability\":"),
        "{final_status}"
    );
    let recovered = std::fs::read(&ckpt).expect("recovered checkpoint");

    // Zero duplicated results: the same spec now answers from the record.
    let again = client.submit(&submit_spec()).expect("resubmit");
    assert_eq!(again.status, 200, "{}", again.body);
    assert!(again.body.contains("\"state\":\"done\""), "{}", again.body);

    // Trace continuity across the crash: both daemon generations stamped
    // the same deterministic trace id into the same per-job trace file,
    // and the pid field proves at least two distinct processes wrote it.
    let trace = client
        .request("GET", &format!("/campaigns/{id}/trace"), None)
        .expect("trace route");
    assert_eq!(trace.status, 200, "{}", trace.body);
    let want = fidelity::serve::jobtrace::trace_id(&id);
    let mut pids = std::collections::BTreeSet::new();
    let mut recover_events = 0usize;
    for line in trace.body.lines().filter(|l| !l.is_empty()) {
        let v = fidelity::obs::json::parse(line).expect("trace line parses");
        assert_eq!(
            v.get("trace").and_then(fidelity::obs::json::Json::as_str),
            Some(want.as_str()),
            "trace id changed across generations: {line}"
        );
        if let Some(pid) = v.get("pid").and_then(fidelity::obs::json::Json::as_u64) {
            pids.insert(pid);
        }
        if v.get("ev").and_then(fidelity::obs::json::Json::as_str) == Some("job.recover") {
            recover_events += 1;
        }
    }
    assert!(
        pids.len() >= 2,
        "expected records from both daemon generations, saw pids {pids:?}"
    );
    assert!(recover_events >= 1, "no job.recover event after restart");

    let shutdown = client.shutdown().expect("shutdown");
    assert_eq!(shutdown.status, 202);
    child.wait().expect("clean exit");

    // Ground truth: an uninterrupted CLI run of the identical spec. The
    // checkpoint encodes every cell's outcome tallies, so byte equality
    // here IS equality of all masking probabilities.
    let cli_ckpt = scratch("uninterrupted.ckpt");
    let out = Command::new(env!("CARGO_BIN_EXE_fidelity"))
        .args([
            "analyze",
            "--network",
            NETWORK,
            "--samples",
            SAMPLES,
            "--seed",
            SEED,
            "--checkpoint",
            cli_ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("cli analyze runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let uninterrupted = std::fs::read(&cli_ckpt).expect("cli checkpoint");
    assert_eq!(
        recovered, uninterrupted,
        "recovered checkpoint differs from the uninterrupted run"
    );
}
