//! Robustness fuzzing: arbitrary fault sites — including out-of-range
//! indices, control-register corruption and mid-bubble cycles — must never
//! panic either register-level engine, and every run must terminate (the
//! watchdog bounds even derailed executions).

use fidelity::core::validate::rtl_layer_for;
use fidelity::dnn::graph::Engine;
use fidelity::dnn::init::SplitMix64;
use fidelity::dnn::precision::Precision;
use fidelity::rtl::{
    Disturbance, FaultSite, FfId, RtlEngine, SeqCounter, SysFaultSite, SysFfId, SystolicEngine,
};
use fidelity::workloads::classification_suite;
use proptest::prelude::*;

fn nvdla_engine() -> RtlEngine {
    let w = classification_suite(31).remove(2); // mobilenet
    let engine = Engine::new(w.network, Precision::Fp16, std::slice::from_ref(&w.inputs)).unwrap();
    let trace = engine.trace(&w.inputs).unwrap();
    let node = engine.network().node_index("ds0_pw").unwrap();
    RtlEngine::new(rtl_layer_for(&engine, &trace, node).unwrap(), 4, 4)
}

fn systolic_engine() -> SystolicEngine {
    let w = classification_suite(31).remove(1); // resnet
    let engine = Engine::new(w.network, Precision::Fp16, std::slice::from_ref(&w.inputs)).unwrap();
    let trace = engine.trace(&w.inputs).unwrap();
    let node = engine.network().node_index("r2_c2").unwrap();
    SystolicEngine::new(rtl_layer_for(&engine, &trace, node).unwrap(), 3, 2)
}

fn arb_ffid() -> impl Strategy<Value = FfId> {
    prop_oneof![
        Just(FfId::FetchInput),
        Just(FfId::FetchWeight),
        Just(FfId::InputOperand),
        (0usize..8).prop_map(|lane| FfId::WeightOperand { lane }),
        (0usize..8, 0usize..8).prop_map(|(lane, slot)| FfId::Accumulator { lane, slot }),
        (0usize..8).prop_map(|lane| FfId::OutputReg { lane }),
        (0usize..8).prop_map(|lane| FfId::OutputValid { lane }),
        (0usize..32).prop_map(|index| FfId::Config { index }),
        prop_oneof![
            Just(SeqCounter::Group),
            Just(SeqCounter::Stripe),
            Just(SeqCounter::Kernel),
            Just(SeqCounter::Cycle)
        ]
        .prop_map(|counter| FfId::Sequencer { counter }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nvdla_engine_never_panics(ff in arb_ffid(), bit in 0u32..40, cycle_frac in 0.0f64..1.2) {
        let engine = nvdla_engine();
        let cycle = (engine.clean_cycles() as f64 * cycle_frac) as u64;
        let result = engine.run(Disturbance::Ff(FaultSite { ff, bit, cycle }));
        // Terminated (normally or via watchdog) with a well-formed output.
        prop_assert_eq!(result.output.len(), engine.clean_output().len());
        prop_assert!(result.cycles <= engine.clean_cycles() * 4 + 1024);
    }
}

fn arb_sys_ffid() -> impl Strategy<Value = SysFfId> {
    prop_oneof![
        Just(SysFfId::FetchInput),
        Just(SysFfId::FetchWeight),
        Just(SysFfId::WeightOperand),
        (0usize..8).prop_map(|pe| SysFfId::InputOperand { pe }),
        (0usize..8, 0usize..8).prop_map(|(pe, slot)| SysFfId::Accumulator { pe, slot }),
        (0usize..8).prop_map(|pe| SysFfId::OutputReg { pe }),
        (0usize..8).prop_map(|pe| SysFfId::OutputValid { pe }),
        (0usize..32).prop_map(|index| SysFfId::Config { index }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn systolic_engine_never_panics(ff in arb_sys_ffid(), bit in 0u32..40, cycle_frac in 0.0f64..1.2) {
        let engine = systolic_engine();
        let cycle = (engine.clean_cycles() as f64 * cycle_frac) as u64;
        let result = engine.run(SysFaultSite { ff, bit, cycle });
        prop_assert_eq!(result.output.len(), engine.clean_output().len());
        prop_assert!(result.cycles <= engine.clean_cycles() * 4 + 1024);
    }
}

#[test]
fn systolic_validation_is_exact_end_to_end() {
    use fidelity::core::validate_systolic::{random_systolic_sites, validate_systolic_many};
    let engine = systolic_engine();
    let mut rng = SplitMix64::new(71);
    let sites = random_systolic_sites(&engine, 400, &mut rng);
    let report = validate_systolic_many(&engine, &sites);
    assert!(
        report.mismatches.is_empty(),
        "{:#?}",
        &report.mismatches[..report.mismatches.len().min(3)]
    );
    assert_eq!(report.datapath_exact, report.datapath_cases);
    assert!(report.datapath_cases > 0);
}

#[test]
fn faults_past_end_of_execution_are_masked() {
    let engine = nvdla_engine();
    let result = engine.run(Disturbance::Ff(FaultSite {
        ff: FfId::InputOperand,
        bit: 3,
        cycle: engine.clean_cycles() + 10_000,
    }));
    assert_eq!(result.output.data(), engine.clean_output().data());
    assert!(!result.timed_out);
}
