//! Property-based tests on the correctness metrics (BLEU, detection
//! matching) — the application-level scoring the FIT rates hinge on.

use fidelity::dnn::tensor::Tensor;
use fidelity::workloads::metrics::{bleu4, decode_tokens, detection_score, iou, Detection};
use proptest::prelude::*;

fn token_seq(len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..20, len..=len)
}

proptest! {
    /// BLEU is 1 for identity and within [0, 1] always.
    #[test]
    fn bleu_bounds(reference in token_seq(12), hypothesis in token_seq(12)) {
        let b = bleu4(&reference, &hypothesis);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!((bleu4(&reference, &reference) - 1.0).abs() < 1e-9);
    }

    /// BLEU is symmetric in corrupting more tokens: corrupting a superset
    /// of positions can only lower (or keep) the score.
    #[test]
    fn bleu_monotone_in_corruption(reference in token_seq(16), p1 in 0usize..16, p2 in 0usize..16) {
        let mut one = reference.clone();
        one[p1] = 99;
        let mut two = one.clone();
        two[p2] = 98;
        let b_one = bleu4(&reference, &one);
        let b_two = bleu4(&reference, &two);
        prop_assert!(b_two <= b_one + 1e-9, "{b_two} > {b_one}");
    }

    /// IoU is symmetric, in [0, 1], and 1 exactly on identical boxes.
    #[test]
    fn iou_properties(
        x1 in -5.0f32..5.0, y1 in -5.0f32..5.0, w1 in 0.1f32..4.0, h1 in 0.1f32..4.0,
        x2 in -5.0f32..5.0, y2 in -5.0f32..5.0, w2 in 0.1f32..4.0, h2 in 0.1f32..4.0,
    ) {
        let a = Detection { x: x1, y: y1, w: w1, h: h1, objectness: 0.9, class: 0 };
        let b = Detection { x: x2, y: y2, w: w2, h: h2, objectness: 0.9, class: 0 };
        let ab = iou(&a, &b);
        let ba = iou(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((0.0..=1.0 + 1e-5).contains(&ab));
        prop_assert!((iou(&a, &a) - 1.0).abs() < 1e-5);
    }

    /// Detection score is 1 on identical sets and never exceeds 1.
    #[test]
    fn detection_score_bounds(n in 0usize..6, seed in 0u64..100) {
        let mut rng = fidelity::dnn::init::SplitMix64::new(seed);
        let dets: Vec<Detection> = (0..n)
            .map(|_| Detection {
                x: rng.next_f32() * 8.0,
                y: rng.next_f32() * 8.0,
                w: 0.5 + rng.next_f32(),
                h: 0.5 + rng.next_f32(),
                objectness: 0.9,
                class: rng.next_below(3) as usize,
            })
            .collect();
        prop_assert!((detection_score(&dets, &dets) - 1.0).abs() < 1e-9);
        // Dropping one detection can only lower the score.
        if !dets.is_empty() {
            let fewer = &dets[..dets.len() - 1];
            prop_assert!(detection_score(&dets, fewer) <= 1.0);
        }
    }

    /// decode_tokens picks the argmax of every row.
    #[test]
    fn decode_tokens_matches_argmax(rows in 1usize..6, seed in 0u64..200) {
        let vocab = 7;
        let logits = fidelity::dnn::init::uniform_tensor(seed, vec![rows, vocab], 1.0);
        let tokens = decode_tokens(&logits);
        prop_assert_eq!(tokens.len(), rows);
        for (r, &tok) in tokens.iter().enumerate() {
            let row: Vec<f32> = (0..vocab).map(|c| logits.at2(r, c)).collect();
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            prop_assert_eq!(tok, best);
        }
    }
}

#[test]
fn decode_tokens_rejects_non_matrix() {
    assert!(decode_tokens(&Tensor::zeros(vec![4])).is_empty());
    assert!(decode_tokens(&Tensor::zeros(vec![2, 2, 2])).is_empty());
}
