//! Differential sweep: the Table-II software fault-model recipes vs. the
//! register-level golden engines, for every FF category × MAC kind ×
//! shipped accelerator preset.
//!
//! Seeds come from a committed golden corpus
//! (`tests/golden/differential_seeds.txt`), so the exact fault sites the
//! sweep validates are reproducible across machines and releases. Each seed
//! derives the layer tensors, a uniform fault-site sample over the engine's
//! FF inventory, and a targeted top-up per FF category (so rare categories
//! are exercised even when they are a small slice of the inventory). A
//! deterministic all-cycle sweep of one write-valid bit guarantees the
//! local-control writeback window is hit regardless of the random draw.
//!
//! The NVDLA-family presets run all three MAC kinds (Conv, Dense, MatMul)
//! on the broadcast engine. The Eyeriss-like preset runs Conv on the
//! systolic engine — its row-stationary mapping is defined over conv output
//! rows, a constructor precondition of `SystolicEngine`, so the NVDLA
//! family carries the Dense/MatMul columns of the kind matrix.

use std::collections::HashSet;

use fidelity::accel::arch::{AcceleratorConfig, DataflowKind};
use fidelity::accel::ff::FfCategory;
use fidelity::accel::presets;
use fidelity::core::validate::{random_sites, validate_many, ValidationReport};
use fidelity::core::validate_systolic::{random_systolic_sites, validate_systolic_many};
use fidelity::dnn::init::{uniform_tensor, SplitMix64};
use fidelity::dnn::macspec::{ConvSpec, DenseSpec, MacSpec, MatMulSpec};
use fidelity::dnn::precision::{Precision, ValueCodec};
use fidelity::rtl::{FaultSite, FfId, RtlEngine, RtlLayer, SysFaultSite, SysFfId, SystolicEngine};

const GOLDEN_SEEDS: &str = include_str!("golden/differential_seeds.txt");

/// Uniform sites per seed (on top of the per-category targeted top-up).
const UNIFORM_SITES: usize = 30;
/// Targeted sites per distinct FF category per seed.
const TARGETED_SITES: usize = 12;

fn golden_seeds() -> Vec<u64> {
    GOLDEN_SEEDS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().unwrap_or_else(|_| panic!("bad seed line {l:?}")))
        .collect()
}

/// The three MAC families of Table II.
#[derive(Clone, Copy, Debug)]
enum MacKind {
    Conv,
    Dense,
    MatMul,
}

impl MacKind {
    const ALL: [MacKind; 3] = [MacKind::Conv, MacKind::Dense, MacKind::MatMul];

    fn name(self) -> &'static str {
        match self {
            MacKind::Conv => "conv",
            MacKind::Dense => "dense",
            MacKind::MatMul => "matmul",
        }
    }

    /// Builds a small seeded layer of this kind at Fp16.
    fn layer(self, seed: u64) -> RtlLayer {
        let codec = ValueCodec::float(Precision::Fp16);
        let (spec, in_shape, w_shape) = match self {
            MacKind::Conv => (
                MacSpec::Conv(ConvSpec {
                    batch: 1,
                    in_c: 2,
                    in_h: 5,
                    in_w: 5,
                    out_c: 6,
                    kh: 3,
                    kw: 3,
                    stride: (1, 1),
                    padding: (1, 1),
                    dilation: (1, 1),
                    groups: 1,
                }),
                vec![1, 2, 5, 5],
                vec![6, 2, 3, 3],
            ),
            MacKind::Dense => (
                MacSpec::Dense(DenseSpec {
                    batch: 2,
                    in_features: 6,
                    out_features: 5,
                }),
                vec![2, 6],
                vec![5, 6],
            ),
            MacKind::MatMul => (
                MacSpec::MatMul(MatMulSpec {
                    batch: 1,
                    m: 4,
                    k: 5,
                    n: 6,
                    transpose_b: false,
                }),
                vec![4, 5],
                vec![5, 6],
            ),
        };
        let input = uniform_tensor(seed, in_shape, 1.0).map(|v| codec.quantize(v));
        let weight = uniform_tensor(seed ^ 0xC0FFEE, w_shape, 0.5).map(|v| codec.quantize(v));
        RtlLayer::new(spec, input, weight, codec, codec, codec).unwrap()
    }
}

fn merge(into: &mut ValidationReport, from: &ValidationReport) {
    into.total += from.total;
    into.masked_agreed += from.masked_agreed;
    into.datapath_cases += from.datapath_cases;
    into.datapath_exact += from.datapath_exact;
    into.local_cases += from.local_cases;
    into.local_match += from.local_match;
    into.global_cases += from.global_cases;
    into.global_failure += from.global_failure;
    into.global_masked += from.global_masked;
    into.timeouts += from.timeouts;
    into.mismatches.extend(from.mismatches.iter().cloned());
}

/// Every claim the differential sweep makes about one preset × kind cell.
fn assert_agreement(
    preset: &str,
    kind: &str,
    report: &ValidationReport,
    expected: &HashSet<FfCategory>,
    covered: &HashSet<FfCategory>,
) {
    let tag = format!("{preset}/{kind}");
    assert!(
        report.mismatches.is_empty(),
        "{tag}: software recipe disagrees with RTL: {:#?}",
        &report.mismatches[..report.mismatches.len().min(5)]
    );
    assert!(report.total > 0, "{tag}: empty sweep");
    assert!(report.datapath_cases > 0, "{tag}: no datapath cases hit");
    assert_eq!(
        report.datapath_exact, report.datapath_cases,
        "{tag}: datapath predictions must match bit-exactly"
    );
    assert!(report.local_cases > 0, "{tag}: no local-control cases hit");
    assert_eq!(
        report.local_match, report.local_cases,
        "{tag}: local-control predictions must identify the RTL neuron"
    );
    assert!(
        report.global_cases > 0,
        "{tag}: no global-control cases hit"
    );
    assert!(
        report.global_failure > 0,
        "{tag}: no global-control fault produced an RTL failure"
    );
    assert_eq!(
        report.global_failure + report.global_masked,
        report.global_cases,
        "{tag}: global cases must split failure/masked"
    );
    for cat in expected {
        assert!(
            covered.contains(cat),
            "{tag}: inventory category {cat:?} never sampled"
        );
    }
}

fn nvdla_geometry(cfg: &AcceleratorConfig) -> (usize, usize) {
    match &cfg.dataflow {
        DataflowKind::Nvdla(d) => (d.lanes, d.weight_hold),
        DataflowKind::Eyeriss(_) => panic!("expected an NVDLA-like preset"),
    }
}

/// Runs the full differential sweep for one NVDLA-family preset and one MAC
/// kind: golden-seeded uniform + per-category targeted sites, then the
/// deterministic write-valid cycle sweep.
fn sweep_nvdla(cfg: &AcceleratorConfig, kind: MacKind) {
    let (lanes, hold) = nvdla_geometry(cfg);
    let mut report = ValidationReport::default();
    let mut expected: HashSet<FfCategory> = HashSet::new();
    let mut covered: HashSet<FfCategory> = HashSet::new();
    for &seed in &golden_seeds() {
        let engine = RtlEngine::new(kind.layer(seed), lanes, hold);
        let mut rng = SplitMix64::new(seed);
        let mut sites = random_sites(&engine, UNIFORM_SITES, &mut rng);
        let inventory = engine.inventory();
        expected.extend(inventory.iter().map(|(ff, _)| ff.category()));
        let mut cats: Vec<FfCategory> = Vec::new();
        for (ff, _) in &inventory {
            let c = ff.category();
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        for cat in cats {
            let pool: Vec<(FfId, u32)> = inventory
                .iter()
                .copied()
                .filter(|(ff, _)| ff.category() == cat)
                .collect();
            for _ in 0..TARGETED_SITES {
                let (ff, width) = pool[rng.next_below(pool.len() as u64) as usize];
                sites.push(FaultSite {
                    ff,
                    bit: rng.next_below(u64::from(width)) as u32,
                    cycle: rng.next_below(engine.clean_cycles()),
                });
            }
        }
        covered.extend(sites.iter().map(|s| s.ff.category()));
        merge(&mut report, &validate_many(&engine, &sites));
    }
    let engine = RtlEngine::new(kind.layer(golden_seeds()[0]), lanes, hold);
    let sweep: Vec<FaultSite> = (0..engine.clean_cycles())
        .map(|cycle| FaultSite {
            ff: FfId::OutputValid { lane: 0 },
            bit: 0,
            cycle,
        })
        .collect();
    merge(&mut report, &validate_many(&engine, &sweep));
    assert_agreement(&cfg.name, kind.name(), &report, &expected, &covered);
}

/// The Eyeriss-like sweep: Conv on the systolic golden reference.
fn sweep_eyeriss(cfg: &AcceleratorConfig) {
    let (k, t) = match &cfg.dataflow {
        DataflowKind::Eyeriss(d) => (d.k, d.channel_reuse),
        DataflowKind::Nvdla(_) => panic!("expected the Eyeriss-like preset"),
    };
    let mut report = ValidationReport::default();
    let mut expected: HashSet<FfCategory> = HashSet::new();
    let mut covered: HashSet<FfCategory> = HashSet::new();
    for &seed in &golden_seeds() {
        let engine = SystolicEngine::new(MacKind::Conv.layer(seed), k, t);
        let mut rng = SplitMix64::new(seed);
        let mut sites = random_systolic_sites(&engine, UNIFORM_SITES, &mut rng);
        let inventory = engine.inventory();
        expected.extend(inventory.iter().map(|(ff, _)| ff.category()));
        let mut cats: Vec<FfCategory> = Vec::new();
        for (ff, _) in &inventory {
            let c = ff.category();
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        for cat in cats {
            let pool: Vec<(SysFfId, u32)> = inventory
                .iter()
                .copied()
                .filter(|(ff, _)| ff.category() == cat)
                .collect();
            for _ in 0..TARGETED_SITES {
                let (ff, width) = pool[rng.next_below(pool.len() as u64) as usize];
                sites.push(SysFaultSite {
                    ff,
                    bit: rng.next_below(u64::from(width)) as u32,
                    cycle: rng.next_below(engine.clean_cycles()),
                });
            }
        }
        covered.extend(sites.iter().map(|s| s.ff.category()));
        merge(&mut report, &validate_systolic_many(&engine, &sites));
    }
    let engine = SystolicEngine::new(MacKind::Conv.layer(golden_seeds()[0]), k, t);
    let sweep: Vec<SysFaultSite> = (0..engine.clean_cycles())
        .map(|cycle| SysFaultSite {
            ff: SysFfId::OutputValid { pe: 0 },
            bit: 0,
            cycle,
        })
        .collect();
    merge(&mut report, &validate_systolic_many(&engine, &sweep));
    assert_agreement(&cfg.name, "conv", &report, &expected, &covered);
}

#[test]
fn golden_corpus_is_well_formed() {
    let seeds = golden_seeds();
    assert!(seeds.len() >= 4, "corpus too small: {seeds:?}");
    let unique: HashSet<u64> = seeds.iter().copied().collect();
    assert_eq!(unique.len(), seeds.len(), "duplicate seeds: {seeds:?}");
}

#[test]
fn every_shipped_preset_is_swept() {
    let names: Vec<String> = presets::all().into_iter().map(|c| c.name).collect();
    assert_eq!(
        names,
        [
            "nvdla-like",
            "nvdla-small-like",
            "nvdla-large-like",
            "eyeriss-like"
        ],
        "a preset was added or renamed: extend the differential sweep"
    );
}

#[test]
fn nvdla_like_agrees_on_all_kinds() {
    let cfg = presets::nvdla_like();
    for kind in MacKind::ALL {
        sweep_nvdla(&cfg, kind);
    }
}

#[test]
fn nvdla_small_like_agrees_on_all_kinds() {
    let cfg = presets::nvdla_small_like();
    for kind in MacKind::ALL {
        sweep_nvdla(&cfg, kind);
    }
}

#[test]
fn nvdla_large_like_agrees_on_all_kinds() {
    let cfg = presets::nvdla_large_like();
    for kind in MacKind::ALL {
        sweep_nvdla(&cfg, kind);
    }
}

#[test]
fn eyeriss_like_agrees_on_conv() {
    sweep_eyeriss(&presets::eyeriss_like());
}
