//! Differential sweep: the Table-II software fault-model recipes vs. the
//! register-level golden engines, for every FF category × MAC kind ×
//! shipped accelerator preset.
//!
//! Seeds come from a committed golden corpus
//! (`tests/golden/differential_seeds.txt`), so the exact fault sites the
//! sweep validates are reproducible across machines and releases. Each seed
//! derives the layer tensors, a uniform fault-site sample over the engine's
//! FF inventory, and a targeted top-up per FF category (so rare categories
//! are exercised even when they are a small slice of the inventory). A
//! deterministic all-cycle sweep of one write-valid bit guarantees the
//! local-control writeback window is hit regardless of the random draw.
//!
//! The NVDLA-family presets run all three MAC kinds (Conv, Dense, MatMul)
//! on the broadcast engine. The Eyeriss-like preset runs Conv on the
//! systolic engine — its row-stationary mapping is defined over conv output
//! rows, a constructor precondition of `SystolicEngine`, so the NVDLA
//! family carries the Dense/MatMul columns of the kind matrix.
//!
//! The corpus also drives the batched-runner sweep: for every seed, the
//! grouped delta-evaluation path (`BatchedInjectionRunner`) must reproduce
//! the serial pooled oracle bit for bit; a mismatch names the group, the
//! cell, and the first divergent byte of the canonical injection record.

use std::collections::HashSet;

use fidelity::accel::arch::{AcceleratorConfig, DataflowKind};
use fidelity::accel::ff::FfCategory;
use fidelity::accel::presets;
use fidelity::core::batch::BatchedInjectionRunner;
use fidelity::core::inject::{inject_once_pooled, Injection};
use fidelity::core::models::model_for;
use fidelity::core::outcome::TopOneMatch;
use fidelity::core::validate::{random_sites, validate_many, ValidationReport};
use fidelity::core::validate_systolic::{random_systolic_sites, validate_systolic_many};
use fidelity::dnn::graph::{golden_key, Engine, NetworkBuilder, Trace};
use fidelity::dnn::init::{uniform_tensor, SplitMix64};
use fidelity::dnn::layers::{Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool};
use fidelity::dnn::macspec::{ConvSpec, DenseSpec, MacSpec, MatMulSpec};
use fidelity::dnn::precision::{Precision, ValueCodec};
use fidelity::dnn::workspace::Workspace;
use fidelity::rtl::{FaultSite, FfId, RtlEngine, RtlLayer, SysFaultSite, SysFfId, SystolicEngine};

const GOLDEN_SEEDS: &str = include_str!("golden/differential_seeds.txt");

/// Uniform sites per seed (on top of the per-category targeted top-up).
const UNIFORM_SITES: usize = 30;
/// Targeted sites per distinct FF category per seed.
const TARGETED_SITES: usize = 12;

fn golden_seeds() -> Vec<u64> {
    GOLDEN_SEEDS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().unwrap_or_else(|_| panic!("bad seed line {l:?}")))
        .collect()
}

/// The three MAC families of Table II.
#[derive(Clone, Copy, Debug)]
enum MacKind {
    Conv,
    Dense,
    MatMul,
}

impl MacKind {
    const ALL: [MacKind; 3] = [MacKind::Conv, MacKind::Dense, MacKind::MatMul];

    fn name(self) -> &'static str {
        match self {
            MacKind::Conv => "conv",
            MacKind::Dense => "dense",
            MacKind::MatMul => "matmul",
        }
    }

    /// Builds a small seeded layer of this kind at Fp16.
    fn layer(self, seed: u64) -> RtlLayer {
        let codec = ValueCodec::float(Precision::Fp16);
        let (spec, in_shape, w_shape) = match self {
            MacKind::Conv => (
                MacSpec::Conv(ConvSpec {
                    batch: 1,
                    in_c: 2,
                    in_h: 5,
                    in_w: 5,
                    out_c: 6,
                    kh: 3,
                    kw: 3,
                    stride: (1, 1),
                    padding: (1, 1),
                    dilation: (1, 1),
                    groups: 1,
                }),
                vec![1, 2, 5, 5],
                vec![6, 2, 3, 3],
            ),
            MacKind::Dense => (
                MacSpec::Dense(DenseSpec {
                    batch: 2,
                    in_features: 6,
                    out_features: 5,
                }),
                vec![2, 6],
                vec![5, 6],
            ),
            MacKind::MatMul => (
                MacSpec::MatMul(MatMulSpec {
                    batch: 1,
                    m: 4,
                    k: 5,
                    n: 6,
                    transpose_b: false,
                }),
                vec![4, 5],
                vec![5, 6],
            ),
        };
        let input = uniform_tensor(seed, in_shape, 1.0).map(|v| codec.quantize(v));
        let weight = uniform_tensor(seed ^ 0xC0FFEE, w_shape, 0.5).map(|v| codec.quantize(v));
        RtlLayer::new(spec, input, weight, codec, codec, codec).unwrap()
    }
}

fn merge(into: &mut ValidationReport, from: &ValidationReport) {
    into.total += from.total;
    into.masked_agreed += from.masked_agreed;
    into.datapath_cases += from.datapath_cases;
    into.datapath_exact += from.datapath_exact;
    into.local_cases += from.local_cases;
    into.local_match += from.local_match;
    into.global_cases += from.global_cases;
    into.global_failure += from.global_failure;
    into.global_masked += from.global_masked;
    into.timeouts += from.timeouts;
    into.mismatches.extend(from.mismatches.iter().cloned());
}

/// Every claim the differential sweep makes about one preset × kind cell.
fn assert_agreement(
    preset: &str,
    kind: &str,
    report: &ValidationReport,
    expected: &HashSet<FfCategory>,
    covered: &HashSet<FfCategory>,
) {
    let tag = format!("{preset}/{kind}");
    assert!(
        report.mismatches.is_empty(),
        "{tag}: software recipe disagrees with RTL: {:#?}",
        &report.mismatches[..report.mismatches.len().min(5)]
    );
    assert!(report.total > 0, "{tag}: empty sweep");
    assert!(report.datapath_cases > 0, "{tag}: no datapath cases hit");
    assert_eq!(
        report.datapath_exact, report.datapath_cases,
        "{tag}: datapath predictions must match bit-exactly"
    );
    assert!(report.local_cases > 0, "{tag}: no local-control cases hit");
    assert_eq!(
        report.local_match, report.local_cases,
        "{tag}: local-control predictions must identify the RTL neuron"
    );
    assert!(
        report.global_cases > 0,
        "{tag}: no global-control cases hit"
    );
    assert!(
        report.global_failure > 0,
        "{tag}: no global-control fault produced an RTL failure"
    );
    assert_eq!(
        report.global_failure + report.global_masked,
        report.global_cases,
        "{tag}: global cases must split failure/masked"
    );
    for cat in expected {
        assert!(
            covered.contains(cat),
            "{tag}: inventory category {cat:?} never sampled"
        );
    }
}

fn nvdla_geometry(cfg: &AcceleratorConfig) -> (usize, usize) {
    match &cfg.dataflow {
        DataflowKind::Nvdla(d) => (d.lanes, d.weight_hold),
        DataflowKind::Eyeriss(_) => panic!("expected an NVDLA-like preset"),
    }
}

/// Runs the full differential sweep for one NVDLA-family preset and one MAC
/// kind: golden-seeded uniform + per-category targeted sites, then the
/// deterministic write-valid cycle sweep.
fn sweep_nvdla(cfg: &AcceleratorConfig, kind: MacKind) {
    let (lanes, hold) = nvdla_geometry(cfg);
    let mut report = ValidationReport::default();
    let mut expected: HashSet<FfCategory> = HashSet::new();
    let mut covered: HashSet<FfCategory> = HashSet::new();
    for &seed in &golden_seeds() {
        let engine = RtlEngine::new(kind.layer(seed), lanes, hold);
        let mut rng = SplitMix64::new(seed);
        let mut sites = random_sites(&engine, UNIFORM_SITES, &mut rng);
        let inventory = engine.inventory();
        expected.extend(inventory.iter().map(|(ff, _)| ff.category()));
        let mut cats: Vec<FfCategory> = Vec::new();
        for (ff, _) in &inventory {
            let c = ff.category();
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        for cat in cats {
            let pool: Vec<(FfId, u32)> = inventory
                .iter()
                .copied()
                .filter(|(ff, _)| ff.category() == cat)
                .collect();
            for _ in 0..TARGETED_SITES {
                let (ff, width) = pool[rng.next_below(pool.len() as u64) as usize];
                sites.push(FaultSite {
                    ff,
                    bit: rng.next_below(u64::from(width)) as u32,
                    cycle: rng.next_below(engine.clean_cycles()),
                });
            }
        }
        covered.extend(sites.iter().map(|s| s.ff.category()));
        merge(&mut report, &validate_many(&engine, &sites));
    }
    let engine = RtlEngine::new(kind.layer(golden_seeds()[0]), lanes, hold);
    let sweep: Vec<FaultSite> = (0..engine.clean_cycles())
        .map(|cycle| FaultSite {
            ff: FfId::OutputValid { lane: 0 },
            bit: 0,
            cycle,
        })
        .collect();
    merge(&mut report, &validate_many(&engine, &sweep));
    assert_agreement(&cfg.name, kind.name(), &report, &expected, &covered);
}

/// The Eyeriss-like sweep: Conv on the systolic golden reference.
fn sweep_eyeriss(cfg: &AcceleratorConfig) {
    let (k, t) = match &cfg.dataflow {
        DataflowKind::Eyeriss(d) => (d.k, d.channel_reuse),
        DataflowKind::Nvdla(_) => panic!("expected the Eyeriss-like preset"),
    };
    let mut report = ValidationReport::default();
    let mut expected: HashSet<FfCategory> = HashSet::new();
    let mut covered: HashSet<FfCategory> = HashSet::new();
    for &seed in &golden_seeds() {
        let engine = SystolicEngine::new(MacKind::Conv.layer(seed), k, t);
        let mut rng = SplitMix64::new(seed);
        let mut sites = random_systolic_sites(&engine, UNIFORM_SITES, &mut rng);
        let inventory = engine.inventory();
        expected.extend(inventory.iter().map(|(ff, _)| ff.category()));
        let mut cats: Vec<FfCategory> = Vec::new();
        for (ff, _) in &inventory {
            let c = ff.category();
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        for cat in cats {
            let pool: Vec<(SysFfId, u32)> = inventory
                .iter()
                .copied()
                .filter(|(ff, _)| ff.category() == cat)
                .collect();
            for _ in 0..TARGETED_SITES {
                let (ff, width) = pool[rng.next_below(pool.len() as u64) as usize];
                sites.push(SysFaultSite {
                    ff,
                    bit: rng.next_below(u64::from(width)) as u32,
                    cycle: rng.next_below(engine.clean_cycles()),
                });
            }
        }
        covered.extend(sites.iter().map(|s| s.ff.category()));
        merge(&mut report, &validate_systolic_many(&engine, &sites));
    }
    let engine = SystolicEngine::new(MacKind::Conv.layer(golden_seeds()[0]), k, t);
    let sweep: Vec<SysFaultSite> = (0..engine.clean_cycles())
        .map(|cycle| SysFaultSite {
            ff: SysFfId::OutputValid { pe: 0 },
            bit: 0,
            cycle,
        })
        .collect();
    merge(&mut report, &validate_systolic_many(&engine, &sweep));
    assert_agreement(&cfg.name, "conv", &report, &expected, &covered);
}

#[test]
fn golden_corpus_is_well_formed() {
    let seeds = golden_seeds();
    assert!(seeds.len() >= 4, "corpus too small: {seeds:?}");
    let unique: HashSet<u64> = seeds.iter().copied().collect();
    assert_eq!(unique.len(), seeds.len(), "duplicate seeds: {seeds:?}");
}

#[test]
fn every_shipped_preset_is_swept() {
    let names: Vec<String> = presets::all().into_iter().map(|c| c.name).collect();
    assert_eq!(
        names,
        [
            "nvdla-like",
            "nvdla-small-like",
            "nvdla-large-like",
            "eyeriss-like"
        ],
        "a preset was added or renamed: extend the differential sweep"
    );
}

#[test]
fn nvdla_like_agrees_on_all_kinds() {
    let cfg = presets::nvdla_like();
    for kind in MacKind::ALL {
        sweep_nvdla(&cfg, kind);
    }
}

#[test]
fn nvdla_small_like_agrees_on_all_kinds() {
    let cfg = presets::nvdla_small_like();
    for kind in MacKind::ALL {
        sweep_nvdla(&cfg, kind);
    }
}

#[test]
fn nvdla_large_like_agrees_on_all_kinds() {
    let cfg = presets::nvdla_large_like();
    for kind in MacKind::ALL {
        sweep_nvdla(&cfg, kind);
    }
}

#[test]
fn eyeriss_like_agrees_on_conv() {
    sweep_eyeriss(&presets::eyeriss_like());
}

/// A small seeded conv classifier and two traces on different inputs — two
/// golden-key groups for the batched sweep.
fn seeded_engine_with_traces(seed: u64) -> (Engine, Vec<Trace>) {
    let net = NetworkBuilder::new("diff_clf")
        .input("x")
        .layer(
            Conv2d::new("conv", uniform_tensor(seed, vec![4, 2, 3, 3], 0.6))
                .unwrap()
                .with_padding(1, 1),
            &["x"],
        )
        .unwrap()
        .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
        .unwrap()
        .layer(GlobalAvgPool::new("gap"), &["relu"])
        .unwrap()
        .layer(Flatten::new("flat"), &["gap"])
        .unwrap()
        .layer(
            Dense::new("fc", uniform_tensor(seed ^ 1, vec![5, 4], 0.6)).unwrap(),
            &["flat"],
        )
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
    let traces = [seed ^ 2, seed ^ 3]
        .iter()
        .map(|&s| {
            engine
                .trace(&[uniform_tensor(s, vec![1, 2, 6, 6], 1.0)])
                .unwrap()
        })
        .collect();
    (engine, traces)
}

/// Canonical byte record of one injection outcome — the unit the batched
/// sweep's "first divergent byte" diagnostics are stated in.
fn injection_record(inj: &Injection) -> Vec<u8> {
    let mut b = Vec::with_capacity(14);
    b.push(inj.outcome as u8);
    b.extend((inj.faulty_neurons as u64).to_le_bytes());
    b.extend(inj.max_perturbation.to_bits().to_le_bytes());
    b.push(u8::from(inj.watchdog));
    b
}

/// Batched fault-cone sweep over the golden corpus: for every seed, every
/// census category with a software model, and batch sizes straddling the
/// re-ensure cadence, injections driven through `BatchedInjectionRunner`
/// (alternating between two trace groups) must be byte-identical to the
/// serial pooled oracle on a fresh workspace. A mismatch names the group
/// (golden key), the cell (node, category, sample), and the first divergent
/// byte of the canonical record.
#[test]
fn batched_runner_matches_serial_oracle_over_corpus() {
    const SAMPLES: usize = 8;
    let cfg = presets::nvdla_like();
    for &seed in &golden_seeds() {
        let (engine, traces) = seeded_engine_with_traces(seed);
        let keys: Vec<u64> = traces.iter().map(golden_key).collect();
        for batch in [1usize, 7, 64] {
            let mut runner = BatchedInjectionRunner::new(batch);
            let mut oracle_ws = Workspace::new();
            for (category, _) in cfg.census.iter() {
                let Some(model) = model_for(category, &cfg) else {
                    continue;
                };
                for (group, trace) in traces.iter().enumerate() {
                    // Both sides consume an identical RNG stream.
                    let mut rng_b = SplitMix64::new(seed ^ (group as u64) << 8);
                    let mut rng_s = SplitMix64::new(seed ^ (group as u64) << 8);
                    for sample in 0..SAMPLES {
                        let batched = runner
                            .run(&engine, trace, 0, model, &TopOneMatch, &mut rng_b, None)
                            .unwrap();
                        let serial = inject_once_pooled(
                            &engine,
                            trace,
                            0,
                            model,
                            &TopOneMatch,
                            &mut rng_s,
                            None,
                            &mut oracle_ws,
                        )
                        .unwrap();
                        let (rb, rs) = (injection_record(&batched), injection_record(&serial));
                        if rb != rs {
                            let byte = rb
                                .iter()
                                .zip(&rs)
                                .position(|(a, b)| a != b)
                                .unwrap_or_else(|| rb.len().min(rs.len()));
                            panic!(
                                "batched sweep mismatch: seed {seed}, batch {batch}, \
                                 group {group} (golden key {:#018x}), cell (node 0, \
                                 category {category:?}, sample {sample}): first divergent \
                                 byte at offset {byte} (batched {:#04x} vs serial {:#04x})",
                                keys[group],
                                rb.get(byte).copied().unwrap_or(0),
                                rs.get(byte).copied().unwrap_or(0),
                            );
                        }
                    }
                }
            }
            let stats = runner.stats();
            assert_eq!(
                stats.delta_eligible, stats.injections,
                "seed {seed} batch {batch}: every injection should take the delta path"
            );
            assert!(
                stats.groups >= 2,
                "seed {seed} batch {batch}: alternating traces must form >= 2 groups"
            );
        }
    }
}
