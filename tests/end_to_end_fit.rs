//! Integration: the full FIdelity flow over every workload family, checking
//! the structural invariants of the FIT breakdown and the paper's headline
//! orderings.

use fidelity::core::analysis::analyze;
use fidelity::core::campaign::CampaignSpec;
use fidelity::core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity::core::outcome::{CorrectnessMetric, TopOneMatch};
use fidelity::dnn::graph::Engine;
use fidelity::dnn::precision::Precision;
use fidelity::workloads::metrics::{BleuThreshold, DetectionThreshold};
use fidelity::workloads::{
    classification_suite, lstm_workload, transformer_workload, yolo_workload, Workload,
};

fn spec(samples: usize) -> CampaignSpec {
    CampaignSpec {
        samples_per_cell: samples,
        seed: 0xE2E,
        ..CampaignSpec::default()
    }
}

fn run(
    workload: Workload,
    precision: Precision,
    metric: &dyn CorrectnessMetric,
    samples: usize,
) -> fidelity::core::analysis::ResilienceAnalysis {
    let engine = Engine::new(
        workload.network,
        precision,
        std::slice::from_ref(&workload.inputs),
    )
    .unwrap();
    let trace = engine.trace(&workload.inputs).unwrap();
    let accel = fidelity::accel::presets::nvdla_like();
    analyze(
        &engine,
        &trace,
        &accel,
        metric,
        PAPER_RAW_FIT_PER_MB,
        &spec(samples),
    )
    .unwrap()
}

#[test]
fn breakdown_invariants_hold_for_every_family() {
    let cases: Vec<(Workload, Box<dyn CorrectnessMetric>)> = vec![
        (classification_suite(1).remove(0), Box::new(TopOneMatch)),
        (
            yolo_workload(1),
            Box::new(DetectionThreshold::ten_percent()),
        ),
        (
            transformer_workload(1),
            Box::new(BleuThreshold::ten_percent()),
        ),
        (lstm_workload(1), Box::new(TopOneMatch)),
    ];
    for (workload, metric) in cases {
        let name = workload.name.clone();
        let analysis = run(workload, Precision::Fp16, metric.as_ref(), 40);
        let f = &analysis.fit;
        assert!(f.total > 0.0, "{name}: zero FIT");
        assert!(
            (f.datapath + f.local + f.global - f.total).abs() < 1e-9,
            "{name}: breakdown does not sum"
        );
        assert!(f.global > 0.0, "{name}: global control must contribute");
        // Fig. 6 scenario = total minus global, exactly.
        assert!(
            (analysis.fit_global_protected.total - (f.total - f.global)).abs() < 1e-9,
            "{name}: protected-global mismatch"
        );
        // Raw-FIT ceiling: nothing can exceed the all-faults-fail bound.
        let accel = fidelity::accel::presets::nvdla_like();
        let ceiling = PAPER_RAW_FIT_PER_MB * accel.ff_megabytes();
        assert!(f.total <= ceiling + 1e-9, "{name}: FIT above raw ceiling");
    }
}

#[test]
fn metric_threshold_ordering_transformer() {
    // Key result 3: a looser correctness metric can only lower the
    // datapath+local FIT (identical injections, same seed).
    let tight = run(
        transformer_workload(2),
        Precision::Fp16,
        &BleuThreshold::ten_percent(),
        60,
    );
    let loose = run(
        transformer_workload(2),
        Precision::Fp16,
        &BleuThreshold::twenty_percent(),
        60,
    );
    let tight_dl = tight.fit.datapath + tight.fit.local;
    let loose_dl = loose.fit.datapath + loose.fit.local;
    assert!(
        loose_dl <= tight_dl + 1e-9,
        "20% metric must not raise FIT: {loose_dl} vs {tight_dl}"
    );
}

#[test]
fn analysis_is_reproducible() {
    let a = run(
        classification_suite(3).remove(1),
        Precision::Fp16,
        &TopOneMatch,
        30,
    );
    let b = run(
        classification_suite(3).remove(1),
        Precision::Fp16,
        &TopOneMatch,
        30,
    );
    assert_eq!(a.fit.total.to_bits(), b.fit.total.to_bits());
    assert_eq!(a.campaign.total_samples(), b.campaign.total_samples());
}

#[test]
fn exec_time_weights_are_positive() {
    let analysis = run(
        classification_suite(4).remove(2),
        Precision::Fp16,
        &TopOneMatch,
        20,
    );
    assert!(!analysis.layer_terms.is_empty());
    for term in &analysis.layer_terms {
        assert!(term.exec_cycles > 0, "{} has zero exec time", term.name);
        for cat in &term.categories {
            assert!((0.0..=1.0).contains(&cat.prob_inactive));
            assert!((0.0..=1.0).contains(&cat.prob_swmask));
        }
    }
}
