//! Integration: the `fidelity` command-line front end.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fidelity"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn rfa_prints_reuse_factors() {
    let (ok, stdout, _) = run(&["rfa", "--lanes", "8", "--hold", "4"]);
    assert!(ok);
    assert!(stdout.contains("RF = 8"), "{stdout}");
    assert!(stdout.contains("RF = 4"), "{stdout}");
}

#[test]
fn rfa_eyeriss_variant() {
    let (ok, stdout, _) = run(&["rfa", "--eyeriss", "5,3"]);
    assert!(ok);
    assert!(stdout.contains("RF = 15"), "{stdout}"); // k·t of b2
    assert!(stdout.contains("RF = 5"), "{stdout}");
}

#[test]
fn analyze_reports_fit() {
    let (ok, stdout, _) = run(&[
        "analyze",
        "--network",
        "mobilenet",
        "--samples",
        "20",
        "--seed",
        "7",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Accelerator_FIT_rate"), "{stdout}");
    assert!(stdout.contains("ASIL-D"), "{stdout}");
}

#[test]
fn unknown_network_fails_with_usage() {
    let (ok, _, stderr) = run(&["analyze", "--network", "alexnet"]);
    assert!(!ok);
    assert!(stderr.contains("unknown network"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_flag_value_is_reported() {
    let (ok, _, stderr) = run(&["analyze", "--network"]);
    assert!(!ok);
    assert!(stderr.contains("requires a value"), "{stderr}");
}

#[test]
fn trace_progress_metrics_and_report_roundtrip() {
    let dir = std::env::temp_dir().join(format!("fidelity-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("campaign.jsonl");
    let trace_str = trace.to_str().expect("utf-8 temp path");

    let (ok, stdout, stderr) = run(&[
        "analyze",
        "--network",
        "lstm",
        "--samples",
        "3",
        "--seed",
        "7",
        "--trace",
        trace_str,
        "--progress",
        "--metrics",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    // --metrics snapshot comes after the FIT report.
    assert!(stdout.contains("campaign.injections"), "{stdout}");
    // --progress renders the live status line on stderr.
    assert!(stderr.contains("cells"), "{stderr}");

    // Every line of the trace is an object with the reserved keys, and the
    // lifecycle events are present.
    let body = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!body.is_empty(), "trace must not be empty");
    for line in body.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"ev\":"), "{line}");
        assert!(line.contains("\"t_us\":"), "{line}");
    }
    assert!(body.contains("\"ev\":\"campaign.start\""), "{body}");
    assert!(body.contains("\"ev\":\"cell.done\""), "{body}");
    assert!(body.contains("\"ev\":\"campaign.finish\""), "{body}");

    // `fidelity report` summarizes the same file.
    let (ok, stdout, stderr) = run(&["report", "--trace", trace_str]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("events"), "{stdout}");
    assert!(stdout.contains("campaign.finish"), "{stdout}");
    assert!(stdout.contains("outcomes"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_requires_trace_flag() {
    let (ok, _, stderr) = run(&["report"]);
    assert!(!ok);
    assert!(stderr.contains("report requires --trace"), "{stderr}");
}

#[test]
fn report_rejects_empty_trace() {
    let dir = std::env::temp_dir().join(format!("fidelity-cli-empty-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("empty.jsonl");
    std::fs::write(&trace, "").expect("write empty trace");
    let (ok, _, stderr) = run(&["report", "--trace", trace.to_str().expect("utf-8")]);
    assert!(!ok);
    assert!(stderr.contains("no events"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validate_small_run_passes() {
    let (ok, stdout, _) = run(&[
        "validate",
        "--network",
        "mobilenet",
        "--layer",
        "ds0_pw",
        "--sites",
        "120",
        "--samples",
        "10",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("NO MISMATCHES"), "{stdout}");
}
