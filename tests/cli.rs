//! Integration: the `fidelity` command-line front end.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fidelity"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn rfa_prints_reuse_factors() {
    let (ok, stdout, _) = run(&["rfa", "--lanes", "8", "--hold", "4"]);
    assert!(ok);
    assert!(stdout.contains("RF = 8"), "{stdout}");
    assert!(stdout.contains("RF = 4"), "{stdout}");
}

#[test]
fn rfa_eyeriss_variant() {
    let (ok, stdout, _) = run(&["rfa", "--eyeriss", "5,3"]);
    assert!(ok);
    assert!(stdout.contains("RF = 15"), "{stdout}"); // k·t of b2
    assert!(stdout.contains("RF = 5"), "{stdout}");
}

#[test]
fn analyze_reports_fit() {
    let (ok, stdout, _) = run(&[
        "analyze",
        "--network",
        "mobilenet",
        "--samples",
        "20",
        "--seed",
        "7",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Accelerator_FIT_rate"), "{stdout}");
    assert!(stdout.contains("ASIL-D"), "{stdout}");
}

#[test]
fn unknown_network_fails_with_usage() {
    let (ok, _, stderr) = run(&["analyze", "--network", "alexnet"]);
    assert!(!ok);
    assert!(stderr.contains("unknown network"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_flag_value_is_reported() {
    let (ok, _, stderr) = run(&["analyze", "--network"]);
    assert!(!ok);
    assert!(stderr.contains("requires a value"), "{stderr}");
}

#[test]
fn validate_small_run_passes() {
    let (ok, stdout, _) = run(&[
        "validate",
        "--network",
        "mobilenet",
        "--layer",
        "ds0_pw",
        "--sites",
        "120",
        "--samples",
        "10",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("NO MISMATCHES"), "{stdout}");
}
