//! Property tests for the batched fault-cone evaluation path: for random
//! small campaigns over mixed layer kinds and accelerator presets, a
//! batched run (golden snapshot amortized across samples, injections
//! evaluated as deltas over the downstream cone) must be observably
//! indistinguishable from the unbatched serial run — per-cell outcomes,
//! masking-probability bits, and checkpoint bytes — at every batch size and
//! worker count, including under injected cell panics and after a
//! mid-campaign kill/resume.
//!
//! This is the "policy, not identity" contract of `CampaignSpec::batch`:
//! batching may only change how fast an answer arrives, never which answer.

use std::path::PathBuf;

use fidelity::accel::ff::FfCategory;
use fidelity::accel::presets;
use fidelity::accel::AcceleratorConfig;
use fidelity::core::campaign::{
    run_campaign, CampaignResult, CampaignSpec, CellStats, MacTier, ParallelCampaignRunner,
};
use fidelity::core::outcome::TopOneMatch;
use fidelity::core::resilience::{ChaosMode, ChaosSpec, CheckpointSpec, ResilienceSpec};
use fidelity::dnn::graph::{Engine, NetworkBuilder, Trace};
use fidelity::dnn::init::uniform_tensor;
use fidelity::dnn::layers::{
    Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool, Pool2d, PoolKind,
};
use fidelity::dnn::precision::Precision;
use proptest::prelude::*;

/// Batch sizes every property is checked against. 1 re-ensures the golden
/// snapshot before every sample, 7 straddles the retry cadence, 64 exceeds
/// every sample count drawn below (install once, never re-check).
const BATCHES: [usize; 3] = [1, 7, 64];

/// Worker counts every batched variant runs at.
const JOBS: [usize; 2] = [1, 4];

/// The preset pool the properties draw from.
fn preset(idx: usize) -> AcceleratorConfig {
    match idx % 3 {
        0 => presets::nvdla_like(),
        1 => presets::nvdla_small_like(),
        _ => presets::eyeriss_like(),
    }
}

/// A conv trunk with pool, concat-free spatial windows, and a dense head:
/// exercises the windowed delta path end to end.
fn conv_engine(weight_seed: u64) -> (Engine, Trace) {
    let net = NetworkBuilder::new("conv_clf")
        .input("x")
        .layer(
            Conv2d::new("conv", uniform_tensor(weight_seed, vec![4, 2, 3, 3], 0.6))
                .unwrap()
                .with_padding(1, 1),
            &["x"],
        )
        .unwrap()
        .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
        .unwrap()
        .layer(
            Pool2d::new("pool", PoolKind::Max, 2).with_stride(2),
            &["relu"],
        )
        .unwrap()
        .layer(GlobalAvgPool::new("gap"), &["pool"])
        .unwrap()
        .layer(Flatten::new("flat"), &["gap"])
        .unwrap()
        .layer(
            Dense::new("fc", uniform_tensor(weight_seed ^ 1, vec![5, 4], 0.6)).unwrap(),
            &["flat"],
        )
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
    let x = uniform_tensor(weight_seed ^ 2, vec![1, 2, 6, 6], 1.0);
    let trace = engine.trace(&[x]).unwrap();
    (engine, trace)
}

/// A dense-only stack: no spatial structure anywhere, so every delta walk
/// falls back to full node recomputes — the degenerate-window path.
fn dense_engine(weight_seed: u64) -> (Engine, Trace) {
    let net = NetworkBuilder::new("dense_clf")
        .input("x")
        .layer(
            Dense::new("fc0", uniform_tensor(weight_seed, vec![6, 8], 0.5)).unwrap(),
            &["x"],
        )
        .unwrap()
        .layer(Activation::new("relu", ActivationKind::Relu), &["fc0"])
        .unwrap()
        .layer(
            Dense::new("fc1", uniform_tensor(weight_seed ^ 1, vec![4, 6], 0.5)).unwrap(),
            &["relu"],
        )
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
    let x = uniform_tensor(weight_seed ^ 2, vec![1, 8], 1.0);
    let trace = engine.trace(&[x]).unwrap();
    (engine, trace)
}

fn engine_for(kind: usize, weight_seed: u64) -> (Engine, Trace) {
    if kind.is_multiple_of(2) {
        conv_engine(weight_seed)
    } else {
        dense_engine(weight_seed)
    }
}

/// A per-test scratch path that is removed on drop, pass or fail.
struct ScratchCkpt(PathBuf);

impl ScratchCkpt {
    fn new(tag: &str) -> Self {
        ScratchCkpt(std::env::temp_dir().join(format!(
            "fidelity_batched_{tag}_{}.ckpt",
            std::process::id()
        )))
    }
}

impl Drop for ScratchCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Everything observable about a cell, floats as exact bit patterns.
fn cell_key(c: &CellStats) -> String {
    let events: Vec<String> = c
        .events
        .iter()
        .map(|e| {
            format!(
                "{}:{:08x}:{:?}",
                e.faulty_neurons,
                e.max_perturbation.to_bits(),
                e.outcome
            )
        })
        .collect();
    format!(
        "{} {} {:?} {:?} s={} m={} oe={} an={} p={} ev={}",
        c.node,
        c.layer,
        c.category,
        c.model,
        c.samples,
        c.masked,
        c.output_error,
        c.anomaly,
        c.prob_swmask().to_bits(),
        events.join(",")
    )
}

/// The full observable surface of a campaign result, in order.
fn result_key(r: &CampaignResult) -> Vec<String> {
    let mut keys: Vec<String> = r.cells.iter().map(cell_key).collect();
    keys.extend(r.failures.iter().map(|f| {
        format!(
            "FAIL {} {} {:?} attempts={} samples={} reason={}",
            f.node, f.layer, f.category, f.attempts, f.samples_completed, f.reason
        )
    }));
    keys
}

/// Runs a spec variant with its own checkpoint file and returns
/// (result surface, checkpoint bytes).
fn run_variant(
    engine: &Engine,
    trace: &Trace,
    cfg: &AcceleratorConfig,
    spec: &CampaignSpec,
    batch: usize,
    jobs: usize,
    tag: &str,
) -> (Vec<String>, Vec<u8>) {
    let ckpt = ScratchCkpt::new(&format!("{tag}_b{batch}_j{jobs}"));
    let mut spec = spec.clone();
    spec.batch = batch;
    spec.resilience.checkpoint = Some(CheckpointSpec::new(&ckpt.0));
    let result = ParallelCampaignRunner::new(engine, trace, cfg, &TopOneMatch, spec)
        .with_jobs(jobs)
        .run()
        .unwrap();
    let bytes = std::fs::read(&ckpt.0).unwrap();
    (result_key(&result), bytes)
}

/// First and last non-global cells of a clean run — chaos victims.
fn victims(
    engine: &Engine,
    trace: &Trace,
    cfg: &AcceleratorConfig,
    spec: &CampaignSpec,
) -> Vec<(usize, FfCategory)> {
    let clean = run_campaign(engine, trace, cfg, &TopOneMatch, spec).unwrap();
    let non_global: Vec<(usize, FfCategory)> = clean
        .cells
        .iter()
        .filter(|c| c.category != FfCategory::GlobalControl)
        .map(|c| (c.node, c.category))
        .collect();
    vec![non_global[0], *non_global.last().unwrap()]
}

fn base_spec(seed: u64, samples: usize, record_events: bool) -> CampaignSpec {
    CampaignSpec {
        samples_per_cell: samples,
        seed,
        threads: 1,
        record_events,
        target_ci_halfwidth: None,
        resilience: ResilienceSpec::default(),
        progress: None,
        batch: 0,
        mac_tier: MacTier::Bitwise,
        adaptive: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every (batch, jobs) combination reproduces the unbatched serial
    /// run's full observable surface — outcomes, masking-probability bits,
    /// checkpoint bytes — over both layer-kind mixes and every preset.
    #[test]
    fn batched_campaigns_match_unbatched_serial(
        seed in 0u64..10_000,
        weight_seed in 1u64..50,
        samples in 5usize..20,
        net_kind in 0usize..2,
        preset_idx in 0usize..3,
        record_events in prop_oneof![Just(false), Just(true)],
    ) {
        let (engine, trace) = engine_for(net_kind, weight_seed);
        let cfg = preset(preset_idx);
        let spec = base_spec(seed, samples, record_events);
        let (serial_key, serial_bytes) =
            run_variant(&engine, &trace, &cfg, &spec, 0, 1, "clean");
        for &batch in &BATCHES {
            for &jobs in &JOBS {
                let (key, bytes) =
                    run_variant(&engine, &trace, &cfg, &spec, batch, jobs, "clean");
                prop_assert_eq!(
                    &key, &serial_key,
                    "results diverge at batch={} jobs={}", batch, jobs
                );
                prop_assert_eq!(
                    &bytes, &serial_bytes,
                    "checkpoint bytes diverge at batch={} jobs={}", batch, jobs
                );
            }
        }
    }

    /// Injected cell panics (which retry the cell and can drop the loaned
    /// golden overlay mid-batch) leave the batched runs byte-identical to
    /// the unbatched serial run: the re-ensure cadence only restores state,
    /// it never consumes RNG or changes outcomes.
    #[test]
    fn batched_panicking_cells_match_unbatched_serial(
        seed in 0u64..10_000,
        samples in 5usize..15,
        panic_at in 0usize..5,
        net_kind in 0usize..2,
    ) {
        let (engine, trace) = engine_for(net_kind, 7);
        let cfg = presets::nvdla_like();
        let mut spec = base_spec(seed, samples, true);
        spec.resilience.chaos = victims(&engine, &trace, &cfg, &spec)
            .into_iter()
            .map(|(node, category)| ChaosSpec {
                node,
                category,
                mode: ChaosMode::PanicAtSample(panic_at),
            })
            .collect();
        spec.resilience.max_retries_per_cell = 1;
        spec.resilience.failure_budget = 4;
        let (serial_key, serial_bytes) =
            run_variant(&engine, &trace, &cfg, &spec, 0, 1, "chaos");
        prop_assert_eq!(serial_key.iter().filter(|k| k.starts_with("FAIL")).count(), 2);
        for &batch in &BATCHES {
            for &jobs in &JOBS {
                let (key, bytes) =
                    run_variant(&engine, &trace, &cfg, &spec, batch, jobs, "chaos");
                prop_assert_eq!(
                    &key, &serial_key,
                    "results diverge at batch={} jobs={}", batch, jobs
                );
                prop_assert_eq!(
                    &bytes, &serial_bytes,
                    "checkpoint bytes diverge at batch={} jobs={}", batch, jobs
                );
            }
        }
    }

    /// Kill/resume across batch boundaries: a batched campaign aborted
    /// mid-batch leaves a partial checkpoint whose records are each
    /// byte-identical to the unbatched serial reference, and resuming it —
    /// at any batch size and worker count, not necessarily the one that
    /// wrote it — completes to the full serial result.
    #[test]
    fn batched_kill_then_resume_matches_unbatched_serial(
        seed in 0u64..10_000,
        samples in 5usize..15,
        kill_batch in prop_oneof![Just(1usize), Just(7usize), Just(64usize)],
        resume_batch in prop_oneof![Just(0usize), Just(7usize), Just(64usize)],
        resume_jobs in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let (engine, trace) = conv_engine(11);
        let cfg = presets::nvdla_like();
        let clean = base_spec(seed, samples, true);
        let (reference_key, reference_bytes) =
            run_variant(&engine, &trace, &cfg, &clean, 0, 1, "ref");

        // Kill a batched run mid-campaign: chaos panics the last non-global
        // cell with a zero failure budget.
        let killed_ckpt = ScratchCkpt::new(&format!("kill_{kill_batch}"));
        let mut killed = clean.clone();
        killed.batch = kill_batch;
        killed.resilience.failure_budget = 0;
        killed.resilience.max_retries_per_cell = 0;
        killed.resilience.checkpoint = Some(CheckpointSpec::new(&killed_ckpt.0));
        let victim = *victims(&engine, &trace, &cfg, &clean).last().unwrap();
        killed.resilience.chaos = vec![ChaosSpec {
            node: victim.0,
            category: victim.1,
            mode: ChaosMode::PanicAtSample(2),
        }];
        let err = ParallelCampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, killed)
            .with_jobs(1)
            .run()
            .unwrap_err();
        prop_assert!(err.to_string().contains("failure budget exhausted"));
        let killed_bytes = std::fs::read(&killed_ckpt.0).unwrap();
        prop_assert!(
            reference_bytes.starts_with(&killed_bytes),
            "batched serially-interrupted checkpoint is not a prefix of the serial file"
        );

        // Resume the partial checkpoint under a different batch policy.
        let resume_ckpt = ScratchCkpt::new(&format!("resume_{kill_batch}_{resume_batch}"));
        std::fs::write(&resume_ckpt.0, &killed_bytes).unwrap();
        let mut resuming = clean.clone();
        resuming.batch = resume_batch;
        resuming.resilience.checkpoint = Some(CheckpointSpec::resuming(&resume_ckpt.0));
        let result = ParallelCampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, resuming)
            .with_jobs(resume_jobs)
            .run()
            .unwrap();
        prop_assert_eq!(
            result_key(&result),
            reference_key,
            "resume diverges at batch={} jobs={}", resume_batch, resume_jobs
        );
        let final_bytes = std::fs::read(&resume_ckpt.0).unwrap();
        prop_assert_eq!(
            &final_bytes,
            &reference_bytes,
            "resumed checkpoint bytes diverge at batch={} jobs={}", resume_batch, resume_jobs
        );
    }
}
