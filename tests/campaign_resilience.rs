//! Integration tests for the campaign resilience layer: checkpoint
//! round-trips, panic isolation, the per-injection watchdog, and exact
//! kill-then-resume recovery.

use std::io::Cursor;
use std::path::PathBuf;
use std::time::Duration;

use fidelity::accel::ff::{FfCategory, PipelineStage, VarType};
use fidelity::accel::presets;
use fidelity::core::campaign::{
    run_campaign, CampaignResult, CampaignRunner, CampaignSpec, CellStats, InjectionEvent, MacTier,
};
use fidelity::core::models::{OperandWindow, SoftwareFaultModel};
use fidelity::core::outcome::{Outcome, TopOneMatch};
use fidelity::core::resilience::{
    parse_checkpoint, write_cell, write_header, ChaosMode, ChaosSpec, CheckpointSpec,
    FailureReason, ResilienceSpec,
};
use fidelity::dnn::graph::{Engine, NetworkBuilder, Trace};
use fidelity::dnn::init::uniform_tensor;
use fidelity::dnn::layers::{Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool};
use fidelity::dnn::macspec::OperandKind;
use fidelity::dnn::precision::Precision;
use proptest::prelude::*;

fn tiny_engine() -> (Engine, Trace) {
    let net = NetworkBuilder::new("clf")
        .input("x")
        .layer(
            Conv2d::new("conv", uniform_tensor(1, vec![4, 2, 3, 3], 0.6))
                .unwrap()
                .with_padding(1, 1),
            &["x"],
        )
        .unwrap()
        .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
        .unwrap()
        .layer(GlobalAvgPool::new("gap"), &["relu"])
        .unwrap()
        .layer(Flatten::new("flat"), &["gap"])
        .unwrap()
        .layer(
            Dense::new("fc", uniform_tensor(2, vec![5, 4], 0.6)).unwrap(),
            &["flat"],
        )
        .unwrap()
        .build()
        .unwrap();
    let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
    let x = uniform_tensor(3, vec![1, 2, 6, 6], 1.0);
    let trace = engine.trace(&[x]).unwrap();
    (engine, trace)
}

fn spec(samples: usize, seed: u64) -> CampaignSpec {
    CampaignSpec {
        samples_per_cell: samples,
        seed,
        threads: 2,
        record_events: true,
        target_ci_halfwidth: None,
        resilience: ResilienceSpec::default(),
        progress: None,
        batch: 0,
        mac_tier: MacTier::Bitwise,
        adaptive: None,
    }
}

/// A per-test scratch path that is removed on drop, pass or fail.
struct ScratchCkpt(PathBuf);

impl ScratchCkpt {
    fn new(tag: &str) -> Self {
        ScratchCkpt(
            std::env::temp_dir().join(format!("fidelity_{tag}_{}.ckpt", std::process::id())),
        )
    }
}

impl Drop for ScratchCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Everything that must match for two campaign cells to be "bit-identical",
/// with float fields compared by their bit patterns.
type CellKey = (
    usize,
    String,
    String,
    usize,
    usize,
    usize,
    usize,
    Vec<(usize, u32, String)>,
);

fn cell_key(c: &CellStats) -> CellKey {
    (
        c.node,
        c.layer.clone(),
        format!("{:?}/{:?}", c.category, c.model),
        c.samples,
        c.masked,
        c.output_error,
        c.anomaly,
        c.events
            .iter()
            .map(|e| {
                (
                    e.faulty_neurons,
                    e.max_perturbation.to_bits(),
                    format!("{:?}", e.outcome),
                )
            })
            .collect(),
    )
}

fn assert_bit_identical(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(cell_key(x), cell_key(y));
    }
}

// ---------------------------------------------------------------------------
// Checkpoint round-trip (property-based)
// ---------------------------------------------------------------------------

const ALL_CATEGORIES: [FfCategory; 17] = {
    let mut cats = [FfCategory::LocalControl; 17];
    let stages = [
        PipelineStage::BeforeBuffer,
        PipelineStage::BufferToMac,
        PipelineStage::AfterMac,
    ];
    let vars = [
        VarType::Input,
        VarType::Weight,
        VarType::Bias,
        VarType::PartialSum,
        VarType::Output,
    ];
    let mut i = 0;
    while i < 15 {
        cats[i] = FfCategory::Datapath {
            stage: stages[i / 5],
            var: vars[i % 5],
        };
        i += 1;
    }
    cats[15] = FfCategory::LocalControl;
    cats[16] = FfCategory::GlobalControl;
    cats
};

fn arb_model() -> impl Strategy<Value = SoftwareFaultModel> {
    (0usize..6, 1usize..40, 1usize..40, 0u8..2).prop_map(|(pick, positions, channels, suffix)| {
        let kind = if pick % 2 == 0 {
            OperandKind::Input
        } else {
            OperandKind::Weight
        };
        match pick {
            0 | 1 => SoftwareFaultModel::BeforeBuffer { kind },
            2 | 3 => SoftwareFaultModel::Operand {
                kind,
                window: OperandWindow {
                    positions,
                    channels,
                },
                random_suffix: suffix == 1,
            },
            4 => SoftwareFaultModel::OutputValue,
            _ => SoftwareFaultModel::LocalControl,
        }
    })
}

fn arb_event() -> impl Strategy<Value = InjectionEvent> {
    let bits = prop_oneof![
        Just(f32::NAN.to_bits()),
        Just(f32::INFINITY.to_bits()),
        Just(f32::NEG_INFINITY.to_bits()),
        Just(0u32),
        0u32..u32::MAX,
    ];
    (0usize..10_000, bits, 0u8..3).prop_map(|(faulty_neurons, bits, out)| InjectionEvent {
        faulty_neurons,
        max_perturbation: f32::from_bits(bits),
        outcome: match out {
            0 => Outcome::Masked,
            1 => Outcome::OutputError,
            _ => Outcome::SystemAnomaly,
        },
    })
}

fn arb_cell() -> impl Strategy<Value = CellStats> {
    (
        0usize..64,
        0usize..ALL_CATEGORIES.len(),
        arb_model(),
        (0usize..500, 0usize..500, 0usize..500),
        prop::collection::vec(arb_event(), 0..6),
    )
        .prop_map(
            |(node, cat, model, (masked, output_error, anomaly), events)| CellStats {
                node,
                layer: format!("layer_{node}"),
                category: ALL_CATEGORIES[cat],
                model,
                samples: masked + output_error + anomaly,
                masked,
                output_error,
                anomaly,
                events,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any campaign's cells survive a write → parse round trip exactly,
    /// including NaN and ±∞ perturbation magnitudes (stored as raw f32
    /// bits), unusual tallies, and every category/model combination.
    #[test]
    fn checkpoint_round_trips_any_cells(
        cells in prop::collection::vec(arb_cell(), 1..8),
        fingerprint in 0u64..u64::MAX,
    ) {
        let mut buf = Vec::new();
        write_header(&mut buf, fingerprint).unwrap();
        for (idx, cell) in cells.iter().enumerate() {
            write_cell(&mut buf, idx, cell).unwrap();
        }
        let parsed = parse_checkpoint(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(parsed.fingerprint, fingerprint);
        prop_assert_eq!(parsed.cells.len(), cells.len());
        for ((idx, restored), (want_idx, want)) in
            parsed.cells.iter().zip(cells.iter().enumerate())
        {
            prop_assert_eq!(*idx, want_idx);
            prop_assert_eq!(cell_key(restored), cell_key(want));
        }
    }
}

// ---------------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------------

/// The last non-global cell in plan order: chaos targets it so, with one
/// worker, every earlier cell completes (and checkpoints) first.
fn victim_cell(baseline: &CampaignResult) -> (usize, FfCategory) {
    let c = baseline
        .cells
        .iter()
        .rev()
        .find(|c| c.category != FfCategory::GlobalControl)
        .expect("campaign has non-global cells");
    (c.node, c.category)
}

#[test]
fn panicking_cell_degrades_without_aborting_campaign() {
    let (engine, trace) = tiny_engine();
    let cfg = presets::nvdla_like();
    let baseline = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec(20, 77)).unwrap();
    assert!(baseline.failures.is_empty());
    let (node, category) = victim_cell(&baseline);

    let mut chaotic = spec(20, 77);
    chaotic.resilience.chaos = vec![ChaosSpec {
        node,
        category,
        mode: ChaosMode::PanicAtSample(3),
    }];
    let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &chaotic).unwrap();

    // Exactly one cell failed, with the panic payload preserved; retries
    // restart the RNG stream, so the recorded stream position is the panic
    // sample regardless of attempt count.
    assert_eq!(result.failures.len(), 1);
    let failure = &result.failures[0];
    assert_eq!((failure.node, failure.category), (node, category));
    assert_eq!(failure.attempts, 2);
    assert_eq!(failure.samples_completed, 3);
    assert!(
        matches!(&failure.reason, FailureReason::Panic(msg) if msg.contains("deliberate panic")),
        "unexpected reason: {}",
        failure.reason
    );

    // Every other cell is bit-identical to the healthy baseline, and the
    // degraded cell keeps the partial tally of its completed samples.
    assert_eq!(result.cells.len(), baseline.cells.len());
    for (got, want) in result.cells.iter().zip(&baseline.cells) {
        if (got.node, got.category) == (node, category) {
            assert_eq!(got.samples, 3);
            assert_eq!(got.masked + got.output_error + got.anomaly, 3);
        } else {
            assert_eq!(cell_key(got), cell_key(want));
        }
    }
}

#[test]
fn failure_budget_zero_aborts_campaign() {
    let (engine, trace) = tiny_engine();
    let cfg = presets::nvdla_like();
    let baseline = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec(10, 5)).unwrap();
    let (node, category) = victim_cell(&baseline);

    let mut chaotic = spec(10, 5);
    chaotic.resilience.failure_budget = 0;
    chaotic.resilience.max_retries_per_cell = 0;
    chaotic.resilience.chaos = vec![ChaosSpec {
        node,
        category,
        mode: ChaosMode::PanicAtSample(0),
    }];
    let err = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &chaotic).unwrap_err();
    assert!(
        err.to_string().contains("failure budget exhausted"),
        "unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------------
// Per-injection watchdog
// ---------------------------------------------------------------------------

#[test]
fn watchdog_reclassifies_stalled_injections_as_anomalies() {
    let (engine, trace) = tiny_engine();
    let cfg = presets::nvdla_like();
    let baseline = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec(3, 11)).unwrap();
    let (node, category) = victim_cell(&baseline);

    // The deadline clock starts before the chaos delay, so every injection
    // of the stalled cell deterministically overruns it; the healthy cells
    // of this micro-network finish far inside 250 ms.
    let mut stalled = spec(3, 11);
    stalled.resilience.injection_deadline = Some(Duration::from_millis(250));
    stalled.resilience.chaos = vec![ChaosSpec {
        node,
        category,
        mode: ChaosMode::DelayPerInjection(Duration::from_millis(400)),
    }];
    let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &stalled).unwrap();

    assert!(
        result.failures.is_empty(),
        "timeouts are outcomes, not failures"
    );
    let victim = result
        .cells
        .iter()
        .find(|c| (c.node, c.category) == (node, category))
        .unwrap();
    assert_eq!(
        victim.anomaly, victim.samples,
        "every stalled sample times out"
    );
    assert!(victim
        .events
        .iter()
        .all(|e| matches!(e.outcome, Outcome::SystemAnomaly)));
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

#[test]
fn killed_campaign_resumes_bit_identically() {
    let (engine, trace) = tiny_engine();
    let cfg = presets::nvdla_like();
    let ckpt = ScratchCkpt::new("kill_resume");

    // The uninterrupted reference run.
    let clean = spec(15, 123);
    let baseline = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &clean).unwrap();
    let (node, category) = victim_cell(&baseline);

    // "Kill" the campaign mid-run: one worker processes cells in plan order,
    // checkpointing each, until the chaos cell trips the zero failure budget
    // and aborts the whole campaign — leaving a partial checkpoint behind.
    let mut killed = spec(15, 123);
    killed.threads = 1;
    killed.resilience.failure_budget = 0;
    killed.resilience.max_retries_per_cell = 0;
    killed.resilience.checkpoint = Some(CheckpointSpec::new(&ckpt.0));
    killed.resilience.chaos = vec![ChaosSpec {
        node,
        category,
        mode: ChaosMode::PanicAtSample(0),
    }];
    let err = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &killed).unwrap_err();
    assert!(err.to_string().contains("failure budget exhausted"));

    // The checkpoint holds some, but not all, cells.
    let parsed = parse_checkpoint(std::io::BufReader::new(
        std::fs::File::open(&ckpt.0).unwrap(),
    ))
    .unwrap();
    assert!(!parsed.cells.is_empty(), "kill left no completed cells");
    assert!(
        parsed.cells.len() < baseline.cells.len(),
        "kill happened too late to exercise resume"
    );

    // Resuming with a clean spec completes the missing cells; deterministic
    // per-cell RNG streams make the combined result bit-identical.
    let resumed = CampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, clean.clone())
        .resume_from(&ckpt.0)
        .unwrap();
    assert!(resumed.failures.is_empty());
    assert_bit_identical(&baseline, &resumed);

    // And a second resume (now fully checkpointed) is still identical.
    let resumed_again = CampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, clean)
        .resume_from(&ckpt.0)
        .unwrap();
    assert_bit_identical(&baseline, &resumed_again);
}

#[test]
fn resume_rejects_foreign_checkpoint() {
    let (engine, trace) = tiny_engine();
    let cfg = presets::nvdla_like();
    let ckpt = ScratchCkpt::new("foreign");

    let mut first = spec(5, 1);
    first.resilience.checkpoint = Some(CheckpointSpec::new(&ckpt.0));
    run_campaign(&engine, &trace, &cfg, &TopOneMatch, &first).unwrap();

    // A different seed is a different campaign: its RNG streams do not match
    // the checkpointed tallies, so resuming must refuse.
    let err = CampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, spec(5, 2))
        .resume_from(&ckpt.0)
        .unwrap_err();
    assert!(
        err.to_string().contains("different campaign"),
        "unexpected error: {err}"
    );
}

#[test]
fn resume_flag_on_spec_reuses_checkpoint() {
    let (engine, trace) = tiny_engine();
    let cfg = presets::nvdla_like();
    let ckpt = ScratchCkpt::new("spec_resume");

    let mut write = spec(8, 31);
    write.resilience.checkpoint = Some(CheckpointSpec::new(&ckpt.0));
    let first = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &write).unwrap();

    let mut resume = spec(8, 31);
    resume.resilience.checkpoint = Some(CheckpointSpec::resuming(&ckpt.0));
    let second = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &resume).unwrap();
    assert_bit_identical(&first, &second);
}
