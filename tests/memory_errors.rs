//! Integration: the Sec. III-E memory-error extension — a bit flip in an
//! on-chip buffer word behaves exactly like the corresponding before-buffer
//! datapath fault, so the same software fault models cover memory errors.

use fidelity::core::validate::rtl_layer_for;
use fidelity::dnn::graph::Engine;
use fidelity::dnn::init::SplitMix64;
use fidelity::dnn::macspec::{OperandKind, Operands, Substitution};
use fidelity::dnn::precision::Precision;
use fidelity::rtl::{Disturbance, MemFault, ObservedFault, RtlEngine};
use fidelity::workloads::classification_suite;

fn setup() -> RtlEngine {
    let w = classification_suite(21).remove(1);
    let engine = Engine::new(w.network, Precision::Fp16, std::slice::from_ref(&w.inputs)).unwrap();
    let trace = engine.trace(&w.inputs).unwrap();
    let node = engine.network().node_index("r1_c1").unwrap();
    RtlEngine::new(rtl_layer_for(&engine, &trace, node).unwrap(), 8, 8)
}

#[test]
fn weight_memory_flip_matches_before_buffer_model() {
    let rtl = setup();
    let layer = rtl.layer().clone();
    let mut rng = SplitMix64::new(31);
    let mut checked = 0;
    for _ in 0..40 {
        let index = rng.next_below(layer.weight.len() as u64) as usize;
        let bit = rng.next_below(16) as u32;
        let run = rtl.run(Disturbance::Memory(MemFault {
            weight_buffer: true,
            index,
            bit,
        }));
        let observed = ObservedFault::from_run(rtl.clean_output(), &run);

        // The before-buffer software model for the same word.
        let faulty_value = layer.weight_codec.flip_bit(layer.weight.data()[index], bit);
        let subst = Substitution {
            kind: OperandKind::Weight,
            offset: index,
            value: faulty_value,
        };
        let ops = Operands {
            input: &layer.input,
            weight: &layer.weight,
        };
        let mut predicted = Vec::new();
        for off in layer.spec.neurons_using_weight(index) {
            let v = layer
                .output_codec
                .quantize(layer.spec.compute_at(&ops, off, Some(&subst)));
            let clean = rtl.clean_output().data()[off];
            if v.is_nan() || clean.is_nan() || (v - clean).abs() > 0.0 {
                predicted.push((off, v));
            }
        }
        assert_eq!(
            observed.faulty_neurons,
            predicted.iter().map(|(o, _)| *o).collect::<Vec<_>>(),
            "memory fault at word {index} bit {bit}"
        );
        for ((_, pv), rv) in predicted.iter().zip(&observed.faulty_values) {
            assert!(pv.to_bits() == rv.to_bits() || (pv.is_nan() && rv.is_nan()));
        }
        checked += usize::from(!observed.faulty_neurons.is_empty());
    }
    assert!(checked > 5, "too few visible memory faults ({checked})");
}

#[test]
fn input_memory_flip_affects_receptive_fields_only() {
    let rtl = setup();
    let layer = rtl.layer().clone();
    let mut rng = SplitMix64::new(32);
    for _ in 0..20 {
        let index = rng.next_below(layer.input.len() as u64) as usize;
        let run = rtl.run(Disturbance::Memory(MemFault {
            weight_buffer: false,
            index,
            bit: 14, // exponent bit: visible if the value is used at all
        }));
        let observed = ObservedFault::from_run(rtl.clean_output(), &run);
        let users: std::collections::HashSet<usize> =
            layer.spec.neurons_using_input(index).into_iter().collect();
        for n in &observed.faulty_neurons {
            assert!(
                users.contains(n),
                "neuron {n} does not use input word {index}"
            );
        }
    }
}
