//! Operational-telemetry integration drills: the `/metrics` exporter under
//! concurrent scrapes mid-campaign, end-to-end trace-id propagation from
//! HTTP admission to the rendered report, and readiness flipping to 503
//! while the daemon drains.

use std::sync::Arc;
use std::time::Duration;

use fidelity::obs::json::{self, Json};
use fidelity::obs::prom;
use fidelity::serve::{jobtrace, serve, Client, ServeConfig, Supervisor};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fidelity-obs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn boot(state: &std::path::Path) -> (fidelity::serve::ServeHandle, Client) {
    let sup = Supervisor::start(ServeConfig {
        state_dir: state.to_path_buf(),
        queue_cap: 8,
        workers: 1,
        campaign_threads: 2,
        chaos: Vec::new(),
    })
    .expect("supervisor boots");
    let handle = serve(sup, "127.0.0.1:0").expect("listener binds");
    let client = Client::new(handle.addr().to_string());
    (handle, client)
}

fn id_of(body: &str) -> String {
    let key = "\"id\":\"";
    let start = body.find(key).expect("no id in body") + key.len();
    body[start..].split('"').next().unwrap().to_owned()
}

#[test]
fn concurrent_metrics_scrapes_parse_and_stay_monotone() {
    // Timing must be armed for the latency histograms, as `fidelity serve`
    // arms it; tests share a process, so set it outright.
    fidelity::obs::set_timing(true);
    let state = scratch("scrape");
    let (handle, client) = boot(&state);

    // Enough samples that the campaign is still running while the
    // scrapers hammer /metrics.
    let reply = client
        .submit("{\"network\":\"lstm\",\"samples\":600,\"seed\":11}")
        .expect("submit");
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = id_of(&reply.body);

    let addr = handle.addr().to_string();
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = Client::new(addr);
                let mut last_submitted = 0.0f64;
                let mut last_injections = 0.0f64;
                let mut scrapes = 0usize;
                for _ in 0..20 {
                    let reply = client
                        .request("GET", "/metrics", None)
                        .expect("metrics scrape");
                    assert_eq!(reply.status, 200);
                    // Strict parse mid-campaign: cumulative histogram
                    // buckets, counts, and types must all hold together
                    // even while workers race the scrape.
                    let dump = prom::parse(&reply.body)
                        .unwrap_or_else(|e| panic!("scrape {scrapes} unparsable: {e}"));
                    let submitted = dump.scalar("serve_jobs_submitted").unwrap_or(0.0);
                    let injections = dump.scalar("campaign_injections").unwrap_or(0.0);
                    assert!(
                        submitted >= last_submitted,
                        "serve_jobs_submitted went backwards: {last_submitted} -> {submitted}"
                    );
                    assert!(
                        injections >= last_injections,
                        "campaign_injections went backwards: {last_injections} -> {injections}"
                    );
                    last_submitted = submitted;
                    last_injections = injections;
                    scrapes += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                scrapes
            })
        })
        .collect();
    for s in scrapers {
        assert_eq!(s.join().expect("scraper thread"), 20);
    }

    let status = client
        .wait_terminal(&id, 2400, Duration::from_millis(25))
        .expect("job finishes");
    assert!(status.contains("\"state\":\"done\""), "{status}");

    // The scrape route instrumented itself: at least 80 requests counted,
    // and with timing armed the latency histogram observed them.
    let reply = client
        .request("GET", "/metrics", None)
        .expect("final scrape");
    let dump = prom::parse(&reply.body).expect("final scrape parses");
    assert!(dump.scalar("serve_http_requests_metrics").unwrap_or(0.0) >= 80.0);
    assert!(
        dump.histogram_count("serve_http_latency_us_metrics")
            .unwrap_or(0.0)
            >= 80.0
    );
    let _ = client.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn trace_id_propagates_from_admission_to_report() {
    let state = scratch("traceid");
    let (handle, client) = boot(&state);

    let reply = client
        .submit("{\"network\":\"lstm\",\"samples\":25,\"seed\":5}")
        .expect("submit");
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = id_of(&reply.body);
    let status = client
        .wait_terminal(&id, 1200, Duration::from_millis(25))
        .expect("job finishes");
    assert!(status.contains("\"state\":\"done\""), "{status}");

    // The id in the journal is the job id the trace id derives from: the
    // whole chain is deterministic, so it can be recomputed from the
    // journal alone.
    let journal = std::fs::read_to_string(state.join("jobs.journal")).expect("journal");
    assert!(journal.contains(&id), "journal lost the job id");
    let want = jobtrace::trace_id(&id);

    let trace = client
        .request("GET", &format!("/campaigns/{id}/trace"), None)
        .expect("trace route");
    assert_eq!(trace.status, 200, "{}", trace.body);
    let (mut admits, mut run_spans, mut worker_cells, mut terminals) = (0, 0, 0, 0);
    for line in trace.body.lines().filter(|l| !l.is_empty()) {
        let v = json::parse(line).expect("trace line parses");
        assert_eq!(
            v.get("trace").and_then(Json::as_str),
            Some(want.as_str()),
            "wrong trace id on: {line}"
        );
        match v.get("ev").and_then(Json::as_str) {
            Some("job.admit") => admits += 1,
            Some("job.span") if v.get("phase").and_then(Json::as_str) == Some("run") => {
                run_spans += 1;
            }
            Some("cell.done") if v.get("worker").and_then(Json::as_u64).is_some() => {
                worker_cells += 1;
            }
            Some("job.terminal") => terminals += 1,
            _ => {}
        }
    }
    assert!(admits >= 1, "no job.admit record");
    assert!(run_spans >= 1, "no run span");
    assert!(worker_cells >= 1, "no worker-attributed cell records");
    assert!(terminals >= 1, "no job.terminal record");

    // `fidelity report --trace` renders the same file into a span tree
    // keyed by the trace id, with the terminal state and phase times.
    let summary = fidelity::obs::report::summarize_file(&jobtrace::trace_path(&state, &id))
        .expect("trace summarizes");
    let job = summary.jobs.get(&want).expect("job keyed by trace id");
    assert_eq!(job.state, "done");
    assert!(job.attempts >= 1);
    assert!(!summary.is_lossy(), "trace reported lossy");
    let rendered = format!("{summary}");
    assert!(
        rendered.contains(&want),
        "report lost the trace id:\n{rendered}"
    );
    assert!(
        rendered.contains("queue_wait"),
        "no phase tree:\n{rendered}"
    );

    let _ = client.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn healthz_flips_to_503_when_draining() {
    let state = scratch("drain");
    let (handle, client) = boot(&state);

    let ready = client.healthz().expect("healthz up");
    assert_eq!(ready.status, 200, "{}", ready.body);
    assert!(ready.body.contains("\"status\":\"ok\""), "{}", ready.body);
    assert!(ready.body.contains("\"accepting\":true"), "{}", ready.body);
    assert!(ready.body.contains("\"workers_alive\":"), "{}", ready.body);

    // Drain the supervisor directly (the listener stays up, which is the
    // point: a draining daemon still answers, but not-ready).
    let sup: Arc<Supervisor> = handle.supervisor();
    sup.shutdown_and_drain();

    let draining = client.healthz().expect("healthz while draining");
    assert_eq!(draining.status, 503, "{}", draining.body);
    assert!(
        draining.body.contains("\"status\":\"draining\""),
        "{}",
        draining.body
    );
    assert!(
        draining.body.contains("\"accepting\":false"),
        "{}",
        draining.body
    );

    handle.stop();
    handle.wait();
    let _ = std::fs::remove_dir_all(&state);
}
