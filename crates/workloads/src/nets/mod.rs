//! Structurally-faithful scaled-down versions of the paper's workloads
//! (Table III / Table IV): Inception, ResNet, MobileNet, Yolo, Transformer,
//! and an LSTM network.
//!
//! Each builder is deterministic in its seed. Weights are Kaiming-scaled
//! synthetic values (see DESIGN.md §2 for why this substitution preserves
//! the studied resilience phenomena).

pub mod inception;
pub mod lstm;
pub mod mobilenet;
pub mod resnet;
pub mod transformer;
pub mod yolo;

pub use inception::inception_lite;
pub use lstm::lstm_net;
pub use mobilenet::mobilenet_lite;
pub use resnet::resnet_lite;
pub use transformer::transformer_lite;
pub use yolo::yolo_lite;

use fidelity_dnn::graph::Network;
use fidelity_dnn::init::kaiming_tensor;
use fidelity_dnn::layers::Conv2d;
use fidelity_dnn::tensor::Tensor;

use crate::data;

/// Task family of a workload (decides its correctness metric).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Image classification (top-1 match).
    Classification,
    /// Machine translation (BLEU thresholds).
    Translation,
    /// Object detection (detection-score thresholds).
    Detection,
}

/// A ready-to-deploy workload: the network plus one input sample.
#[derive(Debug)]
pub struct Workload {
    /// Network name.
    pub name: String,
    /// Task family.
    pub kind: WorkloadKind,
    /// The network graph.
    pub network: Network,
    /// One input sample (binding order matches the network's inputs).
    pub inputs: Vec<Tensor>,
}

/// Builds the classification suite of Fig. 4: Inception, ResNet, MobileNet.
pub fn classification_suite(seed: u64) -> Vec<Workload> {
    vec![
        Workload {
            name: "inception".into(),
            kind: WorkloadKind::Classification,
            network: inception_lite(seed),
            inputs: vec![data::synthetic_image(seed ^ 1, 3, 16)],
        },
        Workload {
            name: "resnet".into(),
            kind: WorkloadKind::Classification,
            network: resnet_lite(seed),
            inputs: vec![data::synthetic_image(seed ^ 2, 3, 16)],
        },
        Workload {
            name: "mobilenet".into(),
            kind: WorkloadKind::Classification,
            network: mobilenet_lite(seed),
            inputs: vec![data::synthetic_image(seed ^ 3, 3, 16)],
        },
    ]
}

/// Builds the Yolo detection workload of Fig. 5(b).
pub fn yolo_workload(seed: u64) -> Workload {
    Workload {
        name: "yolo".into(),
        kind: WorkloadKind::Detection,
        network: yolo_lite(seed),
        inputs: vec![data::synthetic_image(seed ^ 4, 3, 16)],
    }
}

/// Builds the Transformer translation workload of Fig. 5(a).
pub fn transformer_workload(seed: u64) -> Workload {
    let (network, seq) = transformer_lite(seed);
    Workload {
        name: "transformer".into(),
        kind: WorkloadKind::Translation,
        network,
        inputs: vec![
            data::token_sequence(seed ^ 5, seq, transformer::VOCAB),
            data::position_ids(seq),
            data::token_sequence(seed ^ 6, seq, transformer::VOCAB),
            data::position_ids(seq),
        ],
    }
}

/// Builds the LSTM (HAR) workload used in the validation set (Table III).
pub fn lstm_workload(seed: u64) -> Workload {
    let (network, steps, features) = lstm_net(seed);
    Workload {
        name: "lstm".into(),
        kind: WorkloadKind::Classification,
        network,
        inputs: (0..steps)
            .map(|t| data::sensor_step(seed ^ 7, t, features))
            .collect(),
    }
}

pub(crate) fn conv(
    name: &str,
    seed: u64,
    out_c: usize,
    in_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Conv2d {
    let weight = kaiming_tensor(seed, vec![out_c, in_c, k, k], in_c * k * k);
    Conv2d::new(name, weight)
        .expect("rank-4 weight by construction")
        .with_stride(stride, stride)
        .with_padding(pad, pad)
}

pub(crate) fn dense_w(seed: u64, out_f: usize, in_f: usize) -> Tensor {
    kaiming_tensor(seed, vec![out_f, in_f], in_f)
}

/// Classifier head weights with deliberately *tight* top-1 margins: every
/// class row shares a base direction plus a small per-class jitter, so the
/// logit gap between the top classes is a small fraction of the feature
/// magnitude. Trained ImageNet-scale classifiers have thin decision margins
/// (1000 classes); without this, a 10-class synthetic head would mask nearly
/// every bounded (integer-format) perturbation and flatten the paper's
/// precision comparison (Key result 4).
pub(crate) fn classifier_w(seed: u64, classes: usize, in_f: usize) -> Tensor {
    let base = kaiming_tensor(seed ^ 0x5A5A, vec![1, in_f], in_f);
    let jitter = kaiming_tensor(seed ^ 0xA5A5, vec![classes, in_f], in_f);
    let mut data = Vec::with_capacity(classes * in_f);
    for c in 0..classes {
        for f in 0..in_f {
            data.push(base.data()[f] + 0.12 * jitter.data()[c * in_f + f]);
        }
    }
    Tensor::from_vec(vec![classes, in_f], data).expect("sized correctly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_dnn::graph::Engine;
    use fidelity_dnn::precision::Precision;

    #[test]
    fn all_workloads_run_fault_free() {
        let mut workloads = classification_suite(42);
        workloads.push(yolo_workload(42));
        workloads.push(transformer_workload(42));
        workloads.push(lstm_workload(42));
        for w in workloads {
            let engine = Engine::new(w.network, Precision::Fp16, std::slice::from_ref(&w.inputs))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let out = engine
                .forward(&w.inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(!out.is_empty(), "{} produced empty output", w.name);
            assert!(
                !out.has_non_finite(),
                "{} produced non-finite outputs",
                w.name
            );
        }
    }

    #[test]
    fn workloads_have_mac_layers() {
        for w in classification_suite(1) {
            let engine = Engine::new(w.network, Precision::Fp32, &[]).unwrap();
            let trace = engine.trace(&w.inputs).unwrap();
            let macs = (0..engine.network().node_count())
                .filter(|&i| engine.mac_spec(i, &trace).is_some())
                .count();
            assert!(macs >= 3, "{} has too few MAC layers ({macs})", w.name);
        }
    }
}
