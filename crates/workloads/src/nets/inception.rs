//! Inception-lite: a stem plus two inception modules with the four classic
//! parallel branches (1×1, 1×1→3×3, 1×1→5×5, pool→1×1) and channel
//! concatenation, followed by global pooling and a classifier.

use fidelity_dnn::graph::{Network, NetworkBuilder};
use fidelity_dnn::layers::{
    Activation, ActivationKind, Concat, Dense, Flatten, GlobalAvgPool, Pool2d, PoolKind,
};

use super::{classifier_w, conv};

/// Number of classes of the synthetic classification task.
pub const CLASSES: usize = 10;

/// Builds the Inception-lite classifier for `[1, 3, 16, 16]` inputs.
///
/// # Panics
///
/// Panics only on an internal wiring bug (the topology is fixed).
pub fn inception_lite(seed: u64) -> Network {
    let mut b = NetworkBuilder::new("inception-lite").input("x");
    b = b
        .layer(conv("stem", seed ^ 0x10, 16, 3, 3, 2, 1), &["x"])
        .unwrap()
        .layer(
            Activation::new("stem_relu", ActivationKind::Relu),
            &["stem"],
        )
        .unwrap();

    let mut prev = "stem_relu".to_owned();
    let mut prev_c = 16;
    for m in 0..2u64 {
        let p = |s: &str| format!("m{m}_{s}");
        // Branch 0: 1×1.
        b = b
            .layer(
                conv(&p("b0"), seed ^ (0x20 + m), 8, prev_c, 1, 1, 0),
                &[&prev],
            )
            .unwrap();
        // Branch 1: 1×1 → 3×3.
        b = b
            .layer(
                conv(&p("b1a"), seed ^ (0x30 + m), 8, prev_c, 1, 1, 0),
                &[&prev],
            )
            .unwrap()
            .layer(
                conv(&p("b1b"), seed ^ (0x40 + m), 8, 8, 3, 1, 1),
                &[&p("b1a")],
            )
            .unwrap();
        // Branch 2: 1×1 → 5×5.
        b = b
            .layer(
                conv(&p("b2a"), seed ^ (0x50 + m), 4, prev_c, 1, 1, 0),
                &[&prev],
            )
            .unwrap()
            .layer(
                conv(&p("b2b"), seed ^ (0x60 + m), 4, 4, 5, 1, 2),
                &[&p("b2a")],
            )
            .unwrap();
        // Branch 3: 3×3 max pool → 1×1.
        b = b
            .layer(
                Pool2d::new(p("b3p"), PoolKind::Max, 3)
                    .with_stride(1)
                    .with_padding(1),
                &[&prev],
            )
            .unwrap()
            .layer(
                conv(&p("b3c"), seed ^ (0x70 + m), 4, prev_c, 1, 1, 0),
                &[&p("b3p")],
            )
            .unwrap();
        // Concatenate the branches and apply the module non-linearity.
        b = b
            .layer(
                Concat::new(p("cat"), 1),
                &[&p("b0"), &p("b1b"), &p("b2b"), &p("b3c")],
            )
            .unwrap()
            .layer(
                Activation::new(p("relu"), ActivationKind::Relu),
                &[&p("cat")],
            )
            .unwrap();
        prev = p("relu");
        prev_c = 8 + 8 + 4 + 4;
        // Downsample between modules so the classifier pools over a small
        // spatial field (deep real networks reach GAP at 7×7 or smaller;
        // a wide pooling field would dilute per-neuron faults unrealistically).
        if m == 0 {
            b = b
                .layer(Pool2d::new("down0", PoolKind::Max, 2), &[&prev])
                .unwrap();
            prev = "down0".to_owned();
        }
    }

    b.layer(GlobalAvgPool::new("gap"), &[&prev])
        .unwrap()
        .layer(Flatten::new("flat"), &["gap"])
        .unwrap()
        .layer(
            Dense::new("classifier", classifier_w(seed ^ 0x80, CLASSES, prev_c)).unwrap(),
            &["flat"],
        )
        .unwrap()
        .build()
        .expect("inception-lite topology is fixed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_image;
    use fidelity_dnn::graph::Engine;
    use fidelity_dnn::precision::Precision;

    #[test]
    fn output_is_class_logits() {
        let net = inception_lite(7);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let out = engine.forward(&[synthetic_image(1, 3, 16)]).unwrap();
        assert_eq!(out.shape(), &[1, CLASSES]);
    }

    #[test]
    fn concat_branches_produce_24_channels() {
        let net = inception_lite(7);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let trace = engine.trace(&[synthetic_image(1, 3, 16)]).unwrap();
        let idx = engine.network().node_index("m0_cat").unwrap();
        assert_eq!(trace.node_outputs[idx].shape(), &[1, 24, 8, 8]);
    }
}
