//! Transformer-lite: a multi-head encoder–decoder translation model built
//! from graph primitives, so that the attention matrix multiplications are
//! first-class MatMul fault-injection targets (the paper's "MatMul layer in
//! attention", Table III).
//!
//! Heads are realized as parallel attention branches with per-head
//! projections, concatenated and mixed by an output projection — no
//! reshape/transpose gymnastics, every step visible to fault injection.
//!
//! Simplifications vs. a full Transformer (documented in DESIGN.md): one
//! encoder and one decoder block, learned positional embeddings fed as
//! explicit position ids, greedy non-autoregressive decoding and no causal
//! mask. The fault-relevant structure — Q/K/V projections, scaled
//! dot-product attention via MatMul, softmax, head concat + output
//! projection, residuals, layer norms, FFN — is all present.

use fidelity_dnn::graph::{Network, NetworkBuilder};
use fidelity_dnn::init::{kaiming_tensor, uniform_tensor};
use fidelity_dnn::layers::{
    Activation, ActivationKind, Add, Concat, Dense, Embedding, LayerNorm, MatMul, Scale, Softmax,
};
use fidelity_dnn::tensor::Tensor;

use super::dense_w;

/// Vocabulary size.
pub const VOCAB: usize = 24;
/// Model width.
pub const D_MODEL: usize = 16;
/// Attention heads (parallel branches of `D_MODEL / HEADS` width each).
pub const HEADS: usize = 2;
/// Feed-forward width.
pub const D_FFN: usize = 32;
/// Sequence length (source and target). Long enough that single-token
/// decode errors move BLEU by less than the 10% threshold, so the 10% / 20%
/// metrics genuinely differ (as in the paper's Fig. 5a).
pub const SEQ: usize = 16;

fn layer_norm(name: &str, seed: u64) -> LayerNorm {
    let gamma = uniform_tensor(seed, vec![D_MODEL], 0.1).map(|v| 1.0 + v);
    let beta = uniform_tensor(seed ^ 1, vec![D_MODEL], 0.05);
    LayerNorm::new(name, gamma, beta).expect("rank-1 params")
}

/// Appends one multi-head attention block (self- or cross-attention) and
/// returns the name of its output: per-head Q/K/V projections and scaled
/// dot-product attention, head concat, output projection, residual, norm.
fn attention(
    mut b: NetworkBuilder,
    prefix: &str,
    seed: u64,
    query_src: &str,
    kv_src: &str,
) -> (NetworkBuilder, String) {
    let p = |s: String| format!("{prefix}_{s}");
    let d_head = D_MODEL / HEADS;
    let mut head_outputs = Vec::new();
    for h in 0..HEADS {
        let hp = |s: &str| p(format!("h{h}_{s}"));
        let hs = seed ^ ((h as u64 + 1) << 8);
        b = b
            .layer(
                Dense::new(hp("q"), dense_w(hs ^ 0x11, d_head, D_MODEL)).unwrap(),
                &[query_src],
            )
            .unwrap()
            .layer(
                Dense::new(hp("k"), dense_w(hs ^ 0x12, d_head, D_MODEL)).unwrap(),
                &[kv_src],
            )
            .unwrap()
            .layer(
                Dense::new(hp("v"), dense_w(hs ^ 0x13, d_head, D_MODEL)).unwrap(),
                &[kv_src],
            )
            .unwrap()
            .layer(MatMul::transposed(hp("scores")), &[&hp("q"), &hp("k")])
            .unwrap()
            .layer(
                Scale::new(hp("scaled"), 1.0 / (d_head as f32).sqrt()),
                &[&hp("scores")],
            )
            .unwrap()
            .layer(Softmax::new(hp("attn")), &[&hp("scaled")])
            .unwrap()
            .layer(MatMul::new(hp("ctx")), &[&hp("attn"), &hp("v")])
            .unwrap();
        head_outputs.push(hp("ctx"));
    }
    let head_refs: Vec<&str> = head_outputs.iter().map(String::as_str).collect();
    b = b
        .layer(Concat::new(p("heads".into()), 1), &head_refs)
        .unwrap()
        .layer(
            Dense::new(p("proj".into()), dense_w(seed ^ 0x15, D_MODEL, D_MODEL)).unwrap(),
            &[&p("heads".into())],
        )
        .unwrap()
        .layer(Add::new(p("res".into())), &[&p("proj".into()), query_src])
        .unwrap()
        .layer(
            layer_norm(&p("ln".into()), seed ^ 0x14),
            &[&p("res".into())],
        )
        .unwrap();
    let out = p("ln".into());
    (b, out)
}

/// Appends one feed-forward block with residual and norm.
fn ffn(mut b: NetworkBuilder, prefix: &str, seed: u64, src: &str) -> (NetworkBuilder, String) {
    let p = |s: &str| format!("{prefix}_{s}");
    b = b
        .layer(
            Dense::new(p("ffn1"), dense_w(seed ^ 0x21, D_FFN, D_MODEL)).unwrap(),
            &[src],
        )
        .unwrap()
        .layer(
            Activation::new(p("ffn_relu"), ActivationKind::Relu),
            &[&p("ffn1")],
        )
        .unwrap()
        .layer(
            Dense::new(p("ffn2"), dense_w(seed ^ 0x22, D_MODEL, D_FFN)).unwrap(),
            &[&p("ffn_relu")],
        )
        .unwrap()
        .layer(Add::new(p("ffn_res")), &[&p("ffn2"), src])
        .unwrap()
        .layer(layer_norm(&p("ffn_ln"), seed ^ 0x23), &[&p("ffn_res")])
        .unwrap();
    let out = p("ffn_ln");
    (b, out)
}

fn embedding_table(seed: u64, rows: usize) -> Tensor {
    kaiming_tensor(seed, vec![rows, D_MODEL], D_MODEL)
}

/// Builds the Transformer-lite model. Inputs, in order: source token ids
/// `[SEQ]`, source position ids `[SEQ]`, target token ids `[SEQ]`, target
/// position ids `[SEQ]`. Output: logits `[SEQ, VOCAB]`.
pub fn transformer_lite(seed: u64) -> (Network, usize) {
    let mut b = NetworkBuilder::new("transformer-lite")
        .input("src")
        .input("src_pos")
        .input("tgt")
        .input("tgt_pos");

    // Encoder embeddings: token + learned positional.
    b = b
        .layer(
            Embedding::new("src_emb", embedding_table(seed ^ 0x31, VOCAB)).unwrap(),
            &["src"],
        )
        .unwrap()
        .layer(
            Embedding::new("src_pos_emb", embedding_table(seed ^ 0x32, SEQ)).unwrap(),
            &["src_pos"],
        )
        .unwrap()
        .layer(Add::new("enc_in"), &["src_emb", "src_pos_emb"])
        .unwrap();

    let (b2, enc_attn) = attention(b, "enc_sa", seed ^ 0x41, "enc_in", "enc_in");
    let (b3, memory) = ffn(b2, "enc", seed ^ 0x42, &enc_attn);
    b = b3;

    // Decoder embeddings.
    b = b
        .layer(
            Embedding::new("tgt_emb", embedding_table(seed ^ 0x33, VOCAB)).unwrap(),
            &["tgt"],
        )
        .unwrap()
        .layer(
            Embedding::new("tgt_pos_emb", embedding_table(seed ^ 0x34, SEQ)).unwrap(),
            &["tgt_pos"],
        )
        .unwrap()
        .layer(Add::new("dec_in"), &["tgt_emb", "tgt_pos_emb"])
        .unwrap();

    let (b4, dec_sa) = attention(b, "dec_sa", seed ^ 0x43, "dec_in", "dec_in");
    let (b5, dec_ca) = attention(b4, "dec_ca", seed ^ 0x44, &dec_sa, &memory);
    let (mut b6, dec_out) = ffn(b5, "dec", seed ^ 0x45, &dec_ca);

    b6 = b6
        .layer(
            Dense::new("lm_head", dense_w(seed ^ 0x51, VOCAB, D_MODEL)).unwrap(),
            &[&dec_out],
        )
        .unwrap();
    (b6.build().expect("transformer-lite topology is fixed"), SEQ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{position_ids, token_sequence};
    use fidelity_dnn::graph::Engine;
    use fidelity_dnn::layers::LayerKind;
    use fidelity_dnn::precision::Precision;

    fn inputs() -> Vec<Tensor> {
        vec![
            token_sequence(1, SEQ, VOCAB),
            position_ids(SEQ),
            token_sequence(2, SEQ, VOCAB),
            position_ids(SEQ),
        ]
    }

    #[test]
    fn logits_shape() {
        let (net, _) = transformer_lite(11);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let out = engine.forward(&inputs()).unwrap();
        assert_eq!(out.shape(), &[SEQ, VOCAB]);
    }

    #[test]
    fn attention_matmuls_are_mac_targets() {
        let (net, _) = transformer_lite(11);
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let trace = engine.trace(&inputs()).unwrap();
        let matmuls: Vec<usize> = (0..engine.network().node_count())
            .filter(|&i| {
                engine.network().layer(i).kind() == LayerKind::MatMul
                    && engine.mac_spec(i, &trace).is_some()
            })
            .collect();
        // (scores + ctx) × HEADS per attention block × 3 blocks.
        assert_eq!(matmuls.len(), 2 * HEADS * 3);
    }

    #[test]
    fn positional_embedding_breaks_symmetry() {
        let (net, _) = transformer_lite(11);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        // Same token at every position must still produce different logits
        // per position thanks to the positional embedding.
        let same = Tensor::from_slice(&[3.0; SEQ]);
        let out = engine
            .forward(&[same.clone(), position_ids(SEQ), same, position_ids(SEQ)])
            .unwrap();
        let row0: Vec<f32> = (0..VOCAB).map(|c| out.at2(0, c)).collect();
        let row1: Vec<f32> = (0..VOCAB).map(|c| out.at2(1, c)).collect();
        assert_ne!(row0, row1);
    }
}
