//! MobileNet-lite: a stem followed by depthwise-separable blocks
//! (depthwise 3×3 + pointwise 1×1, ReLU6 activations), global pooling, and
//! a classifier.

use fidelity_dnn::graph::{Network, NetworkBuilder};
use fidelity_dnn::init::kaiming_tensor;
use fidelity_dnn::layers::{Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool};

use super::{classifier_w, conv};

/// Number of classes of the synthetic classification task.
pub const CLASSES: usize = 10;

fn depthwise(name: &str, seed: u64, channels: usize, stride: usize) -> Conv2d {
    let weight = kaiming_tensor(seed, vec![channels, 1, 3, 3], 9);
    Conv2d::new(name, weight)
        .expect("rank-4 weight")
        .with_stride(stride, stride)
        .with_padding(1, 1)
        .with_groups(channels)
}

/// Builds the MobileNet-lite classifier for `[1, 3, 16, 16]` inputs.
pub fn mobilenet_lite(seed: u64) -> Network {
    let mut b = NetworkBuilder::new("mobilenet-lite").input("x");
    b = b
        .layer(conv("stem", seed ^ 0xA1, 16, 3, 3, 2, 1), &["x"])
        .unwrap()
        .layer(
            Activation::new("stem_relu6", ActivationKind::Relu6),
            &["stem"],
        )
        .unwrap();

    let blocks = [(16usize, 32usize, 1usize), (32, 64, 2)];
    let mut prev = "stem_relu6".to_owned();
    for (i, &(in_c, out_c, stride)) in blocks.iter().enumerate() {
        let p = |s: &str| format!("ds{i}_{s}");
        b = b
            .layer(
                depthwise(&p("dw"), seed ^ (0xB0 + i as u64), in_c, stride),
                &[&prev],
            )
            .unwrap()
            .layer(
                Activation::new(p("dw_relu6"), ActivationKind::Relu6),
                &[&p("dw")],
            )
            .unwrap()
            .layer(
                conv(&p("pw"), seed ^ (0xC0 + i as u64), out_c, in_c, 1, 1, 0),
                &[&p("dw_relu6")],
            )
            .unwrap()
            .layer(
                Activation::new(p("pw_relu6"), ActivationKind::Relu6),
                &[&p("pw")],
            )
            .unwrap();
        prev = p("pw_relu6");
    }

    b.layer(GlobalAvgPool::new("gap"), &[&prev])
        .unwrap()
        .layer(Flatten::new("flat"), &["gap"])
        .unwrap()
        .layer(
            Dense::new("classifier", classifier_w(seed ^ 0xD0, CLASSES, 64)).unwrap(),
            &["flat"],
        )
        .unwrap()
        .build()
        .expect("mobilenet-lite topology is fixed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_image;
    use fidelity_dnn::graph::Engine;
    use fidelity_dnn::layers::LayerKind;
    use fidelity_dnn::precision::Precision;

    #[test]
    fn output_is_class_logits() {
        let net = mobilenet_lite(5);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let out = engine.forward(&[synthetic_image(2, 3, 16)]).unwrap();
        assert_eq!(out.shape(), &[1, CLASSES]);
    }

    #[test]
    fn contains_depthwise_convolutions() {
        let net = mobilenet_lite(5);
        let depthwise_count = net
            .iter_layers()
            .filter(|(_, l)| l.kind() == LayerKind::Conv && l.name().contains("dw"))
            .count();
        assert_eq!(depthwise_count, 2);
    }
}
