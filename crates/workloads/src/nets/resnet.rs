//! ResNet-lite: a stem plus two residual blocks (3×3 conv / folded BN /
//! ReLU / 3×3 conv / folded BN + identity-or-projection skip), global
//! pooling, and a classifier.

use super::{classifier_w, conv};
use fidelity_dnn::graph::{Network, NetworkBuilder};
use fidelity_dnn::layers::{
    Activation, ActivationKind, Add, Dense, Flatten, GlobalAvgPool, ScaleShift,
};

/// Number of classes of the synthetic classification task.
pub const CLASSES: usize = 10;

fn bn(name: String, channels: usize, seed: u64) -> ScaleShift {
    // Folded batch-norm with mild per-channel variation.
    let gamma = fidelity_dnn::init::uniform_tensor(seed, vec![channels], 0.2).map(|v| 1.0 + v);
    let beta = fidelity_dnn::init::uniform_tensor(seed ^ 1, vec![channels], 0.1);
    ScaleShift::new(name, gamma, beta).expect("equal-length rank-1 params")
}

/// Builds the ResNet-lite classifier for `[1, 3, 16, 16]` inputs.
pub fn resnet_lite(seed: u64) -> Network {
    let mut b = NetworkBuilder::new("resnet-lite").input("x");
    b = b
        .layer(conv("stem", seed ^ 0x01, 16, 3, 3, 2, 1), &["x"])
        .unwrap()
        .layer(
            Activation::new("stem_relu", ActivationKind::Relu),
            &["stem"],
        )
        .unwrap();

    // Block 1: identity skip, 16 → 16 channels.
    b = b
        .layer(conv("r1_c1", seed ^ 0x02, 16, 16, 3, 1, 1), &["stem_relu"])
        .unwrap()
        .layer(bn("r1_bn1".into(), 16, seed ^ 0x03), &["r1_c1"])
        .unwrap()
        .layer(
            Activation::new("r1_relu1", ActivationKind::Relu),
            &["r1_bn1"],
        )
        .unwrap()
        .layer(conv("r1_c2", seed ^ 0x04, 16, 16, 3, 1, 1), &["r1_relu1"])
        .unwrap()
        .layer(bn("r1_bn2".into(), 16, seed ^ 0x05), &["r1_c2"])
        .unwrap()
        .layer(Add::new("r1_add"), &["r1_bn2", "stem_relu"])
        .unwrap()
        .layer(Activation::new("r1_out", ActivationKind::Relu), &["r1_add"])
        .unwrap();

    // Block 2: stride-2 downsample with a 1×1 projection skip, 16 → 32.
    b = b
        .layer(conv("r2_c1", seed ^ 0x06, 32, 16, 3, 2, 1), &["r1_out"])
        .unwrap()
        .layer(bn("r2_bn1".into(), 32, seed ^ 0x07), &["r2_c1"])
        .unwrap()
        .layer(
            Activation::new("r2_relu1", ActivationKind::Relu),
            &["r2_bn1"],
        )
        .unwrap()
        .layer(conv("r2_c2", seed ^ 0x08, 32, 32, 3, 1, 1), &["r2_relu1"])
        .unwrap()
        .layer(bn("r2_bn2".into(), 32, seed ^ 0x09), &["r2_c2"])
        .unwrap()
        .layer(conv("r2_proj", seed ^ 0x0A, 32, 16, 1, 2, 0), &["r1_out"])
        .unwrap()
        .layer(Add::new("r2_add"), &["r2_bn2", "r2_proj"])
        .unwrap()
        .layer(Activation::new("r2_out", ActivationKind::Relu), &["r2_add"])
        .unwrap();

    b.layer(GlobalAvgPool::new("gap"), &["r2_out"])
        .unwrap()
        .layer(Flatten::new("flat"), &["gap"])
        .unwrap()
        .layer(
            Dense::new("classifier", classifier_w(seed ^ 0x0B, CLASSES, 32)).unwrap(),
            &["flat"],
        )
        .unwrap()
        .build()
        .expect("resnet-lite topology is fixed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_image;
    use fidelity_dnn::graph::Engine;
    use fidelity_dnn::precision::Precision;

    #[test]
    fn output_is_class_logits() {
        let net = resnet_lite(3);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let out = engine.forward(&[synthetic_image(1, 3, 16)]).unwrap();
        assert_eq!(out.shape(), &[1, CLASSES]);
    }

    #[test]
    fn downsample_halves_spatial_dims() {
        let net = resnet_lite(3);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let trace = engine.trace(&[synthetic_image(1, 3, 16)]).unwrap();
        let idx = engine.network().node_index("r2_out").unwrap();
        assert_eq!(trace.node_outputs[idx].shape(), &[1, 32, 4, 4]);
    }

    #[test]
    fn skip_connection_feeds_block_output() {
        // Residual structure: zeroing the block's conv path would leave the
        // skip; here we simply verify r1_add consumes both branches.
        let net = resnet_lite(3);
        assert!(net.node_index("r1_add").is_some());
        assert!(net.node_index("r2_proj").is_some());
    }
}
