//! LSTM-net: a recurrent classifier over sensor windows (UCI-HAR stand-in),
//! built as an *unrolled* graph whose per-step gate projections are explicit
//! fully-connected layers — the paper's "FC layer in LSTM" fault-injection
//! target (Table III).
//!
//! The cell follows the standard equations with gate order i, f, g, o;
//! weights are shared across the unrolled steps (the same tensors are
//! installed in each step's Dense nodes). The monolithic
//! [`fidelity_dnn::layers::Lstm`] layer computes identical values; a test
//! asserts the two agree, which pins the unrolled wiring.

use fidelity_dnn::graph::{Network, NetworkBuilder};
use fidelity_dnn::layers::{Activation, ActivationKind, Add, BiasAdd, Dense, Mul, Slice};
use fidelity_dnn::tensor::Tensor;

use super::dense_w;

/// Hidden-state width.
pub const HIDDEN: usize = 8;
/// Input features per step.
pub const FEATURES: usize = 6;
/// Unrolled time steps.
pub const STEPS: usize = 3;
/// Output classes (HAR activities).
pub const CLASSES: usize = 5;

/// The shared LSTM weights of a given seed.
pub fn lstm_weights(seed: u64) -> (Tensor, Tensor, Tensor) {
    (
        dense_w(seed ^ 0x61, 4 * HIDDEN, FEATURES),
        dense_w(seed ^ 0x62, 4 * HIDDEN, HIDDEN),
        fidelity_dnn::init::uniform_tensor(seed ^ 0x63, vec![4 * HIDDEN], 0.1),
    )
}

/// Builds the unrolled LSTM classifier. Inputs: one `[1, FEATURES]` tensor
/// per step (`STEPS` of them). Output: `[1, CLASSES]` logits.
pub fn lstm_net(seed: u64) -> (Network, usize, usize) {
    let (w_ih, w_hh, bias) = lstm_weights(seed);

    let mut b = NetworkBuilder::new("lstm-net");
    for t in 0..STEPS {
        b = b.input(format!("x{t}"));
    }

    // Zero initial hidden/cell state, produced by an all-zero projection of
    // the first input (keeps the graph closed over its declared inputs).
    b = b
        .layer(
            Dense::new("h_init", Tensor::zeros(vec![HIDDEN, FEATURES])).unwrap(),
            &["x0"],
        )
        .unwrap()
        .layer(
            Dense::new("c_init", Tensor::zeros(vec![HIDDEN, FEATURES])).unwrap(),
            &["x0"],
        )
        .unwrap();

    let mut h_prev = "h_init".to_owned();
    let mut c_prev = "c_init".to_owned();
    for t in 0..STEPS {
        let p = |s: &str| format!("t{t}_{s}");
        b = b
            // Gate pre-activations: W_ih·x_t + W_hh·h_{t-1} + bias.
            .layer(
                Dense::new(p("xg"), w_ih.clone()).unwrap(),
                &[&format!("x{t}")],
            )
            .unwrap()
            .layer(Dense::new(p("hg"), w_hh.clone()).unwrap(), &[&h_prev])
            .unwrap()
            .layer(Add::new(p("gsum")), &[&p("xg"), &p("hg")])
            .unwrap()
            .layer(
                BiasAdd::new(p("gates"), bias.clone()).unwrap(),
                &[&p("gsum")],
            )
            .unwrap()
            // Split and activate the four gates.
            .layer(Slice::new(p("i_pre"), 0, HIDDEN), &[&p("gates")])
            .unwrap()
            .layer(Slice::new(p("f_pre"), HIDDEN, HIDDEN), &[&p("gates")])
            .unwrap()
            .layer(Slice::new(p("g_pre"), 2 * HIDDEN, HIDDEN), &[&p("gates")])
            .unwrap()
            .layer(Slice::new(p("o_pre"), 3 * HIDDEN, HIDDEN), &[&p("gates")])
            .unwrap()
            .layer(
                Activation::new(p("i"), ActivationKind::Sigmoid),
                &[&p("i_pre")],
            )
            .unwrap()
            .layer(
                Activation::new(p("f"), ActivationKind::Sigmoid),
                &[&p("f_pre")],
            )
            .unwrap()
            .layer(
                Activation::new(p("g"), ActivationKind::Tanh),
                &[&p("g_pre")],
            )
            .unwrap()
            .layer(
                Activation::new(p("o"), ActivationKind::Sigmoid),
                &[&p("o_pre")],
            )
            .unwrap()
            // c_t = f ⊙ c_{t-1} + i ⊙ g;  h_t = o ⊙ tanh(c_t).
            .layer(Mul::new(p("fc")), &[&p("f"), &c_prev])
            .unwrap()
            .layer(Mul::new(p("ig")), &[&p("i"), &p("g")])
            .unwrap()
            .layer(Add::new(p("c")), &[&p("fc"), &p("ig")])
            .unwrap()
            .layer(
                Activation::new(p("c_tanh"), ActivationKind::Tanh),
                &[&p("c")],
            )
            .unwrap()
            .layer(Mul::new(p("h")), &[&p("o"), &p("c_tanh")])
            .unwrap();
        h_prev = p("h");
        c_prev = p("c");
    }

    let net = b
        .layer(
            Dense::new("classifier", dense_w(seed ^ 0x64, CLASSES, HIDDEN)).unwrap(),
            &[&h_prev],
        )
        .unwrap()
        .build()
        .expect("lstm-net topology is fixed");
    (net, STEPS, FEATURES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::sensor_step;
    use fidelity_dnn::graph::Engine;
    use fidelity_dnn::layers::{Layer, Lstm};
    use fidelity_dnn::precision::Precision;

    #[test]
    fn output_is_class_logits() {
        let (net, steps, feats) = lstm_net(13);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let inputs: Vec<Tensor> = (0..steps).map(|t| sensor_step(1, t, feats)).collect();
        let out = engine.forward(&inputs).unwrap();
        assert_eq!(out.shape(), &[1, CLASSES]);
    }

    #[test]
    fn unrolled_graph_matches_monolithic_lstm() {
        let seed = 13;
        let (net, steps, feats) = lstm_net(seed);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let inputs: Vec<Tensor> = (0..steps).map(|t| sensor_step(2, t, feats)).collect();
        let trace = engine.trace(&inputs).unwrap();

        // Reference: the monolithic layer over the stacked sequence.
        let (w_ih, w_hh, bias) = lstm_weights(seed);
        let lstm = Lstm::new("ref", w_ih, w_hh, bias).unwrap();
        let mut seq = Tensor::zeros(vec![steps, feats]);
        for (t, x) in inputs.iter().enumerate() {
            for f in 0..feats {
                seq.set2(t, f, x.at2(0, f));
            }
        }
        let all_h = lstm.forward_alloc(&[&seq]).unwrap();

        // Compare the final hidden state.
        let h_idx = engine
            .network()
            .node_index(&format!("t{}_h", steps - 1))
            .unwrap();
        let unrolled_h = &trace.node_outputs[h_idx];
        for j in 0..HIDDEN {
            let a = all_h.at2(steps - 1, j);
            let b = unrolled_h.at2(0, j);
            assert!((a - b).abs() < 1e-5, "hidden {j}: {a} vs {b}");
        }
    }

    #[test]
    fn gate_projections_are_fc_targets() {
        let (net, steps, feats) = lstm_net(13);
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let inputs: Vec<Tensor> = (0..steps).map(|t| sensor_step(1, t, feats)).collect();
        let trace = engine.trace(&inputs).unwrap();
        let fc_targets = (0..engine.network().node_count())
            .filter(|&i| {
                engine.mac_spec(i, &trace).is_some()
                    && engine.network().layer(i).name().contains("g")
            })
            .count();
        assert!(fc_targets >= steps, "gate FCs should be MAC targets");
    }
}
