//! Yolo-lite: a leaky-ReLU convolutional backbone with stride-2
//! downsampling and a 1×1 detection head producing a `[1, 5+C, S, S]` grid
//! (x, y, w, h, objectness, class scores per cell).

use fidelity_dnn::graph::{Network, NetworkBuilder};
use fidelity_dnn::layers::{Activation, ActivationKind, Pool2d, PoolKind};

use super::conv;

/// Object classes of the synthetic detection task.
pub const CLASSES: usize = 4;

/// Detection-grid channel count (x, y, w, h, objectness + classes).
pub const GRID_CHANNELS: usize = 5 + CLASSES;

/// Builds the Yolo-lite detector for `[1, 3, 16, 16]` inputs, producing a
/// `[1, 9, 4, 4]` detection grid.
pub fn yolo_lite(seed: u64) -> Network {
    let leaky = ActivationKind::LeakyRelu(0.1);
    NetworkBuilder::new("yolo-lite")
        .input("x")
        .layer(conv("c1", seed ^ 0xE1, 16, 3, 3, 1, 1), &["x"])
        .unwrap()
        .layer(Activation::new("a1", leaky), &["c1"])
        .unwrap()
        .layer(Pool2d::new("p1", PoolKind::Max, 2), &["a1"])
        .unwrap()
        .layer(conv("c2", seed ^ 0xE2, 32, 16, 3, 1, 1), &["p1"])
        .unwrap()
        .layer(Activation::new("a2", leaky), &["c2"])
        .unwrap()
        .layer(Pool2d::new("p2", PoolKind::Max, 2), &["a2"])
        .unwrap()
        .layer(conv("c3", seed ^ 0xE3, 64, 32, 3, 1, 1), &["p2"])
        .unwrap()
        .layer(Activation::new("a3", leaky), &["c3"])
        .unwrap()
        .layer(
            conv("head", seed ^ 0xE4, GRID_CHANNELS, 64, 1, 1, 0),
            &["a3"],
        )
        .unwrap()
        .build()
        .expect("yolo-lite topology is fixed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_image;
    use crate::metrics::decode_detections;
    use fidelity_dnn::graph::Engine;
    use fidelity_dnn::precision::Precision;

    #[test]
    fn grid_shape() {
        let net = yolo_lite(9);
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let out = engine.forward(&[synthetic_image(4, 3, 16)]).unwrap();
        assert_eq!(out.shape(), &[1, GRID_CHANNELS, 4, 4]);
    }

    #[test]
    fn fault_free_run_produces_some_detections() {
        // With a permissive objectness threshold the random-weight detector
        // still yields a stable, non-empty golden detection set to score
        // faulty runs against.
        let net = yolo_lite(9);
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let out = engine.forward(&[synthetic_image(4, 3, 16)]).unwrap();
        let dets = decode_detections(&out, 0.5);
        assert!(!dets.is_empty(), "no golden detections — adjust seed");
    }
}
