//! # fidelity-workloads
//!
//! Representative DNN workloads, synthetic datasets, and application-level
//! correctness metrics for the FIdelity resilience study (Tables III/IV of
//! the paper): Inception / ResNet / MobileNet classifiers, a Yolo-style
//! detector, a Transformer translator, and an unrolled-LSTM classifier —
//! all built on the `fidelity-dnn` substrate with deterministic synthetic
//! parameters (substitutions documented in DESIGN.md §2).
//!
//! ## Example
//!
//! ```
//! use fidelity_dnn::graph::Engine;
//! use fidelity_dnn::precision::Precision;
//! use fidelity_workloads::nets;
//!
//! let w = nets::yolo_workload(42);
//! let engine = Engine::new(w.network, Precision::Fp16, &[w.inputs.clone()]).unwrap();
//! let grid = engine.forward(&w.inputs).unwrap();
//! assert_eq!(grid.shape()[1], nets::yolo::GRID_CHANNELS);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
pub mod metrics;
pub mod nets;

pub use metrics::{BleuThreshold, DetectionThreshold};
pub use nets::{
    classification_suite, lstm_workload, transformer_workload, yolo_workload, Workload,
    WorkloadKind,
};
