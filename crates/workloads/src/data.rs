//! Deterministic synthetic datasets.
//!
//! The paper evaluates on ImageNet/CIFAR-10/COCO/IWSLT14/UCI-HAR. Resilience
//! phenomena depend on network structure, numeric format and metric — not on
//! the particular trained dataset — so this reproduction substitutes
//! deterministic synthetic samples with enough spatial/temporal structure
//! that classifications and detections are stable under the fault-free run
//! (see DESIGN.md §2).

use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::tensor::Tensor;

/// A synthetic image `[1, channels, size, size]`: a smooth background plus a
/// few Gaussian blobs, giving spatially coherent features.
pub fn synthetic_image(seed: u64, channels: usize, size: usize) -> Tensor {
    let mut rng = SplitMix64::new(seed ^ 0x11_4A_6E);
    let mut img = Tensor::zeros(vec![1, channels, size, size]);
    let blobs = 3 + (rng.next_below(3) as usize);
    let mut centres = Vec::new();
    for _ in 0..blobs {
        centres.push((
            rng.next_f32() * size as f32,
            rng.next_f32() * size as f32,
            0.5 + rng.next_f32() * 1.5,                 // amplitude
            1.0 + rng.next_f32() * (size as f32 / 4.0), // radius
            rng.next_below(channels as u64) as usize,   // dominant channel
        ));
    }
    for c in 0..channels {
        let base = rng.next_symmetric(0.2);
        for y in 0..size {
            for x in 0..size {
                let mut v = base;
                for &(cx, cy, amp, r, ch) in &centres {
                    let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                    let w = if ch == c { 1.0 } else { 0.3 };
                    v += w * amp * (-d2 / (2.0 * r * r)).exp();
                }
                img.set4(0, c, y, x, v);
            }
        }
    }
    img
}

/// A deterministic token-id sequence in `[0, vocab)`, as a rank-1 tensor.
pub fn token_sequence(seed: u64, len: usize, vocab: usize) -> Tensor {
    let mut rng = SplitMix64::new(seed ^ 0x70_4B_E2);
    Tensor::from_slice(
        &(0..len)
            .map(|_| rng.next_below(vocab as u64) as f32)
            .collect::<Vec<_>>(),
    )
}

/// Consecutive position ids `0..len` (for positional embeddings).
pub fn position_ids(len: usize) -> Tensor {
    Tensor::from_slice(&(0..len).map(|i| i as f32).collect::<Vec<_>>())
}

/// A synthetic sensor window `[1, features]` per step: smooth sinusoid mix
/// plus noise (UCI-HAR stand-in).
pub fn sensor_step(seed: u64, step: usize, features: usize) -> Tensor {
    let mut rng = SplitMix64::new(seed ^ 0x5E_05_0E ^ step as u64);
    let data: Vec<f32> = (0..features)
        .map(|f| {
            let phase = f as f32 * 0.7 + step as f32 * 0.9;
            phase.sin() + 0.2 * rng.next_symmetric(1.0)
        })
        .collect();
    Tensor::from_vec(vec![1, features], data).expect("sized correctly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_deterministic_and_structured() {
        let a = synthetic_image(5, 3, 16);
        let b = synthetic_image(5, 3, 16);
        assert_eq!(a.data(), b.data());
        // Blobs create spatial variance.
        let mean = a.sum() / a.len() as f32;
        let var: f32 = a
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / a.len() as f32;
        assert!(var > 0.01);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            synthetic_image(1, 3, 8).data(),
            synthetic_image(2, 3, 8).data()
        );
    }

    #[test]
    fn token_sequences_in_range() {
        let t = token_sequence(3, 10, 24);
        assert_eq!(t.len(), 10);
        assert!(t.data().iter().all(|&v| (0.0..24.0).contains(&v)));
    }

    #[test]
    fn position_ids_are_consecutive() {
        assert_eq!(position_ids(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn sensor_steps_vary_over_time() {
        let a = sensor_step(1, 0, 6);
        let b = sensor_step(1, 1, 6);
        assert_ne!(a.data(), b.data());
    }
}
