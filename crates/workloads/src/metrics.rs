//! Application-level correctness metrics (Table IV of the paper).
//!
//! * classification → top-1 label match (provided by `fidelity-core`),
//! * translation → BLEU-score difference thresholds (10% / 20%),
//! * object detection → detection-score difference thresholds (10% / 20%).
//!
//! The fault-free output plays the role of the reference, exactly as the
//! paper compares each faulty run's score against the fault-free score.

use fidelity_core::outcome::CorrectnessMetric;
use fidelity_dnn::tensor::Tensor;

/// Greedy per-position decode of a `[seq, vocab]` logit matrix into token
/// ids.
pub fn decode_tokens(logits: &Tensor) -> Vec<usize> {
    if logits.rank() != 2 {
        return Vec::new();
    }
    let (seq, vocab) = (logits.shape()[0], logits.shape()[1]);
    (0..seq)
        .map(|t| {
            let row = &logits.data()[t * vocab..(t + 1) * vocab];
            row.iter()
                .enumerate()
                .filter(|(_, v)| !v.is_nan())
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i)
        })
        .collect()
}

/// BLEU-4 with uniform n-gram weights and brevity penalty, computed from
/// scratch. Zero-count n-gram precisions are floored at a small epsilon so a
/// single missing 4-gram does not zero the whole score (mild smoothing, in
/// the spirit of sentence-level BLEU).
pub fn bleu4(reference: &[usize], hypothesis: &[usize]) -> f64 {
    if reference.is_empty() || hypothesis.is_empty() {
        return if reference == hypothesis { 1.0 } else { 0.0 };
    }
    const EPS: f64 = 1e-7;
    let mut log_sum = 0.0;
    for n in 1..=4usize {
        let p = ngram_precision(reference, hypothesis, n).max(EPS);
        log_sum += p.ln() / 4.0;
    }
    let bp = if hypothesis.len() >= reference.len() {
        1.0
    } else {
        (1.0 - reference.len() as f64 / hypothesis.len() as f64).exp()
    };
    (bp * log_sum.exp()).clamp(0.0, 1.0)
}

fn ngram_precision(reference: &[usize], hypothesis: &[usize], n: usize) -> f64 {
    if hypothesis.len() < n {
        return 0.0;
    }
    let count = |s: &[usize]| {
        let mut map = std::collections::HashMap::new();
        for w in s.windows(n) {
            *map.entry(w.to_vec()).or_insert(0usize) += 1;
        }
        map
    };
    let ref_counts = count(reference);
    let hyp_counts = count(hypothesis);
    let total: usize = hyp_counts.values().sum();
    let matched: usize = hyp_counts
        .iter()
        .map(|(g, c)| (*c).min(ref_counts.get(g).copied().unwrap_or(0)))
        .sum();
    matched as f64 / total as f64
}

/// Translation metric: the faulty output is correct when its BLEU score
/// against the fault-free decode drops by at most `threshold` (the paper's
/// <10% / <20% BLEU-score difference).
#[derive(Debug, Clone, Copy)]
pub struct BleuThreshold {
    threshold: f64,
    name: &'static str,
}

impl BleuThreshold {
    /// The 10%-difference variant.
    pub fn ten_percent() -> Self {
        BleuThreshold {
            threshold: 0.10,
            name: "<10% BLEU difference",
        }
    }

    /// The 20%-difference variant.
    pub fn twenty_percent() -> Self {
        BleuThreshold {
            threshold: 0.20,
            name: "<20% BLEU difference",
        }
    }
}

impl CorrectnessMetric for BleuThreshold {
    fn name(&self) -> &str {
        self.name
    }

    fn is_correct(&self, golden: &Tensor, observed: &Tensor) -> bool {
        let reference = decode_tokens(golden);
        let hypothesis = decode_tokens(observed);
        // Fault-free score is BLEU(ref, ref) = 1; the difference is 1 − BLEU.
        1.0 - bleu4(&reference, &hypothesis) <= self.threshold
    }
}

/// One decoded detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Box centre x (grid units).
    pub x: f32,
    /// Box centre y (grid units).
    pub y: f32,
    /// Box width.
    pub w: f32,
    /// Box height.
    pub h: f32,
    /// Objectness score (post-sigmoid).
    pub objectness: f32,
    /// Class label.
    pub class: usize,
}

/// Decodes a Yolo-style detection grid `[1, 5+C, S, S]` into boxes with
/// objectness above `threshold`.
pub fn decode_detections(grid: &Tensor, threshold: f32) -> Vec<Detection> {
    if grid.rank() != 4 || grid.shape()[1] < 6 {
        return Vec::new();
    }
    let (ch, s_h, s_w) = (grid.shape()[1], grid.shape()[2], grid.shape()[3]);
    let classes = ch - 5;
    let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
    let mut out = Vec::new();
    for gy in 0..s_h {
        for gx in 0..s_w {
            let at = |c: usize| grid.at4(0, c, gy, gx);
            let obj = sigmoid(at(4));
            // Negated comparison is deliberate: NaN objectness is rejected.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(obj > threshold) {
                continue;
            }
            let class = (0..classes)
                .map(|c| at(5 + c))
                .enumerate()
                .filter(|(_, v)| !v.is_nan())
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map_or(0, |(i, _)| i);
            out.push(Detection {
                x: gx as f32 + sigmoid(at(0)),
                y: gy as f32 + sigmoid(at(1)),
                w: at(2).clamp(-10.0, 4.0).exp(),
                h: at(3).clamp(-10.0, 4.0).exp(),
                objectness: obj,
                class,
            });
        }
    }
    out
}

/// Intersection-over-union of two detections' boxes.
pub fn iou(a: &Detection, b: &Detection) -> f32 {
    let (ax0, ax1) = (a.x - a.w / 2.0, a.x + a.w / 2.0);
    let (ay0, ay1) = (a.y - a.h / 2.0, a.y + a.h / 2.0);
    let (bx0, bx1) = (b.x - b.w / 2.0, b.x + b.w / 2.0);
    let (by0, by1) = (b.y - b.h / 2.0, b.y + b.h / 2.0);
    let iw = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let ih = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = iw * ih;
    let union = a.w * a.h + b.w * b.h - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Detection agreement score between a faulty run's detections and the
/// fault-free detections: F1 of greedy IoU ≥ 0.5 same-class matching.
///
/// The paper scores Yolo outputs with a precision metric relative to the
/// fault-free run; F1 additionally penalizes dropped detections, which a
/// pure precision score would miss (documented substitution).
pub fn detection_score(golden: &[Detection], observed: &[Detection]) -> f64 {
    if golden.is_empty() && observed.is_empty() {
        return 1.0;
    }
    if golden.is_empty() || observed.is_empty() {
        return 0.0;
    }
    let mut used = vec![false; golden.len()];
    let mut matched = 0usize;
    for det in observed {
        let best = golden
            .iter()
            .enumerate()
            .filter(|(i, g)| !used[*i] && g.class == det.class && iou(g, det) >= 0.5)
            .max_by(|a, b| iou(a.1, det).total_cmp(&iou(b.1, det)));
        if let Some((i, _)) = best {
            used[i] = true;
            matched += 1;
        }
    }
    let precision = matched as f64 / observed.len() as f64;
    let recall = matched as f64 / golden.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Detection metric: correct when the detection score drops by at most
/// `threshold` relative to the fault-free run.
#[derive(Debug, Clone, Copy)]
pub struct DetectionThreshold {
    threshold: f64,
    objectness: f32,
    name: &'static str,
}

impl DetectionThreshold {
    /// The 10%-difference variant.
    pub fn ten_percent() -> Self {
        DetectionThreshold {
            threshold: 0.10,
            objectness: 0.5,
            name: "<10% detection-score difference",
        }
    }

    /// The 20%-difference variant.
    pub fn twenty_percent() -> Self {
        DetectionThreshold {
            threshold: 0.20,
            objectness: 0.5,
            name: "<20% detection-score difference",
        }
    }
}

impl CorrectnessMetric for DetectionThreshold {
    fn name(&self) -> &str {
        self.name
    }

    fn is_correct(&self, golden: &Tensor, observed: &Tensor) -> bool {
        let g = decode_detections(golden, self.objectness);
        let o = decode_detections(observed, self.objectness);
        1.0 - detection_score(&g, &o) <= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bleu_identity_is_one() {
        let s = vec![1, 2, 3, 4, 5, 6];
        assert!((bleu4(&s, &s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bleu_decreases_with_corruption() {
        let reference = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let one_wrong = vec![1, 2, 3, 9, 5, 6, 7, 8];
        let all_wrong = vec![9, 9, 9, 9, 9, 9, 9, 9];
        let b1 = bleu4(&reference, &one_wrong);
        let b2 = bleu4(&reference, &all_wrong);
        assert!(b1 < 1.0 && b1 > b2);
        assert!(b2 < 0.01);
    }

    #[test]
    fn bleu_brevity_penalty() {
        let reference = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let truncated = vec![1, 2, 3, 4];
        assert!(bleu4(&reference, &truncated) < bleu4(&reference, &reference));
    }

    #[test]
    fn bleu_empty_edge_cases() {
        assert_eq!(bleu4(&[], &[]), 1.0);
        assert_eq!(bleu4(&[1], &[]), 0.0);
    }

    #[test]
    fn decode_tokens_argmax_per_row() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.0, 0.0, 0.2, 0.7]).unwrap();
        assert_eq!(decode_tokens(&logits), vec![1, 2]);
    }

    #[test]
    fn bleu_threshold_metric() {
        let golden = Tensor::from_vec(
            vec![6, 2],
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0],
        )
        .unwrap();
        let m10 = BleuThreshold::ten_percent();
        assert!(m10.is_correct(&golden, &golden));
        // Corrupt half the rows.
        let mut bad = golden.clone();
        for t in 0..3 {
            bad.set2(t * 2, 0, 0.0);
            bad.set2(t * 2, 1, 1.0);
        }
        assert!(!m10.is_correct(&golden, &bad));
        // The 20% metric is at least as permissive as the 10% one.
        let m20 = BleuThreshold::twenty_percent();
        if m10.is_correct(&golden, &bad) {
            assert!(m20.is_correct(&golden, &bad));
        }
    }

    #[test]
    fn iou_of_identical_boxes_is_one() {
        let d = Detection {
            x: 1.0,
            y: 1.0,
            w: 2.0,
            h: 2.0,
            objectness: 0.9,
            class: 0,
        };
        assert!((iou(&d, &d) - 1.0).abs() < 1e-6);
        let far = Detection { x: 10.0, ..d };
        assert_eq!(iou(&d, &far), 0.0);
    }

    #[test]
    fn detection_score_cases() {
        let d = Detection {
            x: 1.0,
            y: 1.0,
            w: 2.0,
            h: 2.0,
            objectness: 0.9,
            class: 1,
        };
        assert_eq!(detection_score(&[], &[]), 1.0);
        assert_eq!(detection_score(&[d], &[]), 0.0);
        assert!((detection_score(&[d], &[d]) - 1.0).abs() < 1e-9);
        // Wrong class never matches.
        let wrong = Detection { class: 2, ..d };
        assert_eq!(detection_score(&[d], &[wrong]), 0.0);
    }

    #[test]
    fn decode_detections_thresholds_objectness() {
        // Grid 1x9x1x1: one cell, 4 classes.
        let mut grid = Tensor::zeros(vec![1, 9, 1, 1]);
        grid.set4(0, 4, 0, 0, 3.0); // sigmoid(3) ≈ 0.95 > 0.5
        grid.set4(0, 7, 0, 0, 2.0); // class 2 wins
        let dets = decode_detections(&grid, 0.5);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].class, 2);
        grid.set4(0, 4, 0, 0, -3.0);
        assert!(decode_detections(&grid, 0.5).is_empty());
    }

    #[test]
    fn nan_objectness_is_not_a_detection() {
        let mut grid = Tensor::zeros(vec![1, 9, 1, 1]);
        grid.set4(0, 4, 0, 0, f32::NAN);
        assert!(decode_detections(&grid, 0.5).is_empty());
    }
}
