//! Validation of the software fault models against the register-level
//! golden reference (Sec. IV of the paper).
//!
//! For every sampled fault site (FF × bit × cycle), two things happen:
//!
//! 1. the register-level engine runs with the bit flipped, yielding the
//!    observed faulty neurons and values, and
//! 2. the software fault model for that FF's category is instantiated *for
//!    that concrete site* (using the engine's schedule to identify which
//!    operand element / output neuron the FF held), yielding a prediction.
//!
//! The paper's validation criteria are reproduced: datapath predictions must
//! match **exactly** (same neurons, same values); local-control predictions
//! must identify the same single neuron (values are non-deterministic and
//! modeled as random); global-control faults are modeled as always failing,
//! with the RTL-masked fraction reported.

use fidelity_accel::ff::FfCategory;
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::macspec::{OperandKind, Operands, Substitution};
use fidelity_rtl::{Disturbance, FaultSite, FfId, ObservedFault, RtlEngine, SchedPoint};

/// The software fault model's prediction for one concrete fault site.
#[derive(Debug, Clone, PartialEq)]
pub enum Prediction {
    /// The FF is inactive at that cycle; the fault must be masked.
    Masked,
    /// A set of faulty neurons; `None` values are non-deterministic (local
    /// control).
    Neurons {
        /// Flat output offsets.
        offsets: Vec<usize>,
        /// Predicted values (parallel to `offsets`).
        values: Vec<Option<f32>>,
    },
    /// Active global control: always application error / anomaly.
    SystemFailure,
}

/// Derives the software-model prediction for a concrete fault site.
pub fn predict(engine: &RtlEngine, site: FaultSite) -> Prediction {
    let layer = engine.layer();
    let spec = &layer.spec;
    let lanes = engine.lanes() as u64;
    let cfgw = layer.config_words();
    let channels = spec.channel_count() as u64;
    let operands = Operands {
        input: &layer.input,
        weight: &layer.weight,
    };
    let flip = |codec: fidelity_dnn::precision::ValueCodec, v: f32| {
        codec.decode(codec.encode(v) ^ (1u32 << site.bit.min(31)))
    };
    let sched = engine.schedule_at(site.cycle);

    match site.ff {
        FfId::FetchInput => match sched {
            SchedPoint::FetchInput { index } => {
                let faulty = flip(layer.input_codec, layer.input.data()[index]);
                operand_prediction(engine, OperandKind::Input, index, faulty, None)
            }
            _ => Prediction::Masked,
        },
        FfId::FetchWeight => match sched {
            SchedPoint::FetchWeight { index } => {
                let faulty = flip(layer.weight_codec, layer.weight.data()[index]);
                operand_prediction(engine, OperandKind::Weight, index, faulty, None)
            }
            _ => Prediction::Masked,
        },
        FfId::InputOperand => match sched {
            SchedPoint::Compute {
                group,
                kstep,
                y,
                s_base,
                ..
            } => {
                let p = s_base + y;
                let Some(addr) = crate::rtl_addr::input_addr(&cfgw, p, kstep, layer.input.len())
                else {
                    return Prediction::Masked; // gated (padding) cycle
                };
                let faulty = flip(layer.input_codec, layer.input.data()[addr as usize]);
                let neurons: Vec<usize> = (0..lanes)
                    .map(|lane| group * lanes + lane)
                    .filter(|&c| c < channels)
                    .map(|c| spec.offset_of(p as usize, c as usize))
                    .collect();
                operand_prediction_for(
                    engine,
                    OperandKind::Input,
                    addr as usize,
                    faulty,
                    neurons,
                    &operands,
                )
            }
            _ => Prediction::Masked,
        },
        FfId::WeightOperand { lane } => match sched {
            SchedPoint::Compute {
                group,
                kstep,
                y,
                t_eff,
                s_base,
                ..
            } => {
                let c = group * lanes + lane as u64;
                if c >= channels {
                    return Prediction::Masked;
                }
                let Some(addr) = crate::rtl_addr::weight_addr(&cfgw, c, kstep, layer.weight.len())
                else {
                    return Prediction::Masked;
                };
                let faulty = flip(layer.weight_codec, layer.weight.data()[addr as usize]);
                let neurons: Vec<usize> = (y..t_eff)
                    .map(|yy| spec.offset_of((s_base + yy) as usize, c as usize))
                    .collect();
                operand_prediction_for(
                    engine,
                    OperandKind::Weight,
                    addr as usize,
                    faulty,
                    neurons,
                    &operands,
                )
            }
            _ => Prediction::Masked,
        },
        FfId::Accumulator { lane, slot } => {
            let (flip_before, point) = match sched {
                SchedPoint::Compute {
                    group,
                    kstep,
                    y,
                    t_eff,
                    s_base,
                    ..
                } => {
                    if (slot as u64) >= t_eff {
                        return Prediction::Masked;
                    }
                    let fb = if (slot as u64) < y {
                        kstep as usize + 1
                    } else {
                        kstep as usize
                    };
                    (fb, Some((group, s_base)))
                }
                SchedPoint::Writeback {
                    group,
                    y,
                    t_eff,
                    s_base,
                    ..
                } => {
                    // Slots at or before the drain point are already written.
                    if (slot as u64) <= y || (slot as u64) >= t_eff {
                        return Prediction::Masked;
                    }
                    (spec.kernel_steps(), Some((group, s_base)))
                }
                _ => (0, None),
            };
            let Some((group, s_base)) = point else {
                return Prediction::Masked;
            };
            let c = group * lanes + lane as u64;
            if c >= channels {
                return Prediction::Masked;
            }
            let off = spec.offset_of((s_base + slot as u64) as usize, c as usize);
            let flip = fidelity_dnn::macspec::AccFlip::new(flip_before, site.bit)
                .expect("accumulator fault sites carry f32 bit indices (inventory width 32)");
            let value = layer
                .output_codec
                .quantize(spec.compute_at_acc_flip(&operands, off, flip));
            finish_neurons(engine, vec![off], vec![Some(value)])
        }
        FfId::OutputReg { lane } => match sched {
            SchedPoint::Writeback {
                group, y, s_base, ..
            } => {
                let c = group * lanes + lane as u64;
                if c >= channels {
                    return Prediction::Masked;
                }
                let off = spec.offset_of((s_base + y) as usize, c as usize);
                let clean = engine.clean_output().data()[off];
                let value = flip(layer.output_codec, clean);
                finish_neurons(engine, vec![off], vec![Some(value)])
            }
            _ => Prediction::Masked,
        },
        FfId::OutputValid { lane } => match sched {
            SchedPoint::Writeback {
                group, y, s_base, ..
            } => {
                let c = group * lanes + lane as u64;
                if c >= channels {
                    return Prediction::Masked;
                }
                let off = spec.offset_of((s_base + y) as usize, c as usize);
                Prediction::Neurons {
                    offsets: vec![off],
                    values: vec![None],
                }
            }
            _ => Prediction::Masked,
        },
        FfId::Config { .. } | FfId::Sequencer { .. } => Prediction::SystemFailure,
    }
}

/// Before-buffer prediction: all users of the corrupted stored value.
fn operand_prediction(
    engine: &RtlEngine,
    kind: OperandKind,
    elem: usize,
    faulty: f32,
    _unused: Option<()>,
) -> Prediction {
    let layer = engine.layer();
    let spec = &layer.spec;
    let users = match kind {
        OperandKind::Input => spec.neurons_using_input(elem),
        OperandKind::Weight => spec.neurons_using_weight(elem),
    };
    let operands = Operands {
        input: &layer.input,
        weight: &layer.weight,
    };
    operand_prediction_for(engine, kind, elem, faulty, users, &operands)
}

/// Computes the predicted values for a given neuron window under a
/// single-element substitution, dropping neurons whose value is unchanged.
fn operand_prediction_for(
    engine: &RtlEngine,
    kind: OperandKind,
    elem: usize,
    faulty: f32,
    neurons: Vec<usize>,
    operands: &Operands<'_>,
) -> Prediction {
    let layer = engine.layer();
    let subst = Substitution {
        kind,
        offset: elem,
        value: faulty,
    };
    let mut offsets = Vec::new();
    let mut values = Vec::new();
    for off in neurons {
        let v = layer
            .output_codec
            .quantize(layer.spec.compute_at(operands, off, Some(&subst)));
        offsets.push(off);
        values.push(Some(v));
    }
    finish_neurons(engine, offsets, values)
}

/// Filters out neurons whose predicted value equals the clean value (those
/// are invisible in an output diff) and collapses to `Masked` when nothing
/// remains.
fn finish_neurons(engine: &RtlEngine, offsets: Vec<usize>, values: Vec<Option<f32>>) -> Prediction {
    let clean = engine.clean_output();
    let mut out_offsets = Vec::new();
    let mut out_values = Vec::new();
    for (off, val) in offsets.into_iter().zip(values) {
        match val {
            Some(v) => {
                if differs(clean.data()[off], v) {
                    out_offsets.push(off);
                    out_values.push(Some(v));
                }
            }
            None => {
                out_offsets.push(off);
                out_values.push(None);
            }
        }
    }
    if out_offsets.is_empty() {
        Prediction::Masked
    } else {
        Prediction::Neurons {
            offsets: out_offsets,
            values: out_values,
        }
    }
}

/// The same "is different" rule `Tensor::diff_indices` uses with zero
/// tolerance.
fn differs(a: f32, b: f32) -> bool {
    a.is_nan() || b.is_nan() || (a - b).abs() > 0.0
}

fn values_equal(a: f32, b: f32) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits() || a == b
}

/// Lifts one MAC node of a deployed engine into a register-level layer, so
/// the exact tensors and codecs the software fault models see are also what
/// the golden reference executes (Sec. IV-B's "same fault sites" setup).
///
/// Returns `None` when the node is not a MAC layer or uses a geometry the
/// register-level engine does not support (grouped conv, batched matmul).
pub fn rtl_layer_for(
    engine: &fidelity_dnn::graph::Engine,
    trace: &fidelity_dnn::graph::Trace,
    node: usize,
) -> Option<fidelity_rtl::RtlLayer> {
    use fidelity_dnn::macspec::MacSpec;
    let spec = engine.mac_spec(node, trace)?;
    let inputs = engine.node_inputs(node, trace);
    let input_codecs = engine.node_input_codecs(node);
    let (weight, weight_codec) = if matches!(spec, MacSpec::MatMul(_)) {
        ((*inputs.get(1)?).clone(), *input_codecs.get(1)?)
    } else {
        (
            engine
                .network()
                .layer(node)
                .weights()
                .first()?
                .to_owned()
                .clone(),
            engine.weight_codec(node, 0)?,
        )
    };
    fidelity_rtl::RtlLayer::new(
        spec,
        (*inputs.first()?).clone(),
        weight,
        *input_codecs.first()?,
        weight_codec,
        engine.node_codec(node),
    )
    .ok()
}

/// How one validated site compared.
#[derive(Debug, Clone, PartialEq)]
pub enum Agreement {
    /// Both the model and RTL say masked.
    MaskedAgreed,
    /// Datapath: identical neuron set and identical values.
    DatapathExact,
    /// Local control: same (single) neuron; value non-deterministic as
    /// expected. `value_was_zero` records the RTL drop-to-initial behaviour.
    LocalNeuronMatch {
        /// Whether RTL produced the dropped-write value.
        value_was_zero: bool,
    },
    /// Global control: RTL confirmed a failure (errors or time-out).
    GlobalFailureConfirmed,
    /// Global control: RTL masked the fault (the conservative model calls
    /// it a failure; the paper measured ~9.5% of these).
    GlobalMasked,
    /// Model and RTL disagree.
    Mismatch(String),
}

/// One validated fault site.
#[derive(Debug, Clone)]
pub struct SiteOutcome {
    /// The injected site.
    pub site: FaultSite,
    /// Its FF category.
    pub category: FfCategory,
    /// Whether the RTL run timed out.
    pub timed_out: bool,
    /// Comparison verdict.
    pub agreement: Agreement,
}

/// Validates one fault site: runs RTL, derives the prediction, compares.
pub fn validate_site(engine: &RtlEngine, site: FaultSite) -> SiteOutcome {
    let category = site.ff.category();
    let result = engine.run(Disturbance::Ff(site));
    let observed = ObservedFault::from_run(engine.clean_output(), &result);
    let prediction = predict(engine, site);

    let agreement = match (&prediction, category) {
        (Prediction::SystemFailure, _) => {
            if observed.is_masked() {
                Agreement::GlobalMasked
            } else {
                Agreement::GlobalFailureConfirmed
            }
        }
        (Prediction::Masked, _) => {
            if observed.is_masked() {
                Agreement::MaskedAgreed
            } else {
                Agreement::Mismatch(format!(
                    "predicted masked, rtl saw {} faulty neurons (site {} cycle {})",
                    observed.reuse_factor(),
                    site.ff,
                    site.cycle
                ))
            }
        }
        (Prediction::Neurons { offsets, values }, FfCategory::LocalControl) => {
            if observed.reuse_factor() <= 1
                && observed.faulty_neurons.iter().all(|n| offsets.contains(n))
            {
                // The RTL engine writes a literal zero on a local-control
                // drop, so the bit-exact comparison is the correct test.
                // statcheck:allow(float-eq)
                let value_was_zero = observed.faulty_values.first().is_some_and(|v| *v == 0.0);
                let _ = values;
                Agreement::LocalNeuronMatch { value_was_zero }
            } else {
                Agreement::Mismatch(format!(
                    "local control: predicted {:?}, rtl {:?}",
                    offsets, observed.faulty_neurons
                ))
            }
        }
        (Prediction::Neurons { offsets, values }, _) => {
            if observed.timed_out {
                Agreement::Mismatch("datapath fault caused a time-out".into())
            } else if observed.faulty_neurons == *offsets
                && observed
                    .faulty_values
                    .iter()
                    .zip(values)
                    .all(|(rv, pv)| pv.is_some_and(|p| values_equal(*rv, p)))
            {
                Agreement::DatapathExact
            } else {
                Agreement::Mismatch(format!(
                    "datapath {} cycle {} bit {}: predicted {:?} rtl {:?} (values {:?} vs {:?})",
                    site.ff,
                    site.cycle,
                    site.bit,
                    offsets,
                    observed.faulty_neurons,
                    values,
                    observed.faulty_values
                ))
            }
        }
    };

    SiteOutcome {
        site,
        category,
        timed_out: observed.timed_out,
        agreement,
    }
}

/// Aggregate validation statistics (the Sec. IV-C numbers).
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Sites validated.
    pub total: usize,
    /// Both sides masked.
    pub masked_agreed: usize,
    /// Non-masked datapath cases.
    pub datapath_cases: usize,
    /// ... of which exactly matched.
    pub datapath_exact: usize,
    /// Non-masked local-control cases.
    pub local_cases: usize,
    /// ... of which hit the predicted neuron with RF ≤ 1.
    pub local_match: usize,
    /// Global-control cases.
    pub global_cases: usize,
    /// ... of which RTL confirmed failure.
    pub global_failure: usize,
    /// ... of which RTL masked.
    pub global_masked: usize,
    /// RTL time-outs observed.
    pub timeouts: usize,
    /// Mismatch descriptions (empty on full validation).
    pub mismatches: Vec<String>,
}

impl ValidationReport {
    /// Folds one site outcome into the report.
    pub fn add(&mut self, outcome: &SiteOutcome) {
        self.total += 1;
        if outcome.timed_out {
            self.timeouts += 1;
        }
        match &outcome.agreement {
            Agreement::MaskedAgreed => self.masked_agreed += 1,
            Agreement::DatapathExact => {
                self.datapath_cases += 1;
                self.datapath_exact += 1;
            }
            Agreement::LocalNeuronMatch { .. } => {
                self.local_cases += 1;
                self.local_match += 1;
            }
            Agreement::GlobalFailureConfirmed => {
                self.global_cases += 1;
                self.global_failure += 1;
            }
            Agreement::GlobalMasked => {
                self.global_cases += 1;
                self.global_masked += 1;
            }
            Agreement::Mismatch(m) => {
                match outcome.category {
                    FfCategory::Datapath { .. } => self.datapath_cases += 1,
                    FfCategory::LocalControl => self.local_cases += 1,
                    FfCategory::GlobalControl => self.global_cases += 1,
                }
                self.mismatches.push(m.clone());
            }
        }
    }
}

/// Validates a batch of sites.
pub fn validate_many(engine: &RtlEngine, sites: &[FaultSite]) -> ValidationReport {
    let mut report = ValidationReport::default();
    for &site in sites {
        report.add(&validate_site(engine, site));
    }
    report
}

/// Samples `n` random fault sites uniformly over the engine's FF inventory,
/// bit widths, and fault-free cycle window.
pub fn random_sites(engine: &RtlEngine, n: usize, rng: &mut SplitMix64) -> Vec<FaultSite> {
    let inventory = engine.inventory();
    (0..n)
        .map(|_| {
            let (ff, width) = inventory[rng.next_below(inventory.len() as u64) as usize];
            FaultSite {
                ff,
                bit: rng.next_below(u64::from(width)) as u32,
                cycle: rng.next_below(engine.clean_cycles()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::macspec::{ConvSpec, MacSpec};
    use fidelity_dnn::precision::{Precision, ValueCodec};
    use fidelity_rtl::RtlLayer;

    fn engine(precision: Precision) -> RtlEngine {
        let spec = ConvSpec {
            batch: 1,
            in_c: 2,
            in_h: 5,
            in_w: 5,
            out_c: 6,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        };
        let codec = ValueCodec::new(precision, 0.01);
        let input = uniform_tensor(1, vec![1, 2, 5, 5], 1.0).map(|v| codec.quantize(v));
        let weight = uniform_tensor(2, vec![6, 2, 3, 3], 0.5).map(|v| codec.quantize(v));
        let layer = RtlLayer::new(MacSpec::Conv(spec), input, weight, codec, codec, codec).unwrap();
        RtlEngine::new(layer, 4, 4)
    }

    #[test]
    fn datapath_sites_validate_exactly_fp16() {
        let e = engine(Precision::Fp16);
        let mut rng = SplitMix64::new(77);
        let sites = random_sites(&e, 400, &mut rng);
        let report = validate_many(&e, &sites);
        assert_eq!(report.total, 400);
        assert!(
            report.mismatches.is_empty(),
            "mismatches: {:#?}",
            &report.mismatches[..report.mismatches.len().min(5)]
        );
        assert!(report.datapath_cases > 0);
        assert_eq!(report.datapath_exact, report.datapath_cases);
    }

    #[test]
    fn datapath_sites_validate_exactly_int8() {
        let e = engine(Precision::Int8);
        let mut rng = SplitMix64::new(78);
        let sites = random_sites(&e, 300, &mut rng);
        let report = validate_many(&e, &sites);
        assert!(
            report.mismatches.is_empty(),
            "mismatches: {:#?}",
            &report.mismatches[..report.mismatches.len().min(5)]
        );
    }

    #[test]
    fn global_faults_mostly_fail() {
        let e = engine(Precision::Fp16);
        let mut rng = SplitMix64::new(79);
        // Only global sites.
        let inventory: Vec<_> = e
            .inventory()
            .into_iter()
            .filter(|(ff, _)| ff.category() == FfCategory::GlobalControl)
            .collect();
        let sites: Vec<FaultSite> = (0..200)
            .map(|_| {
                let (ff, width) = inventory[rng.next_below(inventory.len() as u64) as usize];
                FaultSite {
                    ff,
                    bit: rng.next_below(u64::from(width)) as u32,
                    cycle: rng.next_below(e.clean_cycles()),
                }
            })
            .collect();
        let report = validate_many(&e, &sites);
        assert_eq!(report.global_cases, 200);
        // Most active-global faults fail; a minority is masked (the paper
        // measured ~9.5%).
        assert!(report.global_failure > report.global_masked);
        assert!(report.global_masked > 0, "expect some masked global faults");
    }
}
