//! Plain-text report rendering for campaign and FIT results.
//!
//! The experiment regenerators and the CLI all print the same three tables;
//! this module renders them consistently (fixed-width columns, Wilson 95%
//! CIs on masking probabilities).

use crate::campaign::{wilson_interval, CampaignResult};
use crate::fit::FitBreakdown;
use crate::validate::ValidationReport;

/// Formats a FIT value with magnitude-appropriate precision.
pub fn format_fit(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders a labelled set of FIT breakdowns as a table.
pub fn fit_table(rows: &[(String, FitBreakdown)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}\n",
        "configuration", "datapath", "local", "global", "TOTAL"
    ));
    for (label, b) in rows {
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>10} {:>10}\n",
            label,
            format_fit(b.datapath),
            format_fit(b.local),
            format_fit(b.global),
            format_fit(b.total)
        ));
    }
    out
}

/// Renders per-cell campaign statistics with 95% confidence intervals.
pub fn campaign_table(result: &CampaignResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<34} {:>8} {:>8} {:>18}\n",
        "layer", "category", "samples", "masked", "Prob_SWmask (95% CI)"
    ));
    for cell in &result.cells {
        let (lo, hi) = wilson_interval(cell.masked, cell.samples.max(1));
        out.push_str(&format!(
            "{:<24} {:<34} {:>8} {:>8}   {:.3} ({:.3}-{:.3})\n",
            cell.layer,
            cell.category.to_string(),
            cell.samples,
            cell.masked,
            cell.prob_swmask(),
            lo,
            hi
        ));
    }
    out
}

/// Renders the one-line validation verdict.
pub fn validation_summary(report: &ValidationReport) -> String {
    format!(
        "{} sites: {} masked-agreed, datapath {}/{} exact, local {}/{}, \
         global {} ({} masked), {} timeouts, {} mismatches",
        report.total,
        report.masked_agreed,
        report.datapath_exact,
        report.datapath_cases,
        report.local_match,
        report.local_cases,
        report.global_cases,
        report.global_masked,
        report.timeouts,
        report.mismatches.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignResult, CellStats};
    use crate::models::SoftwareFaultModel;
    use fidelity_accel::ff::FfCategory;

    #[test]
    fn fit_table_renders_all_rows() {
        let rows = vec![
            (
                "fp16".to_owned(),
                FitBreakdown {
                    total: 8.5,
                    datapath: 1.0,
                    local: 0.5,
                    global: 7.0,
                    per_category: vec![],
                },
            ),
            ("int8".to_owned(), FitBreakdown::default()),
        ];
        let table = fit_table(&rows);
        assert!(table.contains("fp16"));
        assert!(table.contains("8.50"));
        assert!(table.contains("int8"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn campaign_table_shows_ci() {
        let result = CampaignResult {
            cells: vec![CellStats {
                node: 0,
                layer: "conv".into(),
                category: FfCategory::LocalControl,
                model: SoftwareFaultModel::LocalControl,
                samples: 100,
                masked: 50,
                output_error: 50,
                anomaly: 0,
                events: vec![],
            }],
            failures: vec![],
            fast_divergence: None,
            certificate: None,
        };
        let table = campaign_table(&result);
        assert!(table.contains("conv"));
        assert!(table.contains("0.500"));
        assert!(table.contains("(0.4"), "{table}");
    }

    #[test]
    fn validation_summary_counts() {
        let report = ValidationReport {
            total: 10,
            datapath_cases: 4,
            datapath_exact: 4,
            ..Default::default()
        };
        let s = validation_summary(&report);
        assert!(s.contains("10 sites"));
        assert!(s.contains("4/4 exact"));
        assert!(s.contains("0 mismatches"));
    }

    #[test]
    fn format_fit_ranges() {
        assert_eq!(format_fit(250.0), "250");
        assert_eq!(format_fit(7.27), "7.27");
        assert_eq!(format_fit(0.05), "0.050");
    }
}
