//! Software fault models — Table II of the paper.
//!
//! A [`SoftwareFaultModel`] is the per-FF-category recipe for reproducing a
//! hardware transient fault purely in software: which stored value to
//! corrupt, how (an equivalent bit flip for datapath FFs, a random value for
//! local control), and which output neurons of the executing MAC layer are
//! affected (per Reuse Factor Analysis).
//!
//! [`apply_model`] executes a sampled instance of a model against one MAC
//! layer of a deployed network, producing the faulty layer output that the
//! injection flow then propagates to the application output.

use fidelity_accel::arch::{AcceleratorConfig, DataflowKind};
use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::macspec::{MacSpec, OperandKind, Operands, Substitution};
use fidelity_dnn::precision::ValueCodec;
use fidelity_dnn::tensor::Tensor;
use fidelity_dnn::workspace::Workspace;
use fidelity_dnn::DnnError;

/// The 2-D extent of the output-neuron window a buffer-to-MAC operand fault
/// can corrupt, in (position, channel) coordinates. Derived from the reuse
/// factor analysis of the accelerator's dataflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OperandWindow {
    /// Consecutive output positions affected (temporal reuse).
    pub positions: usize,
    /// Consecutive output channels affected (spatial reuse across lanes).
    pub channels: usize,
}

/// A software fault model: one row of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoftwareFaultModel {
    /// A fault before the on-chip buffer manifests as one incorrect stored
    /// value; every output neuron consuming it is faulty.
    BeforeBuffer {
        /// Which operand the value belongs to.
        kind: OperandKind,
    },
    /// A fault between the buffer and the MAC units corrupts one operand
    /// value for the window of neurons the dataflow reuses it across.
    Operand {
        /// Which operand the value belongs to.
        kind: OperandKind,
        /// Reuse window.
        window: OperandWindow,
        /// When the FF holds its value for multiple cycles, a random fault
        /// cycle truncates the affected position window to a random suffix
        /// (the paper's random `p` over `FF_value_cycles`).
        random_suffix: bool,
    },
    /// A fault in an output / partial-sum FF: one bit flip in one output
    /// neuron (RF = 1).
    OutputValue,
    /// A local-control fault: one output neuron takes a non-deterministic
    /// value, modeled as random.
    LocalControl,
    /// An active global-control fault always results in application error or
    /// system anomaly.
    GlobalControl,
}

/// Maps an FF category to its software fault model under a given accelerator
/// configuration (the Table II derivation).
///
/// Returns `None` for category/stage combinations the architecture does not
/// have (e.g. partial sums before the buffer).
pub fn model_for(cat: FfCategory, cfg: &AcceleratorConfig) -> Option<SoftwareFaultModel> {
    let (input_window, weight_window) = match cfg.dataflow {
        DataflowKind::Nvdla(d) => (
            // Broadcast input: one position × `lanes` channels (target a4).
            OperandWindow {
                positions: 1,
                channels: d.lanes,
            },
            // Weight-stationary: `weight_hold` positions × 1 channel (a2).
            OperandWindow {
                positions: d.weight_hold,
                channels: 1,
            },
        ),
        DataflowKind::Eyeriss(d) => (
            // Diagonal + channel reuse: k positions × `channel_reuse`
            // channels (target b2).
            OperandWindow {
                positions: d.k,
                channels: d.channel_reuse,
            },
            // Column-travelling weights: k positions × 1 channel (b1).
            OperandWindow {
                positions: d.k,
                channels: 1,
            },
        ),
    };
    match cat {
        FfCategory::Datapath { stage, var } => match (stage, var) {
            (PipelineStage::BeforeBuffer, VarType::Input) => {
                Some(SoftwareFaultModel::BeforeBuffer {
                    kind: OperandKind::Input,
                })
            }
            (PipelineStage::BeforeBuffer, VarType::Weight | VarType::Bias) => {
                Some(SoftwareFaultModel::BeforeBuffer {
                    kind: OperandKind::Weight,
                })
            }
            (PipelineStage::BufferToMac, VarType::Input) => Some(SoftwareFaultModel::Operand {
                kind: OperandKind::Input,
                window: input_window,
                random_suffix: false,
            }),
            (PipelineStage::BufferToMac, VarType::Weight | VarType::Bias) => {
                Some(SoftwareFaultModel::Operand {
                    kind: OperandKind::Weight,
                    window: weight_window,
                    random_suffix: true,
                })
            }
            (PipelineStage::AfterMac, VarType::Output | VarType::PartialSum | VarType::Bias) => {
                Some(SoftwareFaultModel::OutputValue)
            }
            _ => None,
        },
        FfCategory::LocalControl => Some(SoftwareFaultModel::LocalControl),
        FfCategory::GlobalControl => Some(SoftwareFaultModel::GlobalControl),
    }
}

/// The effect of one sampled model application on the executing layer.
#[derive(Debug, Clone)]
pub enum ModelEffect {
    /// The sampled fault cannot change any value (e.g. it hit a value whose
    /// flip decodes to the same number).
    Masked,
    /// The layer finishes with corrupted output neurons.
    Layer(FaultApplication),
    /// Global control: the framework models this as system failure without
    /// simulating (Prob_SWmask = 0).
    SystemFailure,
}

/// A concrete corrupted-layer outcome.
#[derive(Debug, Clone)]
pub struct FaultApplication {
    /// Target node index in the network.
    pub node: usize,
    /// Flat offsets of faulty neurons in the layer's output tensor.
    pub faulty_neurons: Vec<usize>,
    /// The faulty values, parallel to `faulty_neurons`.
    pub faulty_values: Vec<f32>,
    /// The full corrupted layer output (clean output with the faulty values
    /// spliced in).
    pub layer_output: Tensor,
    /// Largest |faulty − clean| over the faulty neurons (infinite when a
    /// NaN/Inf was produced). Drives the Key-Result-5 analysis.
    pub max_perturbation: f32,
}

/// [`ModelEffect`] without the dense corrupted tensor: just the sparse
/// (offset, value) patch. This is all the batched delta resume path needs —
/// materializing the dense `layer_output` is deferred to
/// [`apply_model_pooled`], which splices it on demand for the full-resume
/// path. Sampling and RNG consumption are identical between the two forms.
#[derive(Debug, Clone)]
pub enum SparseEffect {
    /// The sampled fault cannot change any value.
    Masked,
    /// Global control: modeled system failure, no simulation.
    SystemFailure,
    /// The layer finishes with the given sparse corruption.
    Layer(SparseFault),
}

/// The sparse form of a corrupted-layer outcome.
#[derive(Debug, Clone)]
pub struct SparseFault {
    /// Target node index in the network.
    pub node: usize,
    /// Flat offsets of faulty neurons in the layer's output tensor.
    pub neurons: Vec<usize>,
    /// The faulty values, parallel to `neurons`.
    pub values: Vec<f32>,
    /// Largest |faulty − clean| over the faulty neurons.
    pub max_perturbation: f32,
}

/// Operand tensors and codecs of a MAC node.
struct MacOperands<'a> {
    spec: MacSpec,
    input: &'a Tensor,
    weight: &'a Tensor,
    input_codec: ValueCodec,
    weight_codec: ValueCodec,
}

fn mac_operands<'a>(engine: &'a Engine, trace: &'a Trace, node: usize) -> Option<MacOperands<'a>> {
    let spec = engine.mac_spec(node, trace)?;
    let n_src = engine.node_source_count(node);
    if n_src == 0 {
        return None;
    }
    let (weight, weight_codec) = if matches!(spec, MacSpec::MatMul(_)) {
        if n_src < 2 {
            return None;
        }
        (
            engine.node_input_at(node, 1, trace),
            engine.node_input_codec_at(node, 1),
        )
    } else {
        // Conv / Dense keep their weight in the layer. We look it up through
        // the trace-independent accessor; codec index 0 is the main weight.
        let w = engine.network().layer(node).weights().into_iter().next()?;
        (w, engine.weight_codec(node, 0)?)
    };
    Some(MacOperands {
        spec,
        input: engine.node_input_at(node, 0, trace),
        weight,
        input_codec: engine.node_input_codec_at(node, 0),
        weight_codec,
    })
}

/// Measured worst-case [`MacTier::Fast`] kernel divergence of one MAC node
/// over its traced operands (see [`MacSpec::fast_divergence`]): both tiers
/// are fully evaluated and compared element-wise, so the returned bound is
/// exact for this workload, not an estimate. `None` when `node` is not a
/// MAC layer.
///
/// [`MacTier::Fast`]: fidelity_dnn::macspec::MacTier::Fast
pub fn node_fast_divergence(engine: &Engine, trace: &Trace, node: usize) -> Option<f32> {
    let ops = mac_operands(engine, trace, node)?;
    let operands = Operands {
        input: ops.input,
        weight: ops.weight,
    };
    Some(ops.spec.fast_divergence(&operands))
}

/// Applies one sampled instance of `model` to MAC node `node` of a deployed
/// engine.
///
/// # Errors
///
/// Returns [`DnnError`] if `node` is not a MAC layer.
pub fn apply_model(
    model: SoftwareFaultModel,
    engine: &Engine,
    trace: &Trace,
    node: usize,
    rng: &mut SplitMix64,
) -> Result<ModelEffect, DnnError> {
    let mut ws = Workspace::new();
    apply_model_pooled(model, engine, trace, node, rng, &mut ws)
}

/// [`apply_model`] drawing the corrupted layer output from a caller-owned
/// [`Workspace`] instead of the global allocator — the campaign hot path.
/// Sampling, RNG consumption, and every produced value are identical to
/// [`apply_model`]; only the memory source differs.
///
/// # Errors
///
/// Returns [`DnnError`] if `node` is not a MAC layer.
pub fn apply_model_pooled(
    model: SoftwareFaultModel,
    engine: &Engine,
    trace: &Trace,
    node: usize,
    rng: &mut SplitMix64,
    ws: &mut Workspace,
) -> Result<ModelEffect, DnnError> {
    match apply_model_sparse(model, engine, trace, node, rng)? {
        SparseEffect::Masked => Ok(ModelEffect::Masked),
        SparseEffect::SystemFailure => Ok(ModelEffect::SystemFailure),
        SparseEffect::Layer(sf) => {
            let mut layer_output = ws.clone_of(&trace.node_outputs[sf.node]);
            for (&off, &v) in sf.neurons.iter().zip(&sf.values) {
                layer_output.data_mut()[off] = v;
            }
            Ok(ModelEffect::Layer(FaultApplication {
                node: sf.node,
                faulty_neurons: sf.neurons,
                faulty_values: sf.values,
                layer_output,
                max_perturbation: sf.max_perturbation,
            }))
        }
    }
}

/// The sparse core of [`apply_model_pooled`]: samples the model, computes
/// the changed neurons, but never materializes the dense corrupted tensor.
/// This is the form the batched delta resume path consumes directly.
///
/// # Errors
///
/// Returns [`DnnError`] if `node` is not a MAC layer.
pub fn apply_model_sparse(
    model: SoftwareFaultModel,
    engine: &Engine,
    trace: &Trace,
    node: usize,
    rng: &mut SplitMix64,
) -> Result<SparseEffect, DnnError> {
    if matches!(model, SoftwareFaultModel::GlobalControl) {
        return Ok(SparseEffect::SystemFailure);
    }
    let ops = mac_operands(engine, trace, node).ok_or_else(|| DnnError::InvalidConfig {
        message: format!("node {node} is not a MAC layer"),
    })?;
    let clean_out = &trace.node_outputs[node];
    let out_codec = engine.node_codec(node);

    let (neurons, values) = match model {
        SoftwareFaultModel::BeforeBuffer { kind } => {
            sample_value_fault(&ops, kind, None, false, clean_out, out_codec, rng)
        }
        SoftwareFaultModel::Operand {
            kind,
            window,
            random_suffix,
        } => sample_value_fault(
            &ops,
            kind,
            Some(window),
            random_suffix,
            clean_out,
            out_codec,
            rng,
        ),
        SoftwareFaultModel::OutputValue => {
            let off = rng.next_below(clean_out.len() as u64) as usize;
            let bit = rng.next_below(u64::from(out_codec.precision().bits())) as u32;
            let faulty = out_codec.flip_bit(clean_out.data()[off], bit);
            (vec![off], vec![faulty])
        }
        SoftwareFaultModel::LocalControl => {
            let off = rng.next_below(clean_out.len() as u64) as usize;
            let width = out_codec.precision().bits();
            let bits = (rng.next_u64() as u32) & width_mask(width);
            (vec![off], vec![out_codec.decode(bits)])
        }
        SoftwareFaultModel::GlobalControl => unreachable!("handled above"),
    };

    // Keep only neurons whose value actually changed.
    let mut faulty_neurons = Vec::new();
    let mut faulty_values = Vec::new();
    let mut max_pert = 0.0f32;
    for (off, val) in neurons.into_iter().zip(values) {
        let clean = clean_out.data()[off];
        let differs = val.is_nan() || clean.is_nan() || (val - clean).abs() > 0.0;
        if differs {
            let pert = if val.is_finite() && clean.is_finite() {
                (val - clean).abs()
            } else {
                f32::INFINITY
            };
            max_pert = max_pert.max(pert);
            faulty_neurons.push(off);
            faulty_values.push(val);
        }
    }
    if faulty_neurons.is_empty() {
        return Ok(SparseEffect::Masked);
    }
    Ok(SparseEffect::Layer(SparseFault {
        node,
        neurons: faulty_neurons,
        values: faulty_values,
        max_perturbation: max_pert,
    }))
}

fn width_mask(width: u32) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    }
}

/// Samples a value fault in one operand element and computes the affected
/// neurons: the whole use set for before-buffer faults, or a dataflow window
/// of it for operand-register faults.
#[allow(clippy::too_many_arguments)]
fn sample_value_fault(
    ops: &MacOperands<'_>,
    kind: OperandKind,
    window: Option<OperandWindow>,
    random_suffix: bool,
    clean_out: &Tensor,
    out_codec: ValueCodec,
    rng: &mut SplitMix64,
) -> (Vec<usize>, Vec<f32>) {
    let (tensor, codec) = match kind {
        OperandKind::Input => (ops.input, ops.input_codec),
        OperandKind::Weight => (ops.weight, ops.weight_codec),
    };
    if tensor.is_empty() || clean_out.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let elem = rng.next_below(tensor.len() as u64) as usize;
    let bit = rng.next_below(u64::from(codec.precision().bits())) as u32;
    let clean_value = tensor.data()[elem];
    let faulty_value = codec.flip_bit(clean_value, bit);

    let users = match kind {
        OperandKind::Input => ops.spec.neurons_using_input(elem),
        OperandKind::Weight => ops.spec.neurons_using_weight(elem),
    };
    if users.is_empty() {
        return (Vec::new(), Vec::new());
    }

    let selected: Vec<usize> = match window {
        None => users,
        Some(w) => select_window(&ops.spec, &users, w, random_suffix, rng),
    };

    let subst = Substitution {
        kind,
        offset: elem,
        value: faulty_value,
    };
    let operands = Operands {
        input: ops.input,
        weight: ops.weight,
    };
    let values = selected
        .iter()
        .map(|&off| out_codec.quantize(ops.spec.compute_at(&operands, off, Some(&subst))))
        .collect();
    (selected, values)
}

/// Restricts a full use set to one dataflow reuse window: a block of
/// `window.positions` consecutive positions (in computation order) × one
/// lane-aligned group of `window.channels` channels, optionally truncated to
/// a random position suffix (random fault cycle within the hold).
fn select_window(
    spec: &MacSpec,
    users: &[usize],
    window: OperandWindow,
    random_suffix: bool,
    rng: &mut SplitMix64,
) -> Vec<usize> {
    // Unique positions in computation order; unique channels sorted.
    let mut positions: Vec<usize> = Vec::new();
    let mut channels: Vec<usize> = Vec::new();
    for &off in users {
        let (p, c) = spec.coords_of(off);
        if !positions.contains(&p) {
            positions.push(p);
        }
        if !channels.contains(&c) {
            channels.push(c);
        }
    }
    channels.sort_unstable();

    // Position block: computation-order chunks of `window.positions`.
    let n_pos_blocks = positions.len().div_ceil(window.positions);
    let pb = rng.next_below(n_pos_blocks as u64) as usize;
    let pos_block =
        &positions[pb * window.positions..((pb + 1) * window.positions).min(positions.len())];
    let pos_block: Vec<usize> = if random_suffix && pos_block.len() > 1 {
        let start = rng.next_below(pos_block.len() as u64) as usize;
        pos_block[start..].to_vec()
    } else {
        pos_block.to_vec()
    };

    // Channel block: aligned groups of `window.channels` by absolute channel
    // id (MAC lanes process aligned channel groups).
    let groups: Vec<usize> = {
        let mut g: Vec<usize> = channels.iter().map(|c| c / window.channels).collect();
        g.dedup();
        g
    };
    let gsel = groups[rng.next_below(groups.len() as u64) as usize];

    // `neurons_using_input` / `neurons_using_weight` emit offsets in strictly
    // ascending order for every MacSpec kind (their loops walk batch, then
    // channel, then position with monotone offset formulas), so membership is
    // a binary search — no per-injection hash set.
    debug_assert!(users.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    for &p in &pos_block {
        for &c in &channels {
            if c / window.channels == gsel {
                let off = spec.offset_of(p, c);
                if users.binary_search(&off).is_ok() {
                    out.push(off);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_accel::presets;
    use fidelity_dnn::graph::NetworkBuilder;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::layers::{Conv2d, Dense};
    use fidelity_dnn::precision::Precision;

    fn conv_engine() -> (Engine, Trace) {
        let weight = uniform_tensor(7, vec![8, 3, 3, 3], 0.5);
        let net = NetworkBuilder::new("t")
            .input("x")
            .layer(
                Conv2d::new("conv", weight).unwrap().with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let x = uniform_tensor(3, vec![1, 3, 6, 6], 1.0);
        let trace = engine.trace(&[x]).unwrap();
        (engine, trace)
    }

    #[test]
    fn table2_model_mapping() {
        let cfg = presets::nvdla_like();
        let cat = FfCategory::Datapath {
            stage: PipelineStage::BufferToMac,
            var: VarType::Input,
        };
        match model_for(cat, &cfg) {
            Some(SoftwareFaultModel::Operand {
                kind,
                window,
                random_suffix,
            }) => {
                assert_eq!(kind, OperandKind::Input);
                assert_eq!(window.channels, 16);
                assert_eq!(window.positions, 1);
                assert!(!random_suffix);
            }
            other => panic!("unexpected model {other:?}"),
        }
        assert_eq!(
            model_for(FfCategory::GlobalControl, &cfg),
            Some(SoftwareFaultModel::GlobalControl)
        );
    }

    #[test]
    fn before_buffer_weight_faults_whole_channel() {
        let (engine, trace) = conv_engine();
        let mut rng = SplitMix64::new(11);
        let mut saw_fault = false;
        for _ in 0..32 {
            let effect = apply_model(
                SoftwareFaultModel::BeforeBuffer {
                    kind: OperandKind::Weight,
                },
                &engine,
                &trace,
                0,
                &mut rng,
            )
            .unwrap();
            if let ModelEffect::Layer(app) = effect {
                saw_fault = true;
                // All faulty neurons share one output channel.
                let spec = engine.mac_spec(0, &trace).unwrap();
                let chans: std::collections::HashSet<usize> = app
                    .faulty_neurons
                    .iter()
                    .map(|&off| spec.coords_of(off).1)
                    .collect();
                assert_eq!(chans.len(), 1);
                // And values can affect up to the whole channel (36 positions).
                assert!(app.faulty_neurons.len() <= 36);
            }
        }
        assert!(saw_fault);
    }

    #[test]
    fn operand_input_fault_spans_lane_channels() {
        let (engine, trace) = conv_engine();
        let cfg = presets::nvdla_like();
        let model = model_for(
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Input,
            },
            &cfg,
        )
        .unwrap();
        let mut rng = SplitMix64::new(5);
        let spec = engine.mac_spec(0, &trace).unwrap();
        for _ in 0..32 {
            if let ModelEffect::Layer(app) =
                apply_model(model, &engine, &trace, 0, &mut rng).unwrap()
            {
                // One spatial position, several consecutive channels.
                let coords: Vec<(usize, usize)> = app
                    .faulty_neurons
                    .iter()
                    .map(|&off| spec.coords_of(off))
                    .collect();
                let positions: std::collections::HashSet<usize> =
                    coords.iter().map(|&(p, _)| p).collect();
                assert_eq!(positions.len(), 1);
                assert!(coords.len() <= 16);
            }
        }
    }

    #[test]
    fn operand_weight_fault_is_position_suffix() {
        let (engine, trace) = conv_engine();
        let cfg = presets::nvdla_like();
        let model = model_for(
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight,
            },
            &cfg,
        )
        .unwrap();
        let mut rng = SplitMix64::new(6);
        let spec = engine.mac_spec(0, &trace).unwrap();
        let mut sizes = std::collections::HashSet::new();
        for _ in 0..64 {
            if let ModelEffect::Layer(app) =
                apply_model(model, &engine, &trace, 0, &mut rng).unwrap()
            {
                let chans: std::collections::HashSet<usize> = app
                    .faulty_neurons
                    .iter()
                    .map(|&off| spec.coords_of(off).1)
                    .collect();
                assert_eq!(chans.len(), 1, "weight fault stays in one channel");
                assert!(app.faulty_neurons.len() <= 16);
                sizes.insert(app.faulty_neurons.len());
            }
        }
        // The random suffix makes different sizes appear.
        assert!(sizes.len() > 2, "sizes seen: {sizes:?}");
    }

    #[test]
    fn output_value_fault_is_single_neuron() {
        let (engine, trace) = conv_engine();
        let mut rng = SplitMix64::new(8);
        match apply_model(
            SoftwareFaultModel::OutputValue,
            &engine,
            &trace,
            0,
            &mut rng,
        )
        .unwrap()
        {
            ModelEffect::Layer(app) => {
                assert_eq!(app.faulty_neurons.len(), 1);
            }
            ModelEffect::Masked => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn global_control_is_system_failure() {
        let (engine, trace) = conv_engine();
        let mut rng = SplitMix64::new(9);
        assert!(matches!(
            apply_model(
                SoftwareFaultModel::GlobalControl,
                &engine,
                &trace,
                0,
                &mut rng
            )
            .unwrap(),
            ModelEffect::SystemFailure
        ));
    }

    #[test]
    fn non_mac_node_is_rejected() {
        use fidelity_dnn::layers::{Activation, ActivationKind};
        let w = uniform_tensor(1, vec![4, 4], 0.5);
        let net = NetworkBuilder::new("t")
            .input("x")
            .layer(Dense::new("fc", w).unwrap(), &["x"])
            .unwrap()
            .layer(Activation::new("relu", ActivationKind::Relu), &["fc"])
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let trace = engine.trace(&[uniform_tensor(2, vec![1, 4], 1.0)]).unwrap();
        let mut rng = SplitMix64::new(3);
        assert!(apply_model(
            SoftwareFaultModel::OutputValue,
            &engine,
            &trace,
            1,
            &mut rng
        )
        .is_err());
    }
}
