//! Campaign resilience: panic isolation, per-injection watchdogs, and
//! checkpoint/resume for long-running campaigns.
//!
//! A statistically-sized campaign over a large workload runs millions of
//! injections across hours; a single panicking fault model, a runaway
//! propagation, or a pre-empted batch job must not discard the work already
//! done. [`ResilienceSpec`] configures three independent defense layers that
//! [`crate::campaign::CampaignRunner`] enforces:
//!
//! * **Panic isolation** — every cell runs under `catch_unwind` with bounded
//!   retries; an unrecoverable cell degrades to its partial [`CellStats`]
//!   (fewer samples → a wider Wilson interval) and is reported as a
//!   [`CellFailure`] instead of aborting the campaign, until the campaign's
//!   failure budget is exhausted.
//! * **Per-injection watchdog** — a wall-clock deadline on each injection;
//!   overruns classify as [`crate::outcome::Outcome::SystemAnomaly`], the
//!   same verdict the hardware watchdog would deliver.
//! * **Checkpoint/resume** — completed cells are persisted to a line-oriented
//!   checkpoint file; a restarted campaign replays only the missing cells.
//!   Because every cell owns a deterministic RNG stream, a resumed campaign
//!   is bit-identical to an uninterrupted one.
//!
//! The checkpoint format is hand-rolled (one record per line, `done <idx>`
//! completeness markers, f32 fields as exact bit patterns) so torn writes
//! from a killed process are detected and discarded on resume.

use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::time::Duration;

use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::macspec::OperandKind;
use fidelity_dnn::DnnError;
use fidelity_par::CancelToken;

use crate::campaign::{CampaignSpec, CellStats, InjectionEvent};
use crate::models::{OperandWindow, SoftwareFaultModel};
use crate::outcome::Outcome;

/// Fault-tolerance policy for a campaign.
#[derive(Debug, Clone)]
pub struct ResilienceSpec {
    /// Wall-clock deadline per injection. An injection that overruns it is
    /// classified as a system anomaly (watchdog reset) instead of hanging a
    /// worker. Campaigns with a deadline set are only statistically — not
    /// bit — reproducible, since classification depends on host timing.
    /// `None` (the default) disables the watchdog.
    pub injection_deadline: Option<Duration>,
    /// Retries after a cell's first failed attempt. A retried cell restarts
    /// its RNG stream from scratch, so a successful retry is bit-identical
    /// to a run that never failed.
    pub max_retries_per_cell: usize,
    /// Wait schedule between retry attempts. See [`RetryBackoff`]; the
    /// default backs off exponentially with seeded jitter. Use
    /// [`RetryBackoff::none`] to restore immediate retry.
    pub retry_backoff: RetryBackoff,
    /// Campaign-level cap on failed cells (after retries). Exceeding it
    /// aborts the campaign with [`DnnError::Campaign`]; up to the budget,
    /// failed cells degrade to their partial statistics.
    pub failure_budget: usize,
    /// Checkpoint persistence; `None` disables it.
    pub checkpoint: Option<CheckpointSpec>,
    /// Cooperative cancellation. When the token fires, queued cells are
    /// skipped, cells mid-flight run to completion and commit to the
    /// checkpoint, and the campaign returns a "cancelled" error — leaving a
    /// resumable checkpoint behind. `None` (the default) disables it.
    pub cancel: Option<CancelToken>,
    /// Fault injection for the injector itself (tests and drills); empty in
    /// production. Several specs may target different cells at once, which
    /// is how multi-cell failure accounting is exercised.
    pub chaos: Vec<ChaosSpec>,
}

impl Default for ResilienceSpec {
    fn default() -> Self {
        ResilienceSpec {
            injection_deadline: None,
            max_retries_per_cell: 1,
            retry_backoff: RetryBackoff::default(),
            failure_budget: 4,
            checkpoint: None,
            cancel: None,
            chaos: Vec::new(),
        }
    }
}

/// Where and how often a campaign persists completed cells.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file path (conventionally `results/<campaign>.ckpt`).
    pub path: PathBuf,
    /// Flush to disk every N completed cells (min 1).
    pub interval_cells: usize,
    /// When set, an existing compatible checkpoint at `path` is loaded
    /// before running and only missing cells are executed. A missing file
    /// starts fresh; a checkpoint written for a different campaign
    /// (fingerprint mismatch) is an error.
    pub resume: bool,
}

impl CheckpointSpec {
    /// A write-only checkpoint at `path`, flushed after every cell.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            path: path.into(),
            interval_cells: 1,
            resume: false,
        }
    }

    /// Like [`CheckpointSpec::new`], but resuming from `path` when a
    /// compatible checkpoint exists there.
    pub fn resuming(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            resume: true,
            ..CheckpointSpec::new(path)
        }
    }
}

/// Wait schedule between a cell's retry attempts.
///
/// Immediate retry is the wrong reflex for the failures retries exist to
/// absorb — a host under transient memory pressure, a watchdog tripping
/// under load — because hammering the same cell back-to-back tends to
/// reproduce the failure. Delays instead grow exponentially from `base`,
/// bounded by `cap`, with jitter so a fleet of failing cells does not retry
/// in lockstep. The jitter is *deterministic*: it comes from a `SplitMix64`
/// stream keyed on the campaign seed, the cell index, and the retry number,
/// so two runs of the same spec wait the exact same schedule — retries stay
/// reproducible like everything else in a campaign.
#[derive(Debug, Clone)]
pub struct RetryBackoff {
    /// Nominal delay before the first retry. [`Duration::ZERO`] disables
    /// waiting entirely (immediate retry).
    pub base: Duration,
    /// Growth factor per retry: retry `n` nominally waits
    /// `base * factor^(n-1)`.
    pub factor: u32,
    /// Upper bound on the nominal delay of any single retry.
    pub cap: Duration,
    /// Jitter as a percentage of the nominal delay (clamped to 100): retry
    /// `n` waits a value drawn uniformly from
    /// `nominal ± nominal * jitter_pct / 100`.
    pub jitter_pct: u8,
}

impl Default for RetryBackoff {
    fn default() -> Self {
        RetryBackoff {
            base: Duration::from_millis(25),
            factor: 2,
            cap: Duration::from_secs(1),
            jitter_pct: 20,
        }
    }
}

impl RetryBackoff {
    /// Immediate retry — the schedule every delay of which is zero.
    pub const fn none() -> Self {
        RetryBackoff {
            base: Duration::ZERO,
            factor: 2,
            cap: Duration::ZERO,
            jitter_pct: 0,
        }
    }

    /// The delay before retry `retry` (1-based; `0` means "first attempt"
    /// and never waits) of plan cell `cell` in a campaign seeded with
    /// `seed`. Pure: the same inputs always produce the same delay.
    pub fn delay(&self, seed: u64, cell: usize, retry: usize) -> Duration {
        if retry == 0 || self.base.is_zero() {
            return Duration::ZERO;
        }
        let base_us = duration_us(self.base);
        let cap_us = duration_us(self.cap);
        let mut nominal = base_us;
        for _ in 1..retry {
            nominal = nominal.saturating_mul(u64::from(self.factor));
            if nominal >= cap_us {
                break;
            }
        }
        nominal = nominal.min(cap_us);
        let span = nominal.saturating_mul(u64::from(self.jitter_pct.min(100))) / 100;
        let mut rng = SplitMix64::new(
            seed ^ (cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (retry as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        // `2 * span + 1` possible outcomes centred on the nominal delay.
        let jittered = nominal - span + rng.next_below(2 * span + 1);
        Duration::from_micros(jittered)
    }
}

/// Saturating microseconds of a `Duration` (fits any schedule we care about).
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Deliberate malfunction injected into the campaign runner itself, aimed at
/// one (node, category) cell. This is how the resilience machinery is tested
/// without a genuinely buggy fault model.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Target node index.
    pub node: usize,
    /// Target FF category.
    pub category: FfCategory,
    /// What goes wrong.
    pub mode: ChaosMode,
}

/// The malfunction a [`ChaosSpec`] triggers.
#[derive(Debug, Clone, Copy)]
pub enum ChaosMode {
    /// Panic when the cell reaches the given sample index, on every attempt.
    PanicAtSample(usize),
    /// Sleep this long before every injection of the cell, simulating a
    /// pathologically slow propagation (drives the watchdog).
    DelayPerInjection(Duration),
}

/// Why a cell failed.
#[derive(Debug, Clone)]
pub enum FailureReason {
    /// The injection code panicked; the payload rendered as text.
    Panic(String),
    /// The injection returned an error.
    Error(String),
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::Panic(msg) => write!(f, "panic: {msg}"),
            FailureReason::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

/// The record of one cell that exhausted its retries.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Target node index.
    pub node: usize,
    /// Target layer name.
    pub layer: String,
    /// FF category of the failed cell.
    pub category: FfCategory,
    /// Attempts made (first run + retries).
    pub attempts: usize,
    /// Samples the kept partial statistics contain (the RNG stream position
    /// reached on the last attempt).
    pub samples_completed: usize,
    /// Why the last attempt failed.
    pub reason: FailureReason,
}

// ---------------------------------------------------------------------------
// Checkpoint encoding
// ---------------------------------------------------------------------------

/// Checkpoint format magic + version line.
const HEADER: &str = "fidelity-ckpt v1";

/// FNV-1a over the campaign identity: everything that determines the cell
/// plan and each cell's RNG stream. Two specs with the same fingerprint
/// produce interchangeable checkpoints; the resilience policy itself is
/// deliberately excluded (a resumed run may use different retry settings),
/// and so is `batch` — batched fault-cone evaluation is a scheduling policy
/// whose results are bit-identical to the dense path by construction. The
/// MAC tier IS identity: the Fast tier may legally change low-order bits,
/// so its checkpoints are not interchangeable with Bitwise ones.
pub fn campaign_fingerprint(
    spec: &CampaignSpec,
    network: &str,
    plan: &[(usize, FfCategory)],
) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(network.as_bytes());
    eat(&spec.seed.to_le_bytes());
    eat(&(spec.samples_per_cell as u64).to_le_bytes());
    eat(&[u8::from(spec.record_events)]);
    eat(&spec
        .target_ci_halfwidth
        .map_or(u64::MAX, f64::to_bits)
        .to_le_bytes());
    eat(spec.mac_tier.as_str().as_bytes());
    // Adaptive plan parameters are identity: epsilon/confidence/max decide
    // which injections run, so adaptive checkpoints only interchange between
    // equal plans. Eaten only when present, preserving every pre-adaptive
    // fingerprint byte-for-byte.
    if let Some(a) = &spec.adaptive {
        eat(&[1u8]);
        eat(&a.epsilon.to_bits().to_le_bytes());
        eat(&a.confidence.to_bits().to_le_bytes());
        eat(&(a.max_injections as u64).to_le_bytes());
    }
    for &(node, cat) in plan {
        eat(&(node as u64).to_le_bytes());
        eat(cat_code(cat).as_bytes());
    }
    h
}

/// Writes the checkpoint header.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_header<W: Write>(w: &mut W, fingerprint: u64) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    writeln!(w, "fingerprint {fingerprint:016x}")
}

/// Appends one completed cell, terminated by its `done` marker. A record cut
/// short by a kill lacks the marker and is discarded on parse.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_cell<W: Write>(w: &mut W, idx: usize, cell: &CellStats) -> io::Result<()> {
    writeln!(
        w,
        "cell {idx} {} {} {} {} {} {} {} {} {}",
        cell.node,
        cat_code(cell.category),
        model_code(&cell.model),
        cell.samples,
        cell.masked,
        cell.output_error,
        cell.anomaly,
        cell.events.len(),
        cell.layer,
    )?;
    for ev in &cell.events {
        writeln!(
            w,
            "ev {} {:08x} {}",
            ev.faulty_neurons,
            ev.max_perturbation.to_bits(),
            outcome_code(ev.outcome),
        )?;
    }
    writeln!(w, "done {idx}")
}

/// A parsed checkpoint: the campaign fingerprint plus every complete cell
/// record, keyed by plan index.
#[derive(Debug, Clone)]
pub struct ParsedCheckpoint {
    /// Fingerprint the checkpoint was written for.
    pub fingerprint: u64,
    /// Complete `(plan index, statistics)` records, in file order.
    pub cells: Vec<(usize, CellStats)>,
}

/// Parses a checkpoint, keeping only records whose `done` marker made it to
/// disk (a torn tail from a killed process is silently dropped — those cells
/// simply rerun).
///
/// # Errors
///
/// Returns [`DnnError::Campaign`] on I/O errors, a bad header, or a
/// structurally malformed record (which indicates corruption rather than a
/// torn tail).
pub fn parse_checkpoint<R: BufRead>(r: R) -> Result<ParsedCheckpoint, DnnError> {
    let corrupt = |what: &str| DnnError::Campaign {
        message: format!("corrupt checkpoint: {what}"),
    };
    let mut lines = r.lines();
    let header = lines
        .next()
        .transpose()
        .map_err(|e| corrupt(&format!("read failed: {e}")))?
        .ok_or_else(|| corrupt("empty file"))?;
    if header != HEADER {
        return Err(corrupt(&format!("bad header `{header}`")));
    }
    let fp_line = lines
        .next()
        .transpose()
        .map_err(|e| corrupt(&format!("read failed: {e}")))?
        .ok_or_else(|| corrupt("missing fingerprint"))?;
    let fingerprint = fp_line
        .strip_prefix("fingerprint ")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| corrupt(&format!("bad fingerprint line `{fp_line}`")))?;

    let mut cells = Vec::new();
    let mut committed = std::collections::HashSet::new();
    // The record being accumulated: (idx, stats, events still expected).
    let mut pending: Option<(usize, CellStats, usize)> = None;
    for (off, line) in lines.enumerate() {
        // Header and fingerprint occupy lines 1-2; data starts at line 3.
        let lineno = off + 3;
        // A torn final line can be unreadable; everything after it is
        // lost anyway, so stop at the last complete record.
        let Ok(line) = line else { break };
        if let Some(rest) = line.strip_prefix("cell ") {
            // A new cell while one is pending means the previous record
            // never completed; drop it.
            pending = parse_cell_line(rest);
            match &pending {
                // A second record for an already-committed cell cannot come
                // from a torn tail (the writer commits each index once);
                // it means a concurrent writer or silent corruption, and
                // last-write-wins would mask it.
                Some((idx, ..)) if committed.contains(idx) => {
                    return Err(corrupt(&format!(
                        "duplicate record for cell {idx} at line {lineno}"
                    )));
                }
                None if !line_is_torn_tail(&line) => {
                    return Err(corrupt(&format!("bad cell line `{line}`")));
                }
                _ => {}
            }
        } else if let Some(rest) = line.strip_prefix("ev ") {
            if let Some((_, stats, expected)) = pending.as_mut() {
                if *expected == 0 {
                    return Err(corrupt("more events than declared"));
                }
                match parse_event_line(rest) {
                    Some(ev) => {
                        stats.events.push(ev);
                        *expected -= 1;
                    }
                    None => {
                        // Torn mid-event: discard the pending record.
                        pending = None;
                    }
                }
            }
            // An `ev` with no pending cell: remnant of a dropped record.
        } else if let Some(rest) = line.strip_prefix("done ") {
            if let Some((idx, stats, expected)) = pending.take() {
                let done_idx: Option<usize> = rest.trim().parse().ok();
                if done_idx == Some(idx) && expected == 0 {
                    committed.insert(idx);
                    cells.push((idx, stats));
                }
                // Mismatched or short record: drop it, keep parsing.
            }
        } else if line.trim().is_empty() {
            // Blank line: ignore.
        } else if line_is_torn_tail(&line) {
            break;
        } else {
            return Err(corrupt(&format!("unrecognized line `{line}`")));
        }
    }
    Ok(ParsedCheckpoint { fingerprint, cells })
}

/// A heuristic for the final, torn line of a killed writer: any prefix of a
/// valid record keyword. Full garbage elsewhere in the file still errors.
fn line_is_torn_tail(line: &str) -> bool {
    ["cell", "ev", "done"]
        .iter()
        .any(|kw| kw.starts_with(line.split_whitespace().next().unwrap_or("")))
}

fn parse_cell_line(rest: &str) -> Option<(usize, CellStats, usize)> {
    // cell <idx> <node> <cat> <model> <samples> <masked> <oe> <an> <nev> <layer...>
    let mut it = rest.splitn(10, ' ');
    let idx: usize = it.next()?.parse().ok()?;
    let node: usize = it.next()?.parse().ok()?;
    let category = parse_cat(it.next()?)?;
    let model = parse_model(it.next()?)?;
    let samples: usize = it.next()?.parse().ok()?;
    let masked: usize = it.next()?.parse().ok()?;
    let output_error: usize = it.next()?.parse().ok()?;
    let anomaly: usize = it.next()?.parse().ok()?;
    let nevents: usize = it.next()?.parse().ok()?;
    let layer = it.next()?.to_owned();
    Some((
        idx,
        CellStats {
            node,
            layer,
            category,
            model,
            samples,
            masked,
            output_error,
            anomaly,
            events: Vec::with_capacity(nevents.min(4096)),
        },
        nevents,
    ))
}

fn parse_event_line(rest: &str) -> Option<InjectionEvent> {
    let mut it = rest.split(' ');
    let faulty_neurons: usize = it.next()?.parse().ok()?;
    let bits = u32::from_str_radix(it.next()?, 16).ok()?;
    let outcome = parse_outcome(it.next()?)?;
    if it.next().is_some() {
        return None;
    }
    Some(InjectionEvent {
        faulty_neurons,
        max_perturbation: f32::from_bits(bits),
        outcome,
    })
}

fn outcome_code(o: Outcome) -> &'static str {
    match o {
        Outcome::Masked => "m",
        Outcome::OutputError => "e",
        Outcome::SystemAnomaly => "a",
    }
}

fn parse_outcome(s: &str) -> Option<Outcome> {
    match s {
        "m" => Some(Outcome::Masked),
        "e" => Some(Outcome::OutputError),
        "a" => Some(Outcome::SystemAnomaly),
        _ => None,
    }
}

/// Compact, stable code for an FF category (`d:<stage>:<var>`, `lc`, `gc`).
pub(crate) fn cat_code(cat: FfCategory) -> String {
    match cat {
        FfCategory::Datapath { stage, var } => {
            let s = match stage {
                PipelineStage::BeforeBuffer => "bb",
                PipelineStage::BufferToMac => "bm",
                PipelineStage::AfterMac => "am",
            };
            let v = match var {
                VarType::Input => "i",
                VarType::Weight => "w",
                VarType::Bias => "b",
                VarType::PartialSum => "p",
                VarType::Output => "o",
            };
            format!("d:{s}:{v}")
        }
        FfCategory::LocalControl => "lc".to_owned(),
        FfCategory::GlobalControl => "gc".to_owned(),
    }
}

pub(crate) fn parse_cat(s: &str) -> Option<FfCategory> {
    match s {
        "lc" => return Some(FfCategory::LocalControl),
        "gc" => return Some(FfCategory::GlobalControl),
        _ => {}
    }
    let mut it = s.split(':');
    if it.next()? != "d" {
        return None;
    }
    let stage = match it.next()? {
        "bb" => PipelineStage::BeforeBuffer,
        "bm" => PipelineStage::BufferToMac,
        "am" => PipelineStage::AfterMac,
        _ => return None,
    };
    let var = match it.next()? {
        "i" => VarType::Input,
        "w" => VarType::Weight,
        "b" => VarType::Bias,
        "p" => VarType::PartialSum,
        "o" => VarType::Output,
        _ => return None,
    };
    if it.next().is_some() {
        return None;
    }
    Some(FfCategory::Datapath { stage, var })
}

fn operand_code(kind: OperandKind) -> &'static str {
    match kind {
        OperandKind::Input => "i",
        OperandKind::Weight => "w",
    }
}

fn parse_operand(s: &str) -> Option<OperandKind> {
    match s {
        "i" => Some(OperandKind::Input),
        "w" => Some(OperandKind::Weight),
        _ => None,
    }
}

/// Compact, stable code for a software fault model.
pub(crate) fn model_code(model: &SoftwareFaultModel) -> String {
    match model {
        SoftwareFaultModel::BeforeBuffer { kind } => format!("bb:{}", operand_code(*kind)),
        SoftwareFaultModel::Operand {
            kind,
            window,
            random_suffix,
        } => format!(
            "op:{}:{}:{}:{}",
            operand_code(*kind),
            window.positions,
            window.channels,
            u8::from(*random_suffix),
        ),
        SoftwareFaultModel::OutputValue => "out".to_owned(),
        SoftwareFaultModel::LocalControl => "lc".to_owned(),
        SoftwareFaultModel::GlobalControl => "gc".to_owned(),
    }
}

pub(crate) fn parse_model(s: &str) -> Option<SoftwareFaultModel> {
    match s {
        "out" => return Some(SoftwareFaultModel::OutputValue),
        "lc" => return Some(SoftwareFaultModel::LocalControl),
        "gc" => return Some(SoftwareFaultModel::GlobalControl),
        _ => {}
    }
    let mut it = s.split(':');
    let model = match it.next()? {
        "bb" => SoftwareFaultModel::BeforeBuffer {
            kind: parse_operand(it.next()?)?,
        },
        "op" => SoftwareFaultModel::Operand {
            kind: parse_operand(it.next()?)?,
            window: OperandWindow {
                positions: it.next()?.parse().ok()?,
                channels: it.next()?.parse().ok()?,
            },
            random_suffix: match it.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            },
        },
        _ => return None,
    };
    if it.next().is_some() {
        return None;
    }
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellStats {
        CellStats {
            node: 3,
            layer: "conv block 2".to_owned(), // spaces round-trip
            category: FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight,
            },
            model: SoftwareFaultModel::Operand {
                kind: OperandKind::Weight,
                window: OperandWindow {
                    positions: 16,
                    channels: 1,
                },
                random_suffix: true,
            },
            samples: 100,
            masked: 60,
            output_error: 30,
            anomaly: 10,
            events: vec![
                InjectionEvent {
                    faulty_neurons: 5,
                    max_perturbation: f32::NAN,
                    outcome: Outcome::OutputError,
                },
                InjectionEvent {
                    faulty_neurons: 0,
                    max_perturbation: 0.25,
                    outcome: Outcome::Masked,
                },
            ],
        }
    }

    fn assert_cells_eq(a: &CellStats, b: &CellStats) {
        assert_eq!(a.node, b.node);
        assert_eq!(a.layer, b.layer);
        assert_eq!(a.category, b.category);
        assert_eq!(a.model, b.model);
        assert_eq!(
            (a.samples, a.masked, a.output_error, a.anomaly),
            (b.samples, b.masked, b.output_error, b.anomaly)
        );
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.faulty_neurons, y.faulty_neurons);
            assert_eq!(x.max_perturbation.to_bits(), y.max_perturbation.to_bits());
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn cell_round_trips_including_nan_events() {
        let cell = sample_cell();
        let mut buf = Vec::new();
        write_header(&mut buf, 0xDEAD_BEEF).unwrap();
        write_cell(&mut buf, 7, &cell).unwrap();
        let parsed = parse_checkpoint(&buf[..]).unwrap();
        assert_eq!(parsed.fingerprint, 0xDEAD_BEEF);
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.cells[0].0, 7);
        assert_cells_eq(&parsed.cells[0].1, &cell);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let cell = sample_cell();
        let mut buf = Vec::new();
        write_header(&mut buf, 1).unwrap();
        write_cell(&mut buf, 0, &cell).unwrap();
        write_cell(&mut buf, 1, &cell).unwrap();
        // Kill mid-write: truncate inside the second record.
        let s = String::from_utf8(buf).unwrap();
        let second = s.match_indices("cell 1 ").next().unwrap().0;
        let torn = &s[..second + 20];
        let parsed = parse_checkpoint(torn.as_bytes()).unwrap();
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.cells[0].0, 0);
    }

    #[test]
    fn record_without_done_marker_is_dropped() {
        let cell = sample_cell();
        let mut buf = Vec::new();
        write_header(&mut buf, 1).unwrap();
        write_cell(&mut buf, 0, &cell).unwrap();
        let mut s = String::from_utf8(buf).unwrap();
        s = s.replace("done 0\n", "");
        let parsed = parse_checkpoint(s.as_bytes()).unwrap();
        assert!(parsed.cells.is_empty());
    }

    #[test]
    fn duplicate_cell_record_is_rejected_with_line_number() {
        let cell = sample_cell();
        let mut buf = Vec::new();
        write_header(&mut buf, 1).unwrap();
        write_cell(&mut buf, 0, &cell).unwrap();
        write_cell(&mut buf, 0, &cell).unwrap();
        let err = parse_checkpoint(&buf[..]).unwrap_err().to_string();
        // Record 0 spans lines 3-6 (cell + 2 events + done); the duplicate
        // `cell` line lands on line 7.
        assert!(
            err.contains("duplicate record for cell 0 at line 7"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn distinct_cells_still_parse_after_duplicate_check() {
        let cell = sample_cell();
        let mut buf = Vec::new();
        write_header(&mut buf, 1).unwrap();
        write_cell(&mut buf, 0, &cell).unwrap();
        write_cell(&mut buf, 1, &cell).unwrap();
        let parsed = parse_checkpoint(&buf[..]).unwrap();
        assert_eq!(parsed.cells.len(), 2);
    }

    #[test]
    fn backoff_schedule_is_pinned_and_reproducible() {
        let b = RetryBackoff::default();
        let schedule: Vec<u64> = (1..=6)
            .map(|r| b.delay(41, 3, r).as_micros() as u64)
            .collect();
        // Exact values for (seed=41, cell=3): nominal 25ms/50ms/100ms/...
        // capped at 1s, each jittered ±20% by the seeded stream. Any change
        // to the derivation is a reproducibility break and must show up here.
        let again: Vec<u64> = (1..=6)
            .map(|r| b.delay(41, 3, r).as_micros() as u64)
            .collect();
        assert_eq!(schedule, again, "schedule must be deterministic");
        let nominal = [25_000u64, 50_000, 100_000, 200_000, 400_000, 800_000];
        for (i, (&got, &nom)) in schedule.iter().zip(&nominal).enumerate() {
            let span = nom / 5;
            assert!(
                got >= nom - span && got <= nom + span,
                "retry {} delay {got}us outside {nom}±{span}us",
                i + 1
            );
        }
        assert_eq!(schedule, PINNED_SCHEDULE, "seeded jitter schedule moved");
    }

    /// The exact delays (microseconds) of `RetryBackoff::default()` for
    /// seed 41, cell 3, retries 1..=6.
    const PINNED_SCHEDULE: [u64; 6] = [25_028, 49_385, 89_200, 192_080, 343_645, 877_268];

    #[test]
    fn backoff_caps_jitters_and_disables() {
        let b = RetryBackoff::default();
        // Past the cap the nominal delay stops growing (1s ± 20%).
        let far = b.delay(7, 0, 30).as_micros() as u64;
        assert!((800_000..=1_200_000).contains(&far), "capped delay: {far}");
        // Different seeds, cells, or retry numbers draw different jitter.
        assert_ne!(b.delay(1, 0, 1), b.delay(2, 0, 1));
        assert_ne!(b.delay(1, 0, 1), b.delay(1, 1, 1));
        // Retry 0 (the first attempt) and `none()` never wait.
        assert_eq!(b.delay(1, 0, 0), Duration::ZERO);
        assert_eq!(RetryBackoff::none().delay(1, 0, 5), Duration::ZERO);
    }

    #[test]
    fn bad_header_is_an_error() {
        assert!(parse_checkpoint(&b"not a checkpoint\n"[..]).is_err());
        assert!(parse_checkpoint(&b""[..]).is_err());
        assert!(parse_checkpoint(&b"fidelity-ckpt v1\nfingerprint zz\n"[..]).is_err());
    }

    #[test]
    fn all_categories_and_models_round_trip() {
        let cats = [
            FfCategory::LocalControl,
            FfCategory::GlobalControl,
            FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Bias,
            },
            FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::PartialSum,
            },
        ];
        for cat in cats {
            assert_eq!(parse_cat(&cat_code(cat)), Some(cat));
        }
        let models = [
            SoftwareFaultModel::BeforeBuffer {
                kind: OperandKind::Input,
            },
            SoftwareFaultModel::Operand {
                kind: OperandKind::Input,
                window: OperandWindow {
                    positions: 1,
                    channels: 16,
                },
                random_suffix: false,
            },
            SoftwareFaultModel::OutputValue,
            SoftwareFaultModel::LocalControl,
            SoftwareFaultModel::GlobalControl,
        ];
        for model in models {
            assert_eq!(parse_model(&model_code(&model)), Some(model));
        }
    }

    #[test]
    fn fingerprint_tracks_identity_fields_only() {
        let base = CampaignSpec::default();
        let plan = [(0usize, FfCategory::LocalControl)];
        let fp = campaign_fingerprint(&base, "net", &plan);
        let mut other = base.clone();
        other.threads = base.threads + 1; // scheduling is irrelevant
        assert_eq!(fp, campaign_fingerprint(&other, "net", &plan));
        let mut batched = base.clone();
        batched.batch = 64; // batching is policy, results are bit-identical
        assert_eq!(fp, campaign_fingerprint(&batched, "net", &plan));
        let mut fast = base.clone();
        fast.mac_tier = fidelity_dnn::macspec::MacTier::Fast; // may change bits
        assert_ne!(fp, campaign_fingerprint(&fast, "net", &plan));
        let mut reseeded = base.clone();
        reseeded.seed ^= 1;
        assert_ne!(fp, campaign_fingerprint(&reseeded, "net", &plan));
        assert_ne!(fp, campaign_fingerprint(&base, "other-net", &plan));
        assert_ne!(
            fp,
            campaign_fingerprint(&base, "net", &[(1, FfCategory::LocalControl)])
        );
    }

    #[test]
    fn fingerprint_treats_adaptive_plan_as_identity() {
        let base = CampaignSpec::default();
        let plan = [(0usize, FfCategory::LocalControl)];
        let fp = campaign_fingerprint(&base, "net", &plan);
        // Turning the adaptive plan on is an identity change.
        let mut adaptive = base.clone();
        adaptive.adaptive = Some(crate::adaptive::AdaptivePlan::new(0.01));
        let fp_a = campaign_fingerprint(&adaptive, "net", &plan);
        assert_ne!(fp, fp_a);
        // So is every plan parameter.
        let mut eps = adaptive.clone();
        eps.adaptive.as_mut().unwrap().epsilon = 0.02;
        assert_ne!(fp_a, campaign_fingerprint(&eps, "net", &plan));
        let mut conf = adaptive.clone();
        conf.adaptive.as_mut().unwrap().confidence = 0.99;
        assert_ne!(fp_a, campaign_fingerprint(&conf, "net", &plan));
        let mut cap = adaptive.clone();
        cap.adaptive.as_mut().unwrap().max_injections = 999;
        assert_ne!(fp_a, campaign_fingerprint(&cap, "net", &plan));
        // An equal plan reproduces the fingerprint exactly.
        let again = adaptive.clone();
        assert_eq!(fp_a, campaign_fingerprint(&again, "net", &plan));
        // And a None plan leaves the legacy fingerprint untouched.
        assert_eq!(fp, campaign_fingerprint(&base.clone(), "net", &plan));
    }
}
