//! Fault-injection outcome classification and correctness metrics.

use fidelity_dnn::tensor::Tensor;

/// Outcome of one fault-injection experiment (Sec. III-D step 2).
///
/// "System failure" in the paper's terminology covers both
/// [`Outcome::OutputError`] and [`Outcome::SystemAnomaly`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The final output is sufficiently similar to the golden output.
    Masked,
    /// The application produced an incorrect output.
    OutputError,
    /// The system misbehaved structurally (time-out, hang, global-control
    /// derailment).
    SystemAnomaly,
}

impl Outcome {
    /// Whether this outcome counts as a system failure in Eq. 2.
    pub fn is_failure(self) -> bool {
        !matches!(self, Outcome::Masked)
    }
}

/// An application-level correctness metric: decides whether a faulty final
/// output is acceptable (Sec. V, Table IV).
///
/// Implementations: top-1 label match (classification), BLEU-score
/// difference thresholds (translation), detection-precision difference
/// thresholds (object detection) — the latter two live in
/// `fidelity-workloads`.
pub trait CorrectnessMetric: Sync {
    /// Metric name for reports.
    fn name(&self) -> &str;

    /// Whether `observed` is acceptable relative to `golden`.
    fn is_correct(&self, golden: &Tensor, observed: &Tensor) -> bool;
}

/// Top-1 label match: the classification metric of Table IV.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopOneMatch;

impl CorrectnessMetric for TopOneMatch {
    fn name(&self) -> &str {
        "top-1 label match"
    }

    fn is_correct(&self, golden: &Tensor, observed: &Tensor) -> bool {
        match (golden.argmax(), observed.argmax()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_classification() {
        assert!(!Outcome::Masked.is_failure());
        assert!(Outcome::OutputError.is_failure());
        assert!(Outcome::SystemAnomaly.is_failure());
    }

    #[test]
    fn top_one_match() {
        let golden = Tensor::from_slice(&[0.1, 0.9, 0.0]);
        let same = Tensor::from_slice(&[0.2, 0.5, 0.1]);
        let diff = Tensor::from_slice(&[0.9, 0.1, 0.0]);
        let m = TopOneMatch;
        assert!(m.is_correct(&golden, &same));
        assert!(!m.is_correct(&golden, &diff));
    }

    #[test]
    fn top_one_all_nan_is_incorrect() {
        let golden = Tensor::from_slice(&[0.1, 0.9]);
        let nan = Tensor::from_slice(&[f32::NAN, f32::NAN]);
        assert!(!TopOneMatch.is_correct(&golden, &nan));
    }
}
