//! FF activeness analysis — Eq. 1 of the paper.
//!
//! A fault in an inactive FF is always masked, so Eq. 2 discounts each
//! category's contribution by the probability that an FF of that category is
//! inactive during a layer. Three mutually-exclusive inactive classes are
//! modeled (Sec. III-D step 1):
//!
//! 1. **Component not used** — e.g. the weight-decompression unit when
//!    weights are uncompressed;
//! 2. **Signal not used** — e.g. floating-point-only FFs during an integer
//!    deployment;
//! 3. **Temporally not used** — the component idles for part of the layer
//!    (from the performance model's fetch/compute breakdown).

use fidelity_accel::arch::AcceleratorConfig;
use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};
use fidelity_accel::perf::LayerTiming;
use fidelity_dnn::precision::Precision;

/// Eq. 1: the probability that an FF of `cat` is inactive during a layer
/// with timing `timing` at deployment precision `precision`:
///
/// `Prob_inactive(cat, r) = Σ_cl FF_Perc(cat, cl) · Perc_inactive(cat, cl, r)`
///
/// where Class 1/2 fractions come from the configuration's
/// [`InactiveModel`](fidelity_accel::arch::InactiveModel) and the Class 3
/// fraction from the performance model.
pub fn prob_inactive(
    cfg: &AcceleratorConfig,
    cat: FfCategory,
    timing: &LayerTiming,
    precision: Precision,
) -> f64 {
    let class1 = class1_fraction(cfg, cat);
    let class2 = class2_fraction(cfg, cat, precision);
    // Classes are mutually exclusive and complete: the rest of the FFs are
    // subject only to temporal inactivity.
    let class3_pop = (1.0 - class1 - class2).max(0.0);
    let class3_inactive = timing.class3_inactive(cat);
    (class1 + class2 + class3_pop * class3_inactive).clamp(0.0, 1.0)
}

/// The Class 1/2 population fractions of `cat` under `precision`, exposed so
/// static analyses can check the Eq.-1 partition invariants (each fraction
/// in `[0, 1]`, the two classes disjoint: their sum must not exceed 1, with
/// the remainder forming the Class-3 population).
pub fn class_partition(
    cfg: &AcceleratorConfig,
    cat: FfCategory,
    precision: Precision,
) -> (f64, f64) {
    (
        class1_fraction(cfg, cat),
        class2_fraction(cfg, cat, precision),
    )
}

/// Class 1 ("component not used"): the weight-decompression unit sits on the
/// weight fetch path and all our workloads use uncompressed weights, so its
/// FFs are idle for entire layers.
fn class1_fraction(cfg: &AcceleratorConfig, cat: FfCategory) -> f64 {
    match cat {
        FfCategory::Datapath {
            stage: PipelineStage::BeforeBuffer,
            var: VarType::Weight,
        } => cfg.inactive.decompression_frac,
        _ => 0.0,
    }
}

/// Class 2 ("signal not used"): FP-only FFs idle under integer deployments
/// and vice versa. Control FFs are precision-agnostic.
fn class2_fraction(cfg: &AcceleratorConfig, cat: FfCategory, precision: Precision) -> f64 {
    match cat {
        FfCategory::Datapath { .. } => {
            if precision.is_float() {
                cfg.inactive.int_only_frac
            } else {
                cfg.inactive.fp_only_frac
            }
        }
        FfCategory::LocalControl | FfCategory::GlobalControl => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_accel::perf::{LayerTiming, LayerWork};
    use fidelity_accel::presets;
    use fidelity_dnn::layers::LayerKind;

    fn timing(cfg: &AcceleratorConfig) -> LayerTiming {
        LayerTiming::analyze(
            cfg,
            &LayerWork {
                name: "conv".into(),
                kind: LayerKind::Conv,
                macs: 50_000,
                input_elems: 2_000,
                weight_elems: 1_000,
                output_elems: 4_000,
            },
        )
    }

    #[test]
    fn probabilities_are_valid() {
        let cfg = presets::nvdla_like();
        let t = timing(&cfg);
        for (cat, _) in cfg.census.iter() {
            for precision in Precision::ALL {
                let p = prob_inactive(&cfg, cat, &t, precision);
                assert!((0.0..=1.0).contains(&p), "{cat}: {p}");
            }
        }
    }

    #[test]
    fn integer_deployment_idles_fp_ffs() {
        let cfg = presets::nvdla_like();
        let t = timing(&cfg);
        let cat = FfCategory::Datapath {
            stage: PipelineStage::BufferToMac,
            var: VarType::Input,
        };
        let p_int = prob_inactive(&cfg, cat, &t, Precision::Int8);
        let p_fp = prob_inactive(&cfg, cat, &t, Precision::Fp16);
        // fp_only_frac (0.15) > int_only_frac (0.10) in the default model.
        assert!(p_int > p_fp);
    }

    #[test]
    fn decompression_raises_before_buffer_weight_inactivity() {
        let cfg = presets::nvdla_like();
        let t = timing(&cfg);
        let weight_cat = FfCategory::Datapath {
            stage: PipelineStage::BeforeBuffer,
            var: VarType::Weight,
        };
        let input_cat = FfCategory::Datapath {
            stage: PipelineStage::BeforeBuffer,
            var: VarType::Input,
        };
        assert!(
            prob_inactive(&cfg, weight_cat, &t, Precision::Fp16)
                > prob_inactive(&cfg, input_cat, &t, Precision::Fp16)
        );
    }

    #[test]
    fn global_control_is_mostly_active() {
        let cfg = presets::nvdla_like();
        let t = timing(&cfg);
        let p = prob_inactive(&cfg, FfCategory::GlobalControl, &t, Precision::Fp16);
        assert_eq!(p, 0.0);
    }
}
