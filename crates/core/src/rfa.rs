//! Reuse Factor Analysis — Algorithm 1 of the paper.
//!
//! Given the minimal microarchitectural inputs bundled in
//! [`RfaInputs`] (see `fidelity_accel::dataflow` for how dataflow
//! descriptions generate them), the analysis derives:
//!
//! 1. the **reuse factor** (RF) — the maximum number of output neurons a
//!    single-cycle bit flip in the target FF can corrupt,
//! 2. the relative locations of all possible faulty neurons, and
//! 3. the order in which they are produced (the loop timestamp `l`).
//!
//! A random fault cycle is modeled by discarding the neurons of loops that
//! completed before the flip ([`RfaResult::sample_effective`]).

use std::collections::HashMap;
use std::fmt;

use fidelity_accel::dataflow::{NeuronOffset, RfaInputs};
use fidelity_dnn::init::SplitMix64;

/// A faulty neuron with the loop index at which it is (first) produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedNeuron {
    /// Relative neuron coordinate.
    pub neuron: NeuronOffset,
    /// Loop timestamp `l` (Algorithm 1, line 6).
    pub loop_index: usize,
}

/// Error for malformed Algorithm-1 inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfaError {
    target: String,
}

impl fmt::Display for RfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed rfa inputs for target `{}`", self.target)
    }
}

impl std::error::Error for RfaError {}

/// The output of Reuse Factor Analysis for one target FF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfaResult {
    /// Description of the analyzed FF.
    pub target: String,
    /// `FF_value_cycles` of the analyzed FF (needed to model a random fault
    /// cycle).
    pub ff_value_cycles: usize,
    /// Unique faulty neurons with their earliest production timestamp,
    /// in insertion (computation) order.
    pub faulty_neurons: Vec<TimedNeuron>,
}

impl RfaResult {
    /// The reuse factor: `RF = |FaultyNeurons|` (Algorithm 1, line 11).
    pub fn rf(&self) -> usize {
        self.faulty_neurons.len()
    }

    /// Models a random injection cycle: chooses `p ∈ [0, FF_value_cycles)`
    /// and keeps only neurons with timestamp `l ≥ p` — the loops that had
    /// already consumed the (then-correct) value before the flip are
    /// unaffected.
    pub fn sample_effective(&self, rng: &mut SplitMix64) -> Vec<NeuronOffset> {
        let p = if self.ff_value_cycles > 1 {
            rng.next_below(self.ff_value_cycles as u64) as usize
        } else {
            0
        };
        self.faulty_neurons
            .iter()
            .filter(|t| t.loop_index >= p)
            .map(|t| t.neuron)
            .collect()
    }
}

/// Runs Algorithm 1.
///
/// # Errors
///
/// Returns [`RfaError`] when the inputs violate their structural invariants
/// (loop count must equal `FF_value_cycles`, and each unit must list one
/// neuron set per in-effect cycle).
pub fn reuse_factor_analysis(inputs: &RfaInputs) -> Result<RfaResult, RfaError> {
    let derive_sw = fidelity_obs::clock::Stopwatch::start_if(fidelity_obs::timing_enabled());
    if !inputs.is_well_formed() {
        return Err(RfaError {
            target: inputs.target.clone(),
        });
    }
    let mut seen: HashMap<NeuronOffset, usize> = HashMap::new();
    let mut ordered: Vec<TimedNeuron> = Vec::new();
    // Lines 2–10: l over value cycles, m over M_l, y over in-effect cycles,
    // neuron over neurons(m)_{y,l}; insert (neuron, l) with deduplication.
    for (l, units) in inputs.loops.iter().enumerate() {
        for unit in units {
            for per_cycle in &unit.neurons {
                for &neuron in per_cycle {
                    if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(neuron) {
                        e.insert(l);
                        ordered.push(TimedNeuron {
                            neuron,
                            loop_index: l,
                        });
                    }
                }
            }
        }
    }
    // Registry lookup only when timing produced a sample — the disabled path
    // stays lock-free.
    if let Some(ns) = derive_sw.elapsed_ns() {
        fidelity_obs::metrics::histogram("rfa.derive_ns").record(ns);
    }
    Ok(RfaResult {
        target: inputs.target.clone(),
        ff_value_cycles: inputs.ff_value_cycles,
        faulty_neurons: ordered,
    })
}

/// Combines the RFA results of the datapath FFs a *local control* FF is
/// coupled with (Sec. III-B3): the RF is the sum of the coupled RFs and the
/// faulty-neuron set is the deduplicated union.
pub fn local_control_rfa(coupled: &[&RfaResult]) -> RfaResult {
    let mut seen: HashMap<NeuronOffset, usize> = HashMap::new();
    let mut ordered = Vec::new();
    for r in coupled {
        for t in &r.faulty_neurons {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(t.neuron) {
                e.insert(t.loop_index);
                ordered.push(*t);
            }
        }
    }
    RfaResult {
        target: format!(
            "local control coupled to [{}]",
            coupled
                .iter()
                .map(|r| r.target.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        ff_value_cycles: coupled.iter().map(|r| r.ff_value_cycles).max().unwrap_or(1),
        faulty_neurons: ordered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_accel::dataflow::{EyerissDataflow, NvdlaDataflow, UnitUse};

    #[test]
    fn fig2a_reuse_factors() {
        // The paper's hand-derived RFs for the NVDLA-like example:
        // a1 → t, a2 → t, a3 → 1, a4 → k².
        let df = NvdlaDataflow {
            lanes: 16,
            weight_hold: 16,
        };
        assert_eq!(reuse_factor_analysis(&df.example_a1()).unwrap().rf(), 16);
        assert_eq!(reuse_factor_analysis(&df.example_a2()).unwrap().rf(), 16);
        assert_eq!(reuse_factor_analysis(&df.example_a3()).unwrap().rf(), 1);
        assert_eq!(reuse_factor_analysis(&df.example_a4()).unwrap().rf(), 16);
    }

    #[test]
    fn fig2b_reuse_factors() {
        // b1 → k, b2 → k·t, b3 → 1.
        let df = EyerissDataflow {
            k: 7,
            channel_reuse: 5,
        };
        assert_eq!(reuse_factor_analysis(&df.example_b1()).unwrap().rf(), 7);
        assert_eq!(reuse_factor_analysis(&df.example_b2()).unwrap().rf(), 35);
        assert_eq!(reuse_factor_analysis(&df.example_b3()).unwrap().rf(), 1);
    }

    #[test]
    fn a1_neurons_are_consecutive_in_one_channel() {
        let df = NvdlaDataflow {
            lanes: 4,
            weight_hold: 8,
        };
        let r = reuse_factor_analysis(&df.example_a1()).unwrap();
        for (i, t) in r.faulty_neurons.iter().enumerate() {
            assert_eq!(t.neuron.width, i as i32);
            assert_eq!(t.neuron.channel, 0);
            assert_eq!(t.loop_index, 0);
        }
    }

    #[test]
    fn a2_sampling_truncates_by_fault_cycle() {
        let df = NvdlaDataflow {
            lanes: 4,
            weight_hold: 8,
        };
        let r = reuse_factor_analysis(&df.example_a2()).unwrap();
        assert_eq!(r.ff_value_cycles, 8);
        let mut rng = SplitMix64::new(1);
        let mut sizes = std::collections::HashSet::new();
        for _ in 0..256 {
            let eff = r.sample_effective(&mut rng);
            assert!((1..=8).contains(&eff.len()));
            sizes.insert(eff.len());
        }
        // Over 256 draws of p ∈ [0, 8) we should see several distinct sizes.
        assert!(sizes.len() >= 4);
    }

    #[test]
    fn deduplication_counts_unique_neurons() {
        // Two units touching the same neuron → RF 1, earliest timestamp.
        let inputs = RfaInputs {
            target: "dup".into(),
            ff_value_cycles: 2,
            loops: vec![
                vec![UnitUse {
                    unit: 0,
                    in_effect_cycles: 1,
                    neurons: vec![vec![NeuronOffset::new(0, 0, 0, 0)]],
                }],
                vec![UnitUse {
                    unit: 1,
                    in_effect_cycles: 1,
                    neurons: vec![vec![NeuronOffset::new(0, 0, 0, 0)]],
                }],
            ],
        };
        let r = reuse_factor_analysis(&inputs).unwrap();
        assert_eq!(r.rf(), 1);
        assert_eq!(r.faulty_neurons[0].loop_index, 0);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let bad = RfaInputs {
            target: "bad".into(),
            ff_value_cycles: 3,
            loops: vec![vec![]],
        };
        assert!(reuse_factor_analysis(&bad).is_err());
    }

    #[test]
    fn local_control_union() {
        let df = NvdlaDataflow {
            lanes: 4,
            weight_hold: 8,
        };
        let a3 = reuse_factor_analysis(&df.example_a3()).unwrap();
        let a4 = reuse_factor_analysis(&df.example_a4()).unwrap();
        // a3's single neuron (0,0,0,0) is also in a4's set → union = 4.
        let combined = local_control_rfa(&[&a3, &a4]);
        assert_eq!(combined.rf(), 4);
    }

    #[test]
    fn datapath_rf_property_4_holds_for_nvdla_examples() {
        // RF of a FF in stage i >= RF in stage k for k > i along the weight
        // flow: a1 (upstream) >= a2 (operand) >= a3 (single-cycle pipe).
        let df = NvdlaDataflow {
            lanes: 16,
            weight_hold: 16,
        };
        let rf_a1 = reuse_factor_analysis(&df.example_a1()).unwrap().rf();
        let rf_a2 = reuse_factor_analysis(&df.example_a2()).unwrap().rf();
        let rf_a3 = reuse_factor_analysis(&df.example_a3()).unwrap().rf();
        assert!(rf_a1 >= rf_a2 && rf_a2 >= rf_a3);
    }
}
