//! The end-to-end FIdelity flow (Fig. 3): activeness analysis → software
//! fault-injection campaign → Accelerator_FIT_rate.

use fidelity_accel::arch::AcceleratorConfig;
use fidelity_accel::ff::FfCategory;
use fidelity_accel::perf::{extract_work, LayerTiming};
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::DnnError;

use crate::activeness::prob_inactive;
use crate::campaign::{run_campaign, CampaignResult, CampaignSpec};
use crate::fit::{accelerator_fit_rate, CategoryTerm, FitBreakdown, LayerTerm};
use crate::outcome::CorrectnessMetric;

/// Everything the flow produces for one (network, precision, metric) triple.
#[derive(Debug, Clone)]
pub struct ResilienceAnalysis {
    /// The FIT breakdown with no protection applied.
    pub fit: FitBreakdown,
    /// The FIT breakdown assuming global-control FFs are protected (Fig. 6).
    pub fit_global_protected: FitBreakdown,
    /// The per-layer Eq.-2 inputs (for reporting and sensitivity reuse).
    pub layer_terms: Vec<LayerTerm>,
    /// The raw campaign.
    pub campaign: CampaignResult,
}

/// Runs the complete FIdelity flow on a deployed engine.
///
/// `raw_fit_per_mb` is the technology-dependent raw FF FIT rate
/// ([`crate::fit::PAPER_RAW_FIT_PER_MB`] reproduces the paper's setting).
///
/// # Errors
///
/// Propagates graph-execution errors.
pub fn analyze(
    engine: &Engine,
    trace: &Trace,
    accel: &AcceleratorConfig,
    metric: &dyn CorrectnessMetric,
    raw_fit_per_mb: f64,
    spec: &CampaignSpec,
) -> Result<ResilienceAnalysis, DnnError> {
    // Step 1+2: campaign over MAC layers and categories.
    let campaign = {
        let _span = fidelity_obs::span!("analysis.campaign");
        run_campaign(engine, trace, accel, metric, spec)?
    };

    // Performance model for exec times and Class-3 activeness.
    let _span = fidelity_obs::span!("analysis.fit");
    let work = extract_work(engine, trace);
    let precision = engine.precision();

    let mut layer_terms = Vec::new();
    for &node in &campaign.nodes() {
        let w = &work[node];
        let timing = LayerTiming::analyze(accel, w);
        let categories = accel
            .census
            .iter()
            .filter_map(|(category, _)| {
                let swmask = campaign.prob_swmask(node, category)?;
                Some(CategoryTerm {
                    category,
                    prob_inactive: prob_inactive(accel, category, &timing, precision),
                    prob_swmask: swmask,
                })
            })
            .collect();
        layer_terms.push(LayerTerm {
            name: w.name.clone(),
            exec_cycles: timing.total_cycles,
            categories,
        });
    }

    // Step 3: Eq. 2.
    let fit = accelerator_fit_rate(accel, raw_fit_per_mb, &layer_terms, &[]);
    let fit_global_protected = accelerator_fit_rate(
        accel,
        raw_fit_per_mb,
        &layer_terms,
        &[FfCategory::GlobalControl],
    );

    Ok(ResilienceAnalysis {
        fit,
        fit_global_protected,
        layer_terms,
        campaign,
    })
}

/// Runs the flow over several input samples and averages the per-cell
/// masking probabilities before Eq. 2 — the paper's campaigns draw inputs
/// from a dataset, not a single image.
///
/// Each sample gets its own trace and campaign (seeded differently);
/// exec-time weights come from the first sample (layer shapes are input-
/// independent for these workloads).
///
/// # Errors
///
/// Propagates graph-execution errors.
///
/// # Panics
///
/// Panics when `samples` is empty.
pub fn analyze_multi(
    engine: &Engine,
    samples: &[Vec<fidelity_dnn::Tensor>],
    accel: &AcceleratorConfig,
    metric: &dyn CorrectnessMetric,
    raw_fit_per_mb: f64,
    spec: &CampaignSpec,
) -> Result<ResilienceAnalysis, DnnError> {
    assert!(!samples.is_empty(), "need at least one input sample");
    let mut per_sample = Vec::with_capacity(samples.len());
    for (i, inputs) in samples.iter().enumerate() {
        let trace = engine.trace(inputs)?;
        let mut sample_spec = spec.clone();
        sample_spec.seed = spec.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
        // Each sample is its own campaign with its own seed, so it also gets
        // its own checkpoint file (`<path>.s<i>`): a resumed multi-sample
        // analysis skips every sample campaign that already finished.
        if let Some(ckpt) = sample_spec.resilience.checkpoint.as_mut() {
            let mut path = ckpt.path.clone().into_os_string();
            path.push(format!(".s{i}"));
            ckpt.path = path.into();
        }
        per_sample.push(analyze(
            engine,
            &trace,
            accel,
            metric,
            raw_fit_per_mb,
            &sample_spec,
        )?);
    }

    // Average the per-(layer, category) masking terms across samples, then
    // recompute Eq. 2 once.
    let mut layer_terms = per_sample[0].layer_terms.clone();
    for terms in &mut layer_terms {
        for cat in &mut terms.categories {
            let mut mask = 0.0;
            let mut inactive = 0.0;
            for s in &per_sample {
                let t = s
                    .layer_terms
                    .iter()
                    .find(|t| t.name == terms.name)
                    // Per-sample analyses all come from the same deployed
                    // network, so the lookup cannot fail.
                    // statcheck:allow(panic-path)
                    .expect("same network across samples");
                let c = t
                    .categories
                    .iter()
                    .find(|c| c.category == cat.category)
                    // Same accelerator census for every sample, see above.
                    // statcheck:allow(panic-path)
                    .expect("same census across samples");
                mask += c.prob_swmask;
                inactive += c.prob_inactive;
            }
            cat.prob_swmask = mask / per_sample.len() as f64;
            cat.prob_inactive = inactive / per_sample.len() as f64;
        }
    }
    let fit = accelerator_fit_rate(accel, raw_fit_per_mb, &layer_terms, &[]);
    let fit_global_protected = accelerator_fit_rate(
        accel,
        raw_fit_per_mb,
        &layer_terms,
        &[FfCategory::GlobalControl],
    );
    // Concatenate the campaigns for inspection. The divergence metric is a
    // property of (kernel, workload), so the concatenation reports the worst
    // case over all input samples.
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    let mut fast_divergence = None;
    for s in per_sample {
        cells.extend(s.campaign.cells);
        failures.extend(s.campaign.failures);
        if let Some(d) = s.campaign.fast_divergence {
            let worst: f32 = fast_divergence.unwrap_or(0.0);
            fast_divergence = Some(worst.max(d));
        }
    }
    let campaign = CampaignResult {
        cells,
        failures,
        fast_divergence,
        // Per-sample certificates do not concatenate (each certifies its own
        // plan fingerprint); adaptive multi-sample runs re-verify per sample.
        certificate: None,
    };
    Ok(ResilienceAnalysis {
        fit,
        fit_global_protected,
        layer_terms,
        campaign,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::MacTier;
    use crate::fit::PAPER_RAW_FIT_PER_MB;
    use crate::outcome::TopOneMatch;
    use fidelity_accel::presets;
    use fidelity_dnn::graph::NetworkBuilder;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::layers::{Conv2d, Dense, Flatten, GlobalAvgPool};
    use fidelity_dnn::precision::Precision;

    fn tiny() -> (Engine, Trace) {
        let net = NetworkBuilder::new("t")
            .input("x")
            .layer(
                Conv2d::new("conv", uniform_tensor(1, vec![4, 2, 3, 3], 0.5))
                    .unwrap()
                    .with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .layer(GlobalAvgPool::new("gap"), &["conv"])
            .unwrap()
            .layer(Flatten::new("flat"), &["gap"])
            .unwrap()
            .layer(
                Dense::new("fc", uniform_tensor(2, vec![3, 4], 0.5)).unwrap(),
                &["flat"],
            )
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let trace = engine
            .trace(&[uniform_tensor(3, vec![1, 2, 6, 6], 1.0)])
            .unwrap();
        (engine, trace)
    }

    #[test]
    fn multi_sample_averages_masking() {
        let (engine, _) = tiny();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 20,
            seed: 9,
            threads: 2,
            record_events: false,
            target_ci_halfwidth: None,
            resilience: Default::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let samples: Vec<Vec<fidelity_dnn::Tensor>> = (0..3)
            .map(|i| vec![uniform_tensor(100 + i, vec![1, 2, 6, 6], 1.0)])
            .collect();
        let multi = analyze_multi(
            &engine,
            &samples,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &spec,
        )
        .unwrap();
        assert!(multi.fit.total > 0.0);
        // Campaign concatenates all three samples' cells.
        assert_eq!(multi.campaign.cells.len(), 3 * 2 * 7);
        // The averaged FIT lies within the span of per-sample FITs.
        let mut per_sample = Vec::new();
        for (i, inputs) in samples.iter().enumerate() {
            let trace = engine.trace(inputs).unwrap();
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
            per_sample.push(
                analyze(
                    &engine,
                    &trace,
                    &cfg,
                    &TopOneMatch,
                    PAPER_RAW_FIT_PER_MB,
                    &s,
                )
                .unwrap()
                .fit
                .total,
            );
        }
        let lo = per_sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_sample.iter().cloned().fold(0.0f64, f64::max);
        assert!(multi.fit.total >= lo - 1e-9 && multi.fit.total <= hi + 1e-9);
    }

    #[test]
    fn full_flow_produces_consistent_breakdown() {
        let (engine, trace) = tiny();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 25,
            seed: 5,
            threads: 2,
            record_events: false,
            target_ci_halfwidth: None,
            resilience: Default::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let analysis = analyze(
            &engine,
            &trace,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &spec,
        )
        .unwrap();
        let fit = &analysis.fit;
        assert!(fit.total > 0.0);
        assert!((fit.datapath + fit.local + fit.global - fit.total).abs() < 1e-9);
        // Global-control FFs never mask in the model, so they dominate or at
        // least contribute substantially.
        assert!(fit.global > 0.0);
        // Fig. 6 scenario removes exactly the global part.
        assert!((analysis.fit_global_protected.total - (fit.total - fit.global)).abs() < 1e-9);
        // Layer terms cover both MAC layers.
        assert_eq!(analysis.layer_terms.len(), 2);
    }
}
