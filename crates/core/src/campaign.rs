//! Statistical fault-injection campaigns (Fig. 3, step 2).
//!
//! A campaign runs a configured number of software injections for every
//! (MAC layer × FF category) cell of a deployed network and tallies the
//! outcome distribution, yielding the `Prob_SWmask(cat, r)` inputs of Eq. 2.
//! Cells are independent, so they are distributed over worker threads; each
//! cell owns a deterministic RNG stream, making campaigns bit-reproducible
//! regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fidelity_accel::arch::AcceleratorConfig;
use fidelity_accel::ff::FfCategory;
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::DnnError;

use crate::inject::inject_once;
use crate::models::{model_for, SoftwareFaultModel};
use crate::outcome::{CorrectnessMetric, Outcome};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Injection samples per (layer × category) cell (the maximum, when
    /// adaptive sampling is enabled).
    pub samples_per_cell: usize,
    /// Base RNG seed; campaigns are deterministic in (seed, spec).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Whether to keep per-injection events (needed for the Key-Result-5
    /// perturbation analysis; costs memory).
    pub record_events: bool,
    /// Adaptive sampling: stop a cell early once the 95% Wilson interval of
    /// its masking probability is narrower than this half-width (the paper
    /// sizes campaigns for a 95% confidence target). `None` always runs
    /// `samples_per_cell`.
    pub target_ci_halfwidth: Option<f64>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            samples_per_cell: 200,
            seed: 0xF1DE_117F,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            record_events: false,
            target_ci_halfwidth: None,
        }
    }
}

/// One recorded injection (when `record_events` is set).
#[derive(Debug, Clone, Copy)]
pub struct InjectionEvent {
    /// Number of faulty neurons at the corrupted layer.
    pub faulty_neurons: usize,
    /// Largest layer-level perturbation.
    pub max_perturbation: f32,
    /// Outcome class.
    pub outcome: Outcome,
}

/// Outcome tally of one (layer × category) cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Target node index.
    pub node: usize,
    /// Target layer name.
    pub layer: String,
    /// FF category.
    pub category: FfCategory,
    /// The software fault model applied.
    pub model: SoftwareFaultModel,
    /// Samples run.
    pub samples: usize,
    /// Masked outcomes.
    pub masked: usize,
    /// Application output errors.
    pub output_error: usize,
    /// System anomalies.
    pub anomaly: usize,
    /// Per-injection events (empty unless requested).
    pub events: Vec<InjectionEvent>,
}

impl CellStats {
    /// `Prob_SWmask` for this cell. Global-control cells are 0 by the
    /// framework's definition.
    pub fn prob_swmask(&self) -> f64 {
        if matches!(self.model, SoftwareFaultModel::GlobalControl) {
            return 0.0;
        }
        if self.samples == 0 {
            return 0.0;
        }
        self.masked as f64 / self.samples as f64
    }
}

/// All cells of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-cell statistics, ordered by (node, census order).
    pub cells: Vec<CellStats>,
}

impl CampaignResult {
    /// Total injections run.
    pub fn total_samples(&self) -> usize {
        self.cells.iter().map(|c| c.samples).sum()
    }

    /// `Prob_SWmask(cat, r)` for a given node, when the cell exists.
    pub fn prob_swmask(&self, node: usize, category: FfCategory) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.node == node && c.category == category)
            .map(CellStats::prob_swmask)
    }

    /// Target node indices covered by the campaign.
    pub fn nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.cells.iter().map(|c| c.node).collect();
        v.dedup();
        v
    }
}

/// 95% Wilson score interval for a binomial proportion — the paper sizes its
/// campaigns for a 95% confidence interval.
pub fn wilson_interval(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_964f64;
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let centre = p + z2 / (2.0 * nf);
    let margin = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// Runs a campaign over every MAC layer of the deployed engine and every FF
/// category of the accelerator's census.
///
/// # Errors
///
/// Propagates injection errors (which indicate a bug in target selection,
/// not a fault outcome).
pub fn run_campaign(
    engine: &Engine,
    trace: &Trace,
    accel: &AcceleratorConfig,
    metric: &dyn CorrectnessMetric,
    spec: &CampaignSpec,
) -> Result<CampaignResult, DnnError> {
    let mac_nodes: Vec<usize> = (0..engine.network().node_count())
        .filter(|&i| engine.mac_spec(i, trace).is_some())
        .collect();

    // Build the cell list up front (deterministic order).
    struct CellPlan {
        node: usize,
        category: FfCategory,
        model: SoftwareFaultModel,
    }
    let mut plans = Vec::new();
    for &node in &mac_nodes {
        for (category, _) in accel.census.iter() {
            if let Some(model) = model_for(category, accel) {
                plans.push(CellPlan {
                    node,
                    category,
                    model,
                });
            }
        }
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<CellStats>>> = Mutex::new(vec![None; plans.len()]);
    let errors: Mutex<Vec<DnnError>> = Mutex::new(Vec::new());

    let workers = spec.threads.clamp(1, plans.len().max(1));
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= plans.len() {
                    break;
                }
                let plan = &plans[idx];
                match run_cell(engine, trace, metric, spec, plan.node, plan.category, plan.model)
                {
                    Ok(stats) => results.lock().expect("no poisoned lock")[idx] = Some(stats),
                    Err(e) => errors.lock().expect("no poisoned lock").push(e),
                }
            });
        }
    })
    .expect("campaign worker panicked");

    if let Some(e) = errors.into_inner().expect("no poisoned lock").pop() {
        return Err(e);
    }
    let cells = results
        .into_inner()
        .expect("no poisoned lock")
        .into_iter()
        .map(|c| c.expect("every planned cell ran"))
        .collect();
    Ok(CampaignResult { cells })
}

fn run_cell(
    engine: &Engine,
    trace: &Trace,
    metric: &dyn CorrectnessMetric,
    spec: &CampaignSpec,
    node: usize,
    category: FfCategory,
    model: SoftwareFaultModel,
) -> Result<CellStats, DnnError> {
    let mut stats = CellStats {
        node,
        layer: engine.network().layer(node).name().to_owned(),
        category,
        model,
        samples: 0,
        masked: 0,
        output_error: 0,
        anomaly: 0,
        events: Vec::new(),
    };
    // Global control needs no simulation: Prob_SWmask is 0 by definition.
    if matches!(model, SoftwareFaultModel::GlobalControl) {
        stats.samples = spec.samples_per_cell;
        stats.anomaly = spec.samples_per_cell;
        return Ok(stats);
    }
    let mut rng = SplitMix64::new(
        spec.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ cat_tag(category),
    );
    // Adaptive stopping checks the CI every `batch` samples, with a minimum
    // sample floor so a lucky streak cannot end a cell after a handful of
    // injections.
    const ADAPTIVE_BATCH: usize = 50;
    const ADAPTIVE_FLOOR: usize = 100;
    for i in 0..spec.samples_per_cell {
        if let Some(target) = spec.target_ci_halfwidth {
            if i >= ADAPTIVE_FLOOR && i % ADAPTIVE_BATCH == 0 {
                let (lo, hi) = wilson_interval(stats.masked, stats.samples);
                if (hi - lo) / 2.0 <= target {
                    break;
                }
            }
        }
        let inj = inject_once(engine, trace, node, model, metric, &mut rng)?;
        stats.samples += 1;
        match inj.outcome {
            Outcome::Masked => stats.masked += 1,
            Outcome::OutputError => stats.output_error += 1,
            Outcome::SystemAnomaly => stats.anomaly += 1,
        }
        if spec.record_events {
            stats.events.push(InjectionEvent {
                faulty_neurons: inj.faulty_neurons,
                max_perturbation: inj.max_perturbation,
                outcome: inj.outcome,
            });
        }
    }
    Ok(stats)
}

fn cat_tag(category: FfCategory) -> u64 {
    use fidelity_accel::ff::{PipelineStage, VarType};
    match category {
        FfCategory::Datapath { stage, var } => {
            let s = match stage {
                PipelineStage::BeforeBuffer => 1u64,
                PipelineStage::BufferToMac => 2,
                PipelineStage::AfterMac => 3,
            };
            let v = match var {
                VarType::Input => 1u64,
                VarType::Weight => 2,
                VarType::Bias => 3,
                VarType::PartialSum => 4,
                VarType::Output => 5,
            };
            s * 31 + v
        }
        FfCategory::LocalControl => 1009,
        FfCategory::GlobalControl => 2003,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::TopOneMatch;
    use fidelity_accel::presets;
    use fidelity_dnn::graph::NetworkBuilder;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::layers::{Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool};
    use fidelity_dnn::precision::Precision;

    fn tiny_engine() -> (Engine, Trace) {
        let net = NetworkBuilder::new("clf")
            .input("x")
            .layer(
                Conv2d::new("conv", uniform_tensor(1, vec![4, 2, 3, 3], 0.6))
                    .unwrap()
                    .with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
            .unwrap()
            .layer(GlobalAvgPool::new("gap"), &["relu"])
            .unwrap()
            .layer(Flatten::new("flat"), &["gap"])
            .unwrap()
            .layer(
                Dense::new("fc", uniform_tensor(2, vec![5, 4], 0.6)).unwrap(),
                &["flat"],
            )
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let x = uniform_tensor(3, vec![1, 2, 6, 6], 1.0);
        let trace = engine.trace(&[x]).unwrap();
        (engine, trace)
    }

    #[test]
    fn campaign_covers_all_cells() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 20,
            seed: 7,
            threads: 4,
            record_events: false,
            target_ci_halfwidth: None,
        };
        let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        // 2 MAC layers × 7 categories.
        assert_eq!(result.cells.len(), 14);
        assert_eq!(result.total_samples(), 14 * 20);
        for cell in &result.cells {
            assert_eq!(cell.masked + cell.output_error + cell.anomaly, cell.samples);
        }
    }

    #[test]
    fn campaign_is_reproducible_across_thread_counts() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let run = |threads: usize| {
            let spec = CampaignSpec {
                samples_per_cell: 30,
                seed: 99,
                threads,
                record_events: false,
                target_ci_halfwidth: None,
            };
            run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec)
                .unwrap()
                .cells
                .iter()
                .map(|c| (c.node, c.masked, c.output_error, c.anomaly))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn global_cells_never_mask() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 5,
            seed: 1,
            threads: 2,
            record_events: false,
            target_ci_halfwidth: None,
        };
        let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        for cell in result
            .cells
            .iter()
            .filter(|c| c.category == FfCategory::GlobalControl)
        {
            assert_eq!(cell.prob_swmask(), 0.0);
            assert_eq!(cell.anomaly, cell.samples);
        }
    }

    #[test]
    fn adaptive_sampling_stops_early_on_tight_ci() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let fixed = CampaignSpec {
            samples_per_cell: 2000,
            seed: 21,
            threads: 2,
            record_events: false,
            target_ci_halfwidth: None,
        };
        let adaptive = CampaignSpec {
            target_ci_halfwidth: Some(0.08),
            ..fixed.clone()
        };
        let full = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &fixed).unwrap();
        let early = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &adaptive).unwrap();
        assert!(
            early.total_samples() < full.total_samples(),
            "adaptive should save samples: {} vs {}",
            early.total_samples(),
            full.total_samples()
        );
        // And the estimates agree within the combined CI slack.
        for (a, b) in early.cells.iter().zip(&full.cells) {
            assert_eq!(a.category, b.category);
            assert!(
                (a.prob_swmask() - b.prob_swmask()).abs() < 0.2,
                "{}: {} vs {}",
                a.category,
                a.prob_swmask(),
                b.prob_swmask()
            );
        }
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo > 0.38 && lo < 0.5);
        assert!(hi > 0.5 && hi < 0.62);
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo0, _) = wilson_interval(0, 10);
        assert!(lo0.abs() < 1e-12);
        let (_, hi1) = wilson_interval(10, 10);
        assert!((hi1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_recorded_when_requested() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 10,
            seed: 3,
            threads: 1,
            record_events: true,
            target_ci_halfwidth: None,
        };
        let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        let non_global: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.category != FfCategory::GlobalControl)
            .collect();
        assert!(non_global.iter().all(|c| c.events.len() == c.samples));
    }
}
