//! Statistical fault-injection campaigns (Fig. 3, step 2).
//!
//! A campaign runs a configured number of software injections for every
//! (MAC layer × FF category) cell of a deployed network and tallies the
//! outcome distribution, yielding the `Prob_SWmask(cat, r)` inputs of Eq. 2.
//! Cells are independent, so they are sharded across the `fidelity-par`
//! work-stealing pool ([`ParallelCampaignRunner`]); each cell derives its
//! own RNG stream from `(campaign seed, cell id)`, never from shared state,
//! making campaigns bit-reproducible regardless of worker count or steal
//! order. Checkpoint records go through an ordered commit buffer, so the
//! on-disk file is always the same deterministic prefix a serial run would
//! have written.
//!
//! Long campaigns run under the fault-tolerance policy of
//! [`crate::resilience`]: cells execute inside a panic boundary with bounded
//! retries, each injection can carry a wall-clock watchdog, and completed
//! cells can be checkpointed to disk so an interrupted campaign resumes
//! exactly where it stopped ([`CampaignRunner::resume_from`]).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use fidelity_accel::arch::AcceleratorConfig;
use fidelity_accel::ff::FfCategory;
use fidelity_dnn::graph::{golden_key, Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::workspace::Workspace;
use fidelity_dnn::DnnError;
use fidelity_obs::event;
use fidelity_obs::metrics::{Counter, Histogram};
use fidelity_obs::progress::{CampaignProgress, CategoryKind, OutcomeKind, ProgressSpec};
use fidelity_obs::trace::{self, Field, Value};
use fidelity_obs::{clock, prof, timing_enabled};
use fidelity_par::{CancelToken, PoolSpec, ShardPlan, WorkStealPool};

pub use fidelity_dnn::macspec::MacTier;

use crate::adaptive::{
    allocate_even, allocate_neyman, build_certificate, parse_adaptive_checkpoint, stratum_terms,
    stratum_weights, write_adaptive_header, write_cert_footer, write_wave, AdaptivePlan,
    CertFooter, ConfidenceCertificate, StratumMeta, StratumRow, StratumTally, WaveBlock, WaveFail,
    WAVE_FLOOR, WAVE_MIN_BUDGET,
};
use crate::inject::inject_once_pooled;
use crate::models::{model_for, node_fast_divergence, SoftwareFaultModel};
use crate::outcome::{CorrectnessMetric, Outcome};
use crate::resilience::{
    campaign_fingerprint, cat_code, parse_checkpoint, write_cell, write_header, CellFailure,
    ChaosMode, ChaosSpec, FailureReason, ResilienceSpec,
};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Injection samples per (layer × category) cell (the maximum, when
    /// adaptive sampling is enabled).
    pub samples_per_cell: usize,
    /// Base RNG seed; campaigns are deterministic in (seed, spec).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Whether to keep per-injection events (needed for the Key-Result-5
    /// perturbation analysis; costs memory).
    pub record_events: bool,
    /// Adaptive sampling: stop a cell early once the 95% Wilson interval of
    /// its masking probability is narrower than this half-width (the paper
    /// sizes campaigns for a 95% confidence target). `None` always runs
    /// `samples_per_cell`.
    pub target_ci_halfwidth: Option<f64>,
    /// Fault-tolerance policy: panic isolation, watchdogs, checkpointing.
    pub resilience: ResilienceSpec,
    /// Live progress telemetry to stderr (`--progress`). `None` keeps the
    /// campaign silent. Excluded from the checkpoint fingerprint: reporting
    /// never changes the statistics.
    pub progress: Option<ProgressSpec>,
    /// Batched fault-cone evaluation (`--batch`). When `> 0`, each worker
    /// installs a shared read-only golden snapshot of the trace in its
    /// workspace and every injection is evaluated as a sparse delta over its
    /// downstream cone ([`Engine::resume_delta`]); the snapshot is
    /// re-ensured every `batch` samples so a panic that lost the overlay
    /// falls back to at most `batch - 1` dense resumes. `0` disables
    /// batching. Pure scheduling/evaluation policy: per-cell RNG streams and
    /// every produced value are bit-identical either way, so the field is
    /// excluded from the checkpoint fingerprint.
    pub batch: usize,
    /// MAC kernel tier for injected forwards (`--mac-tier`).
    /// [`MacTier::Bitwise`] (the default) is byte-identical to the scalar
    /// oracle; [`MacTier::Fast`] may change low-order bits on Dense/MatMul
    /// layers, so the tier is part of the campaign identity and is included
    /// in the checkpoint fingerprint. Under `Fast` the campaign also
    /// measures the worst-case kernel divergence once per MAC layer and
    /// reports it in [`CampaignResult::fast_divergence`].
    pub mac_tier: MacTier,
    /// Confidence-driven adaptive campaign plan (`--adaptive`). When set,
    /// the fixed `samples_per_cell` is replaced by wave-based sequential
    /// sampling that terminates once the total Eq.-2 FIT uncertainty is
    /// below the plan's ±ε (see [`crate::adaptive`]); the plan's parameters
    /// are campaign identity and enter the checkpoint fingerprint. Mutually
    /// exclusive with `record_events` and `target_ci_halfwidth`.
    pub adaptive: Option<AdaptivePlan>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            samples_per_cell: 200,
            seed: 0xF1DE_117F,
            threads: std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
            record_events: false,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        }
    }
}

/// One recorded injection (when `record_events` is set).
#[derive(Debug, Clone, Copy)]
pub struct InjectionEvent {
    /// Number of faulty neurons at the corrupted layer.
    pub faulty_neurons: usize,
    /// Largest layer-level perturbation.
    pub max_perturbation: f32,
    /// Outcome class.
    pub outcome: Outcome,
}

/// Outcome tally of one (layer × category) cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Target node index.
    pub node: usize,
    /// Target layer name.
    pub layer: String,
    /// FF category.
    pub category: FfCategory,
    /// The software fault model applied.
    pub model: SoftwareFaultModel,
    /// Samples run.
    pub samples: usize,
    /// Masked outcomes.
    pub masked: usize,
    /// Application output errors.
    pub output_error: usize,
    /// System anomalies.
    pub anomaly: usize,
    /// Per-injection events (empty unless requested).
    pub events: Vec<InjectionEvent>,
}

impl CellStats {
    /// `Prob_SWmask` for this cell. Global-control cells are 0 by the
    /// framework's definition.
    pub fn prob_swmask(&self) -> f64 {
        if matches!(self.model, SoftwareFaultModel::GlobalControl) {
            return 0.0;
        }
        if self.samples == 0 {
            return 0.0;
        }
        self.masked as f64 / self.samples as f64
    }
}

/// All cells of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-cell statistics, ordered by (node, census order). Cells listed in
    /// [`CampaignResult::failures`] carry the partial statistics of their
    /// last attempt (possibly zero samples).
    pub cells: Vec<CellStats>,
    /// Cells that exhausted their retries and degraded to partial
    /// statistics. Empty for a healthy campaign.
    pub failures: Vec<CellFailure>,
    /// Measured worst-case Fast-tier kernel divergence over every MAC layer
    /// of the campaign (max |bitwise − fast| per element; `+∞` marks a NaN
    /// mismatch). `Some(0.0)` means the Fast tier was byte-identical on this
    /// workload. `None` when the campaign ran the Bitwise tier, where
    /// divergence is zero by construction.
    pub fast_divergence: Option<f32>,
    /// The machine-checkable confidence certificate of an adaptive campaign
    /// (per-stratum n, p̂, CI half-width, FIT contribution ± bound, total ε
    /// achieved). `None` for fixed-count campaigns.
    pub certificate: Option<ConfidenceCertificate>,
}

impl CampaignResult {
    /// Total injections run.
    pub fn total_samples(&self) -> usize {
        self.cells.iter().map(|c| c.samples).sum()
    }

    /// `Prob_SWmask(cat, r)` for a given node, when the cell exists.
    pub fn prob_swmask(&self, node: usize, category: FfCategory) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.node == node && c.category == category)
            .map(CellStats::prob_swmask)
    }

    /// Target node indices covered by the campaign.
    pub fn nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.cells.iter().map(|c| c.node).collect();
        v.dedup();
        v
    }
}

/// 95% Wilson score interval for a binomial proportion — the paper sizes its
/// campaigns for a 95% confidence interval.
///
/// Delegates to [`fidelity_obs::stats::wilson95`], the workspace's canonical
/// implementation (the live progress line uses the same one, so displayed
/// bounds always agree with adaptive-stopping decisions).
pub fn wilson_interval(successes: usize, n: usize) -> (f64, f64) {
    fidelity_obs::stats::wilson95(successes, n)
}

/// Runs a campaign over every MAC layer of the deployed engine and every FF
/// category of the accelerator's census, honoring `spec.resilience`.
///
/// Convenience wrapper around [`CampaignRunner::run`].
///
/// # Errors
///
/// Returns [`DnnError::Campaign`] when the failure budget is exhausted or
/// the checkpoint is unusable.
pub fn run_campaign(
    engine: &Engine,
    trace: &Trace,
    accel: &AcceleratorConfig,
    metric: &dyn CorrectnessMetric,
    spec: &CampaignSpec,
) -> Result<CampaignResult, DnnError> {
    CampaignRunner::new(engine, trace, accel, metric, spec.clone()).run()
}

/// One planned (node, category) cell.
struct CellPlan {
    node: usize,
    category: FfCategory,
    model: SoftwareFaultModel,
}

/// Applies a chaos directive to sample `i` of a cell, shared by the fixed
/// and adaptive sampling loops.
fn apply_chaos(chaos: Option<&ChaosSpec>, i: usize, node: usize, category: FfCategory) {
    if let Some(c) = chaos {
        match c.mode {
            ChaosMode::PanicAtSample(k) if i == k => {
                // Deliberate: exercises the panic-isolation path.
                // statcheck:allow(panic-path)
                panic!("chaos: deliberate panic at sample {i} of cell (node {node}, {category})");
            }
            ChaosMode::PanicAtSample(_) => {}
            ChaosMode::DelayPerInjection(d) => std::thread::sleep(d),
        }
    }
}

/// The open checkpoint file behind an ordered commit buffer.
///
/// Workers complete cells out of order, but the file must stay a
/// deterministic prefix of what a serial run writes — otherwise the bytes
/// (and any resumed campaign's view of them) would depend on scheduling.
/// Completed cells therefore park in `pending` until every lower-indexed
/// cell has been committed or skipped; the cursor then drains them to disk
/// in plan order. Failed cells commit as a skip: the cursor advances without
/// writing a record, so a resumed campaign retries them.
struct OrderedCommit {
    writer: BufWriter<File>,
    /// Flush every N written records.
    interval: usize,
    unflushed: usize,
    /// Lowest plan index not yet committed or skipped.
    cursor: usize,
    /// Out-of-order completions waiting for the cursor. `None` marks a skip
    /// (failed cell, or a cell already rewritten at open from the resume
    /// checkpoint).
    pending: BTreeMap<usize, Option<CellStats>>,
}

/// What one [`OrderedCommit::commit`] call put on disk.
struct CommitReceipt {
    /// Plan indices whose records were written by this call, in order.
    written: Vec<usize>,
    /// Whether the flush interval elapsed and the file was flushed.
    flushed: bool,
}

impl OrderedCommit {
    /// Parks one completed (`Some`) or failed (`None`) cell and drains every
    /// now-contiguous entry to disk in plan-index order.
    fn commit(&mut self, idx: usize, entry: Option<CellStats>) -> Result<CommitReceipt, DnnError> {
        let io_err = |e: std::io::Error| DnnError::Campaign {
            message: format!("checkpoint write failed: {e}"),
        };
        self.pending.insert(idx, entry);
        let mut written = Vec::new();
        while let Some(slot) = self.pending.remove(&self.cursor) {
            if let Some(stats) = slot {
                write_cell(&mut self.writer, self.cursor, &stats).map_err(io_err)?;
                written.push(self.cursor);
                self.unflushed += 1;
            }
            self.cursor += 1;
        }
        let mut flushed = false;
        if self.unflushed >= self.interval {
            self.writer.flush().map_err(io_err)?;
            self.unflushed = 0;
            flushed = true;
        }
        Ok(CommitReceipt { written, flushed })
    }
}

/// Cached handles into the global metrics registry — resolved once per
/// campaign so the hot path pays one relaxed `fetch_add` per increment, not
/// a registry lock.
struct CampaignMetrics {
    injections: Arc<Counter>,
    cells_done: Arc<Counter>,
    retries: Arc<Counter>,
    watchdog: Arc<Counter>,
    /// Per-injection latency (recorded only while timing is enabled).
    injection_ns: Arc<Histogram>,
}

impl CampaignMetrics {
    fn handles() -> Self {
        CampaignMetrics {
            injections: fidelity_obs::metrics::counter("campaign.injections"),
            cells_done: fidelity_obs::metrics::counter("campaign.cells_done"),
            retries: fidelity_obs::metrics::counter("campaign.cell_retries"),
            watchdog: fidelity_obs::metrics::counter("campaign.watchdog_fires"),
            injection_ns: fidelity_obs::metrics::histogram("campaign.injection_ns"),
        }
    }
}

/// Maps the accelerator's FF category onto the coarse kind the
/// dependency-free progress reporter tallies.
fn category_kind(cat: FfCategory) -> CategoryKind {
    match cat {
        FfCategory::Datapath { .. } => CategoryKind::Datapath,
        FfCategory::LocalControl => CategoryKind::LocalControl,
        FfCategory::GlobalControl => CategoryKind::GlobalControl,
    }
}

fn outcome_kind(outcome: Outcome) -> OutcomeKind {
    match outcome {
        Outcome::Masked => OutcomeKind::Masked,
        Outcome::OutputError => OutcomeKind::OutputError,
        Outcome::SystemAnomaly => OutcomeKind::Anomaly,
    }
}

/// A campaign bound to its engine, workload trace, accelerator, and spec —
/// the stateful entry point when checkpoint/resume or failure reporting is
/// needed ([`run_campaign`] remains the one-shot convenience).
pub struct CampaignRunner<'a> {
    engine: &'a Engine,
    trace: &'a Trace,
    accel: &'a AcceleratorConfig,
    metric: &'a dyn CorrectnessMetric,
    spec: CampaignSpec,
}

impl std::fmt::Debug for CampaignRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CampaignRunner(net={}, samples_per_cell={})",
            self.engine.network().name(),
            self.spec.samples_per_cell
        )
    }
}

impl<'a> CampaignRunner<'a> {
    /// Binds a campaign to its inputs.
    pub fn new(
        engine: &'a Engine,
        trace: &'a Trace,
        accel: &'a AcceleratorConfig,
        metric: &'a dyn CorrectnessMetric,
        spec: CampaignSpec,
    ) -> Self {
        CampaignRunner {
            engine,
            trace,
            accel,
            metric,
            spec,
        }
    }

    /// The bound spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Runs the campaign. When the spec's checkpoint has `resume` set and a
    /// compatible checkpoint exists, completed cells are loaded from it.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::Campaign`] when the failure budget is exhausted
    /// or the checkpoint is unusable.
    pub fn run(&self) -> Result<CampaignResult, DnnError> {
        let _prof = prof::scope("campaign.run");
        let resume = self
            .spec
            .resilience
            .checkpoint
            .as_ref()
            .filter(|c| c.resume)
            .map(|c| c.path.clone());
        self.execute(resume.as_deref(), self.spec.threads)
    }

    /// Runs the campaign, first loading every completed cell from the
    /// checkpoint at `path` (which must have been written by a campaign with
    /// the same fingerprint: same network, seed, sampling plan). Cells are
    /// deterministic in (seed, node, category), so the combined result is
    /// bit-identical to an uninterrupted run. A missing file simply runs the
    /// whole campaign; progress keeps being checkpointed to the spec's
    /// configured path, or to `path` when none is configured.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::Campaign`] on a fingerprint mismatch or corrupt
    /// checkpoint, and for an exhausted failure budget as in
    /// [`CampaignRunner::run`].
    pub fn resume_from(&self, path: &Path) -> Result<CampaignResult, DnnError> {
        self.execute(Some(path), self.spec.threads)
    }

    fn plans(&self) -> Vec<CellPlan> {
        let mac_nodes: Vec<usize> = (0..self.engine.network().node_count())
            .filter(|&i| self.engine.mac_spec(i, self.trace).is_some())
            .collect();
        let mut plans = Vec::new();
        for &node in &mac_nodes {
            for (category, _) in self.accel.census.iter() {
                if let Some(model) = model_for(category, self.accel) {
                    plans.push(CellPlan {
                        node,
                        category,
                        model,
                    });
                }
            }
        }
        plans
    }

    fn execute(&self, resume_path: Option<&Path>, jobs: usize) -> Result<CampaignResult, DnnError> {
        if self.spec.adaptive.is_some() {
            return self.execute_adaptive(resume_path, jobs);
        }
        let spec = &self.spec;
        let plans = self.plans();
        let plan_ids: Vec<(usize, FfCategory)> =
            plans.iter().map(|p| (p.node, p.category)).collect();
        let fingerprint = campaign_fingerprint(spec, self.engine.network().name(), &plan_ids);

        // Load previously completed cells, when resuming.
        let mut loaded: Vec<Option<CellStats>> = (0..plans.len()).map(|_| None).collect();
        if let Some(path) = resume_path {
            if path.exists() {
                let file = File::open(path).map_err(|e| DnnError::Campaign {
                    message: format!("cannot open checkpoint {}: {e}", path.display()),
                })?;
                let parsed = parse_checkpoint(BufReader::new(file))?;
                if parsed.fingerprint != fingerprint {
                    return Err(DnnError::Campaign {
                        message: format!(
                            "checkpoint {} belongs to a different campaign \
                             (fingerprint {:016x}, expected {:016x})",
                            path.display(),
                            parsed.fingerprint,
                            fingerprint
                        ),
                    });
                }
                for (idx, stats) in parsed.cells {
                    let plan = plans.get(idx).ok_or_else(|| DnnError::Campaign {
                        message: format!("checkpoint cell index {idx} out of range"),
                    })?;
                    if stats.node != plan.node || stats.category != plan.category {
                        return Err(DnnError::Campaign {
                            message: format!(
                                "checkpoint cell {idx} does not match the plan \
                                 (node {}, {})",
                                plan.node, plan.category
                            ),
                        });
                    }
                    loaded[idx] = Some(stats);
                }
            }
        }

        // Telemetry: the campaign lifecycle is traced, counted, and (when
        // asked for) rendered live. All of it is a no-op without a sink or
        // `spec.progress`.
        let campaign_sw = clock::Stopwatch::start_if(timing_enabled());
        let metrics = CampaignMetrics::handles();
        let net = self.engine.network().name().to_owned();
        let restored = loaded.iter().filter(|c| c.is_some()).count();
        let workers = jobs.clamp(1, plans.len().max(1));
        event!(
            "campaign.start",
            net = &net,
            cells = plans.len(),
            samples_per_cell = spec.samples_per_cell,
            seed = spec.seed,
            threads = workers,
        );
        let progress = spec.progress.as_ref().map(|p| {
            CampaignProgress::new(
                net.clone(),
                p,
                plans.len(),
                spec.samples_per_cell,
                spec.resilience.failure_budget,
            )
        });
        // Per-job trace outlet: when a service attached a sink to the
        // progress spec (the daemon's per-job trace file), lifecycle events
        // are mirrored there in addition to the global trace sink. The sink
        // stamps its own identity fields (trace id, job id, pid).
        let job_sink = spec.progress.as_ref().and_then(|p| p.sink.clone());
        let mirror = |name: &str, fields: &[Field<'_>]| {
            if let Some(h) = &job_sink {
                trace::record_now(h.sink(), name, fields);
            }
        };
        mirror(
            "campaign.start",
            &[
                ("net", Value::Str(&net)),
                ("cells", Value::U64(plans.len() as u64)),
                ("threads", Value::U64(workers as u64)),
            ],
        );
        if restored > 0 {
            // A resumed campaign announces where it picks up instead of
            // silently restarting the display from zero.
            event!(
                "campaign.resume",
                net = &net,
                restored = restored,
                remaining = plans.len() - restored,
            );
            if let Some(p) = &progress {
                p.set_restored(restored);
            }
            mirror(
                "campaign.resume",
                &[
                    ("restored", Value::U64(restored as u64)),
                    ("remaining", Value::U64((plans.len() - restored) as u64)),
                ],
            );
        }

        // Open the checkpoint for writing: the configured path, else the
        // explicit resume path. The file is rewritten from the loaded cells
        // so a torn tail from the previous process does not linger.
        let ckpt_path = spec
            .resilience
            .checkpoint
            .as_ref()
            .map(|c| c.path.as_path())
            .or(resume_path);
        let interval = spec
            .resilience
            .checkpoint
            .as_ref()
            .map_or(1, |c| c.interval_cells.max(1));
        let ckpt: Option<Mutex<OrderedCommit>> = match ckpt_path {
            Some(path) => Some(Mutex::new(open_checkpoint(
                path,
                fingerprint,
                interval,
                &loaded,
            )?)),
            None => None,
        };

        let abort = AtomicBool::new(false);
        let failure_count = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<CellStats>>> = Mutex::new(loaded);
        let failures: Mutex<Vec<(usize, CellFailure)>> = Mutex::new(Vec::new());
        let errors: Mutex<Vec<DnnError>> = Mutex::new(Vec::new());
        let fatal = |e: DnnError| {
            lock(&errors).push(e);
            abort.store(true, Ordering::Relaxed);
        };
        // Records a cell's verdict in the ordered commit buffer: `Some` is a
        // completed cell to persist, `None` a failed (or restored) one the
        // cursor must skip. Either way the cursor only moves in plan order,
        // so the checkpoint bytes cannot depend on scheduling.
        let commit = |idx: usize, entry: Option<CellStats>| {
            if let Some(state) = &ckpt {
                match lock(state).commit(idx, entry) {
                    Ok(receipt) => {
                        for &widx in &receipt.written {
                            event!("checkpoint.cell", idx = widx, node = plans[widx].node);
                        }
                        if receipt.flushed {
                            event!("checkpoint.flush", upto = idx);
                        }
                    }
                    Err(e) => fatal(e),
                }
            }
        };

        let max_attempts = spec.resilience.max_retries_per_cell + 1;
        let cancel = spec.resilience.cancel.as_ref();
        let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
        let pool = WorkStealPool::new(PoolSpec {
            workers,
            seed: spec.seed,
            plan: ShardPlan::Balanced,
            cancel: spec.resilience.cancel.clone(),
        });
        // One workspace per worker: injection tensors come from (and return
        // to) the worker's pool, so steady-state cells allocate nothing.
        // Workspaces never influence values, so sharding stays deterministic.
        // The worker index rides along so mirrored cell events attribute
        // work to a worker (the per-worker spans in `report --trace`).
        // Batched mode additionally installs the shared golden snapshot once
        // per worker, so every cell the worker runs takes the delta path.
        pool.run_with(
            plans.len(),
            |worker| {
                let mut ws = Workspace::new();
                ws.set_mac_tier(spec.mac_tier);
                if spec.batch > 0 {
                    ws.install_golden(golden_key(self.trace), &self.trace.node_outputs);
                }
                (worker, ws)
            },
            |state, idx| {
                let (worker, ws) = state;
                let worker = *worker as u64;
                // Advisory early-exit: a stale read runs at most one
                // extra cell; the abort's error state is sequenced by the
                // `errors` lock, not this flag.
                // statcheck:allow(relaxed-flag)
                if abort.load(Ordering::Relaxed) || cancelled() {
                    return;
                }
                if lock(&results)[idx].is_some() {
                    return; // restored from the checkpoint (pre-skipped at open)
                }
                let plan = &plans[idx];
                let cat = cat_code(plan.category);
                // Per-cell, not per-injection: a cell is hundreds of
                // injections, so the guard's cost stays off the hot path.
                let _cell_prof = prof::scope("campaign.run;campaign.cell");
                let cell_sw = clock::Stopwatch::start_if(timing_enabled());
                let mut last: Option<(CellStats, FailureReason)> = None;
                let mut completed = None;
                for attempt in 0..max_attempts {
                    // Each attempt restarts the cell's RNG stream, so a
                    // successful retry is bit-identical to a clean run.
                    let mut stats = self.fresh_cell(plan);
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        self.run_cell(&mut stats, plan, progress.as_ref(), &metrics, &mut *ws)
                    }));
                    match run {
                        Ok(Ok(())) => {
                            completed = Some(stats);
                            break;
                        }
                        Ok(Err(e)) => {
                            last = Some((stats, FailureReason::Error(e.to_string())));
                        }
                        Err(payload) => {
                            last = Some((stats, FailureReason::Panic(panic_text(&*payload))));
                        }
                    }
                    if attempt + 1 < max_attempts {
                        metrics.retries.inc();
                        if let Some(p) = &progress {
                            p.on_retry();
                        }
                        event!(
                            "cell.retry",
                            node = plan.node,
                            cat = &cat,
                            attempt = attempt + 1,
                            reason = last.as_ref().map_or("", |(_, r)| reason_kind(r)),
                        );
                        // Back off before the retry; the wait is derived from
                        // (seed, cell, retry) so the schedule replays exactly.
                        // A cancellation or abort cuts the wait short — the
                        // cell then lands on the failure path with its partial
                        // tally, like any cell that exhausted its attempts.
                        let wait = spec
                            .resilience
                            .retry_backoff
                            .delay(spec.seed, idx, attempt + 1);
                        // Advisory wake-early hint, same contract as the
                        // cell-entry abort check.
                        // statcheck:allow(relaxed-flag)
                        if !sleep_unless(wait, || abort.load(Ordering::Relaxed) || cancelled()) {
                            break;
                        }
                    }
                }
                match completed {
                    Some(stats) => {
                        event!(
                            "cell.done",
                            node = plan.node,
                            cat = &cat,
                            samples = stats.samples,
                            masked = stats.masked,
                            output_error = stats.output_error,
                            anomaly = stats.anomaly,
                            elapsed_us = cell_sw.elapsed_us().unwrap_or(0),
                        );
                        metrics.cells_done.inc();
                        if let Some(p) = &progress {
                            p.on_cell_done();
                        }
                        mirror(
                            "cell.done",
                            &[
                                ("node", Value::U64(plan.node as u64)),
                                ("cat", Value::Str(&cat)),
                                ("samples", Value::U64(stats.samples as u64)),
                                ("masked", Value::U64(stats.masked as u64)),
                                ("worker", Value::U64(worker)),
                                ("dur_us", Value::U64(cell_sw.elapsed_us().unwrap_or(0))),
                            ],
                        );
                        commit(idx, Some(stats.clone()));
                        lock(&results)[idx] = Some(stats);
                    }
                    None => {
                        // Unreachable fallback: `last` is always set when
                        // no attempt completed (max_attempts >= 1).
                        let (partial, reason) = last.unwrap_or_else(|| {
                            (
                                self.fresh_cell(plan),
                                FailureReason::Error("cell never ran".into()),
                            )
                        });
                        let failed_so_far = failure_count.fetch_add(1, Ordering::Relaxed) + 1;
                        event!(
                            "cell.failed",
                            node = plan.node,
                            cat = &cat,
                            attempts = max_attempts,
                            samples = partial.samples,
                            reason = reason_kind(&reason),
                        );
                        if let Some(p) = &progress {
                            p.on_cell_failed();
                        }
                        mirror(
                            "cell.failed",
                            &[
                                ("node", Value::U64(plan.node as u64)),
                                ("cat", Value::Str(&cat)),
                                ("reason", Value::Str(reason_kind(&reason))),
                                ("worker", Value::U64(worker)),
                                ("dur_us", Value::U64(cell_sw.elapsed_us().unwrap_or(0))),
                            ],
                        );
                        lock(&failures).push((
                            idx,
                            CellFailure {
                                node: plan.node,
                                layer: partial.layer.clone(),
                                category: plan.category,
                                attempts: max_attempts,
                                samples_completed: partial.samples,
                                reason,
                            },
                        ));
                        // The degraded cell keeps its partial tally: fewer
                        // samples simply widen its Wilson interval. The ordered
                        // commit records a skip (no bytes), so a resumed
                        // campaign retries the cell.
                        commit(idx, None);
                        lock(&results)[idx] = Some(partial);
                        // Exactly one worker observes the count crossing the
                        // budget — the one whose `fetch_add` lands on budget + 1
                        // — so the abort fires once with a message that does not
                        // depend on how many other cells failed concurrently.
                        if failed_so_far == spec.resilience.failure_budget + 1 {
                            fatal(DnnError::Campaign {
                                message: format!(
                                    "failure budget exhausted: {failed_so_far} cells \
                                 failed (budget {})",
                                    spec.resilience.failure_budget
                                ),
                            });
                        }
                    }
                }
            },
        );

        if let Some(state) = &ckpt {
            let mut st = lock(state);
            // The checkpoint writer IS the guarded resource; flushing
            // under the lock is what keeps the file's record stream
            // append-ordered with committing workers.
            // statcheck:allow(block-under-lock)
            if let Err(e) = st.writer.flush() {
                lock(&errors).push(DnnError::Campaign {
                    message: format!("checkpoint flush failed: {e}"),
                });
            } else {
                event!("checkpoint.flush", upto = plans.len());
            }
        }
        // The progress line terminates even on the error path, so an aborted
        // campaign does not leave a torn `\r` line on the terminal.
        if let Some(p) = &progress {
            p.finish();
        }
        if cancelled() {
            // Cells finished before the token fired were committed above, so
            // the checkpoint left behind resumes cleanly. A token that fired
            // after the last cell completed is a no-op: the run is whole.
            let done = lock(&results).iter().filter(|c| c.is_some()).count();
            if done < plans.len() {
                event!(
                    "campaign.cancel",
                    net = &net,
                    done = done,
                    total = plans.len()
                );
                return Err(DnnError::Campaign {
                    message: format!("campaign cancelled after {done}/{} cells", plans.len()),
                });
            }
        }
        if let Some(e) = lock(&errors).first() {
            event!("campaign.abort", net = &net, error = &e.to_string());
            mirror("campaign.abort", &[("error", Value::Str(&e.to_string()))]);
            return Err(e.clone());
        }
        let mut cells = Vec::with_capacity(plans.len());
        for (idx, slot) in results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .enumerate()
        {
            cells.push(slot.ok_or_else(|| DnnError::Campaign {
                message: format!("internal: cell {idx} never ran"),
            })?);
        }
        // Failures were pushed in completion order, which depends on
        // scheduling; reporting them in plan order keeps the result (and
        // anything diffing it) deterministic across worker counts.
        let mut indexed_failures = failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        indexed_failures.sort_by_key(|&(idx, _)| idx);
        let fast_divergence = self.measure_fast_divergence(&plans, &net);
        let result = CampaignResult {
            cells,
            failures: indexed_failures.into_iter().map(|(_, f)| f).collect(),
            fast_divergence,
            certificate: None,
        };
        let (masked, output_error, anomaly) = result.cells.iter().fold((0, 0, 0), |acc, c| {
            (acc.0 + c.masked, acc.1 + c.output_error, acc.2 + c.anomaly)
        });
        event!(
            "campaign.finish",
            net = &net,
            cells = result.cells.len(),
            injections = result.total_samples(),
            masked = masked,
            output_error = output_error,
            anomaly = anomaly,
            failures = result.failures.len(),
            elapsed_us = campaign_sw.elapsed_us().unwrap_or(0),
        );
        mirror(
            "campaign.finish",
            &[
                ("cells", Value::U64(result.cells.len() as u64)),
                ("injections", Value::U64(result.total_samples() as u64)),
                ("masked", Value::U64(masked as u64)),
                ("failures", Value::U64(result.failures.len() as u64)),
                (
                    "elapsed_us",
                    Value::U64(campaign_sw.elapsed_us().unwrap_or(0)),
                ),
            ],
        );
        Ok(result)
    }

    fn fresh_cell(&self, plan: &CellPlan) -> CellStats {
        CellStats {
            node: plan.node,
            layer: self.engine.network().layer(plan.node).name().to_owned(),
            category: plan.category,
            model: plan.model,
            samples: 0,
            masked: 0,
            output_error: 0,
            anomaly: 0,
            events: Vec::new(),
        }
    }

    /// Runs one cell's injection loop into `stats`. The tally is passed in
    /// by reference so a panic mid-loop leaves the samples completed so far
    /// observable to the caller's recovery path.
    fn run_cell(
        &self,
        stats: &mut CellStats,
        plan: &CellPlan,
        progress: Option<&CampaignProgress>,
        metrics: &CampaignMetrics,
        ws: &mut Workspace,
    ) -> Result<(), DnnError> {
        let spec = &self.spec;
        // Global control needs no simulation: Prob_SWmask is 0 by definition.
        if matches!(plan.model, SoftwareFaultModel::GlobalControl) {
            stats.samples = spec.samples_per_cell;
            stats.anomaly = spec.samples_per_cell;
            metrics.injections.add(spec.samples_per_cell as u64);
            if let Some(p) = progress {
                for _ in 0..spec.samples_per_cell {
                    p.on_injection(CategoryKind::GlobalControl, OutcomeKind::Anomaly);
                }
            }
            return Ok(());
        }
        let kind = category_kind(plan.category);
        let chaos = spec
            .resilience
            .chaos
            .iter()
            .find(|c| c.node == plan.node && c.category == plan.category);
        let mut rng = SplitMix64::new(
            spec.seed
                ^ (plan.node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ cat_tag(plan.category),
        );
        // Adaptive stopping checks the CI every `batch` samples, with a
        // minimum sample floor so a lucky streak cannot end a cell after a
        // handful of injections.
        const ADAPTIVE_BATCH: usize = 50;
        const ADAPTIVE_FLOOR: usize = 100;
        // Batched fault-cone evaluation: the delta path engages whenever the
        // worker's workspace holds a golden snapshot matching this trace.
        // The snapshot is re-ensured on the batch cadence (and at sample 0,
        // so a retried cell recovers immediately) — a panic that lost the
        // loaned overlay costs at most `batch - 1` dense fallback resumes
        // before the snapshot is reinstalled.
        let golden = (spec.batch > 0).then(|| golden_key(self.trace));
        for i in 0..spec.samples_per_cell {
            if let Some(key) = golden {
                if i % spec.batch == 0 && ws.golden_key() != Some(key) {
                    ws.install_golden(key, &self.trace.node_outputs);
                }
            }
            if let Some(target) = spec.target_ci_halfwidth {
                if i >= ADAPTIVE_FLOOR && i % ADAPTIVE_BATCH == 0 {
                    let (lo, hi) = wilson_interval(stats.masked, stats.samples);
                    if (hi - lo) / 2.0 <= target {
                        break;
                    }
                }
            }
            // The watchdog clock starts before any chaos delay: a slow
            // injection and a stalled one are indistinguishable to it. Time
            // comes from the obs clock — the workspace's one sanctioned
            // wall-clock site — and never feeds campaign statistics.
            let deadline = spec.resilience.injection_deadline.map(|d| clock::now() + d);
            apply_chaos(chaos, i, plan.node, plan.category);
            let inj_sw = clock::Stopwatch::start_if(timing_enabled());
            let inj = inject_once_pooled(
                self.engine,
                self.trace,
                plan.node,
                plan.model,
                self.metric,
                &mut rng,
                deadline,
                ws,
            )?;
            metrics.injection_ns.record_opt(inj_sw.elapsed_ns());
            metrics.injections.inc();
            stats.samples += 1;
            match inj.outcome {
                Outcome::Masked => stats.masked += 1,
                Outcome::OutputError => stats.output_error += 1,
                Outcome::SystemAnomaly => stats.anomaly += 1,
            }
            if inj.watchdog {
                metrics.watchdog.inc();
                event!("watchdog.fired", node = plan.node, sample = i);
                if let Some(p) = progress {
                    p.on_watchdog();
                }
            }
            if let Some(p) = progress {
                p.on_injection(kind, outcome_kind(inj.outcome));
            }
            if spec.record_events {
                stats.events.push(InjectionEvent {
                    faulty_neurons: inj.faulty_neurons,
                    max_perturbation: inj.max_perturbation,
                    outcome: inj.outcome,
                });
            }
        }
        Ok(())
    }

    /// Fast tier only: measure (not estimate) the worst-case kernel
    /// divergence once per MAC layer, so the campaign reports exactly how
    /// far its arithmetic strayed from the bitwise oracle on this workload.
    fn measure_fast_divergence(&self, plans: &[CellPlan], net: &str) -> Option<f32> {
        (self.spec.mac_tier == MacTier::Fast).then(|| {
            let mut worst = 0.0f32;
            let mut prev = None;
            for plan in plans {
                if prev == Some(plan.node) {
                    continue; // one measurement per node, not per category
                }
                prev = Some(plan.node);
                if let Some(d) = node_fast_divergence(self.engine, self.trace, plan.node) {
                    worst = worst.max(d);
                }
            }
            event!(
                "campaign.fast_divergence",
                net = net,
                divergence = f64::from(worst),
            );
            worst
        })
    }

    /// The adaptive (confidence-driven) execution path: wave-based
    /// sequential sampling over per-(node × category) strata, Neyman
    /// allocation by uncertainty contribution, `fidelity-ackpt v1`
    /// checkpointing at every wave barrier, and a confidence certificate on
    /// completion. Dispatched from [`CampaignRunner::run`] when
    /// `spec.adaptive` is set.
    #[allow(clippy::too_many_lines)] // one linear pipeline: setup, resume, wave loop, certificate
    fn execute_adaptive(
        &self,
        resume_path: Option<&Path>,
        jobs: usize,
    ) -> Result<CampaignResult, DnnError> {
        let _prof = prof::scope("campaign.adaptive");
        let spec = &self.spec;
        let bad = |message: String| DnnError::Campaign { message };
        let Some(aplan) = spec.adaptive.clone() else {
            return Err(bad("adaptive execution requires spec.adaptive".into()));
        };
        let z = aplan.validated_z()?;
        if spec.record_events {
            return Err(bad(
                "adaptive campaigns do not record per-injection events \
                 (strata sizes are data-dependent); drop record_events"
                    .into(),
            ));
        }
        if spec.target_ci_halfwidth.is_some() {
            return Err(bad(
                "target_ci_halfwidth (per-cell stopping) and the adaptive plan \
                 (campaign-level stopping) are mutually exclusive"
                    .into(),
            ));
        }
        let plans = self.plans();
        let plan_ids: Vec<(usize, FfCategory)> =
            plans.iter().map(|p| (p.node, p.category)).collect();
        let fingerprint = campaign_fingerprint(spec, self.engine.network().name(), &plan_ids);
        let weights = stratum_weights(self.engine, self.trace, self.accel, &plan_ids);
        let strata: Vec<StratumMeta> = plans
            .iter()
            .zip(&weights)
            .map(|(p, &weight)| StratumMeta {
                node: p.node,
                category: p.category,
                model: p.model,
                weight,
                layer: self.engine.network().layer(p.node).name().to_owned(),
            })
            .collect();

        // Each stratum owns the same derived RNG stream a fixed-count cell
        // would: its first k samples are bit-identical to the fixed path's.
        let mut states: Vec<StratumTally> = plans
            .iter()
            .map(|p| {
                StratumTally::fresh(
                    spec.seed
                        ^ (p.node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ cat_tag(p.category),
                )
            })
            .collect();
        let mut committed: Vec<WaveBlock> = Vec::new();
        let mut failures: Vec<(usize, CellFailure)> = Vec::new();
        let mut resumed_footer: Option<CertFooter> = None;

        // Resume: replay every committed wave into the tallies. The RNG
        // stream state rides in the rows, so sampling continues mid-stream
        // exactly where the killed process stopped.
        if let Some(path) = resume_path {
            if path.exists() {
                let file = File::open(path)
                    .map_err(|e| bad(format!("cannot open checkpoint {}: {e}", path.display())))?;
                let parsed = parse_adaptive_checkpoint(BufReader::new(file))?;
                if parsed.fingerprint != fingerprint {
                    return Err(bad(format!(
                        "checkpoint {} belongs to a different campaign \
                         (fingerprint {:016x}, expected {:016x})",
                        path.display(),
                        parsed.fingerprint,
                        fingerprint
                    )));
                }
                if parsed.epsilon_bits != aplan.epsilon.to_bits()
                    || parsed.confidence_bits != aplan.confidence.to_bits()
                    || parsed.max_injections != aplan.max_injections
                    || parsed.floor != WAVE_FLOOR
                {
                    return Err(bad(format!(
                        "checkpoint {} was written by a different adaptive plan",
                        path.display()
                    )));
                }
                if parsed.strata.len() != strata.len()
                    || parsed.strata.iter().zip(&strata).any(|((m, wbits), mine)| {
                        m.node != mine.node
                            || m.category != mine.category
                            || *wbits != mine.weight.to_bits()
                    })
                {
                    return Err(bad(format!(
                        "checkpoint {} stratum table does not match the plan",
                        path.display()
                    )));
                }
                for block in &parsed.waves {
                    for (idx, row) in &block.rows {
                        let state = states.get_mut(*idx).ok_or_else(|| {
                            bad(format!(
                                "corrupt adaptive checkpoint: stratum {idx} out of range"
                            ))
                        })?;
                        if state.frozen || row.samples < state.samples {
                            return Err(bad(format!(
                                "corrupt adaptive checkpoint: stratum {idx} tally regressed"
                            )));
                        }
                        *state = StratumTally {
                            samples: row.samples,
                            masked: row.masked,
                            output_error: row.output_error,
                            anomaly: row.anomaly,
                            rng_state: row.rng_state,
                            frozen: false,
                        };
                    }
                    for f in &block.fails {
                        let meta = strata.get(f.stratum).ok_or_else(|| {
                            bad(format!(
                                "corrupt adaptive checkpoint: failed stratum {} out of range",
                                f.stratum
                            ))
                        })?;
                        states[f.stratum].frozen = true;
                        let reason = if f.kind == "panic" {
                            FailureReason::Panic(f.message.clone())
                        } else {
                            FailureReason::Error(f.message.clone())
                        };
                        failures.push((
                            f.stratum,
                            CellFailure {
                                node: meta.node,
                                layer: meta.layer.clone(),
                                category: meta.category,
                                attempts: f.attempts,
                                samples_completed: states[f.stratum].samples,
                                reason,
                            },
                        ));
                    }
                }
                committed = parsed.waves;
                resumed_footer = parsed.footer;
            }
        }

        // Telemetry (same shape as the fixed path).
        let campaign_sw = clock::Stopwatch::start_if(timing_enabled());
        let metrics = CampaignMetrics::handles();
        let net = self.engine.network().name().to_owned();
        let workers = jobs.clamp(1, plans.len().max(1));
        event!(
            "campaign.start",
            net = &net,
            cells = plans.len(),
            adaptive = true,
            epsilon = aplan.epsilon,
            seed = spec.seed,
            threads = workers,
        );
        let progress = spec.progress.as_ref().map(|p| {
            CampaignProgress::new(
                net.clone(),
                p,
                plans.len(),
                aplan.max_injections / plans.len().max(1),
                spec.resilience.failure_budget,
            )
        });
        let job_sink = spec.progress.as_ref().and_then(|p| p.sink.clone());
        let mirror = |name: &str, fields: &[Field<'_>]| {
            if let Some(h) = &job_sink {
                trace::record_now(h.sink(), name, fields);
            }
        };
        mirror(
            "campaign.start",
            &[
                ("net", Value::Str(&net)),
                ("cells", Value::U64(plans.len() as u64)),
                ("adaptive", Value::U64(1)),
                ("threads", Value::U64(workers as u64)),
            ],
        );
        if !committed.is_empty() {
            event!(
                "campaign.resume",
                net = &net,
                waves = committed.len(),
                injections = states.iter().map(|t| t.samples).sum::<usize>(),
            );
        }

        // Canonical rewrite: the checkpoint is recreated from the replayed
        // blocks, so a torn tail from the previous process never lingers and
        // resumed files stay bit-identical to uninterrupted ones.
        let ckpt_path = spec
            .resilience
            .checkpoint
            .as_ref()
            .map(|c| c.path.as_path())
            .or(resume_path);
        let io_err = |what: &str, e: std::io::Error| DnnError::Campaign {
            message: format!("adaptive checkpoint {what} failed: {e}"),
        };
        let mut ckpt: Option<BufWriter<File>> = match ckpt_path {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| io_err("directory creation", e))?;
                    }
                }
                let file = File::create(path).map_err(|e| io_err("creation", e))?;
                let mut w = BufWriter::new(file);
                write_adaptive_header(&mut w, fingerprint, &aplan, WAVE_FLOOR, &strata)
                    .map_err(|e| io_err("header write", e))?;
                for block in &committed {
                    write_wave(&mut w, block).map_err(|e| io_err("wave write", e))?;
                }
                w.flush().map_err(|e| io_err("flush", e))?;
                Some(w)
            }
            None => None,
        };

        let max_attempts = spec.resilience.max_retries_per_cell + 1;
        let cancel = spec.resilience.cancel.as_ref();
        let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
        let pool = WorkStealPool::new(PoolSpec {
            workers,
            seed: spec.seed,
            plan: ShardPlan::Balanced,
            cancel: spec.resilience.cancel.clone(),
        });
        let gauge_resolved = fidelity_obs::metrics::gauge("campaign.strata_resolved");
        let gauge_total = fidelity_obs::metrics::gauge("campaign.strata_total");
        // Strata that can ever carry uncertainty: sampled with nonzero
        // weight. Display-only denominator for the convergence readout.
        let display_total = strata
            .iter()
            .filter(|m| m.sampled() && m.weight > 0.0)
            .count();
        gauge_total.set(display_total as i64);

        let mut wave = committed.len();
        let mut total_failures = failures.len();
        // A checkpoint that already carries its certificate footer is a
        // finished campaign: re-running waves would extend a sealed result.
        while resumed_footer.is_none() {
            let bounds: Vec<f64> = strata
                .iter()
                .zip(&states)
                .map(|(m, t)| stratum_terms(m.weight, t.masked, t.samples, z, m.sampled()).3)
                .collect();
            let total_bound: f64 = bounds.iter().sum();
            // Display-only convergence readout: a stratum counts as resolved
            // once its share of the bound is below its even split of ε.
            let resolved = (0..strata.len())
                .filter(|&i| {
                    strata[i].sampled()
                        && strata[i].weight > 0.0
                        && bounds[i] <= aplan.epsilon / display_total.max(1) as f64
                })
                .count();
            gauge_resolved.set(resolved as i64);
            if let Some(p) = &progress {
                p.set_strata(resolved, display_total);
            }
            if total_bound <= aplan.epsilon {
                break; // converged
            }
            let total: usize = states.iter().map(|t| t.samples).sum();
            let headroom = aplan.max_injections.saturating_sub(total);
            if headroom == 0 {
                break; // cap reached: honest non-converged certificate
            }
            let growable: Vec<usize> = (0..strata.len())
                .filter(|&i| strata[i].sampled() && !states[i].frozen && bounds[i] > 0.0)
                .collect();
            if growable.is_empty() {
                break; // every live stratum is exact; frozen ones hold the bound up
            }
            // Wave 0 lays an even floor; later waves spend half the total so
            // far (amortizing the re-estimation) proportionally to each
            // stratum's uncertainty contribution.
            let quotas = if wave == 0 {
                let budget = (WAVE_FLOOR * growable.len()).min(headroom);
                allocate_even(budget, &growable, spec.seed, wave)
            } else {
                let budget = (total / 2).max(WAVE_MIN_BUDGET).min(headroom);
                let weighted: Vec<(usize, f64)> =
                    growable.iter().map(|&i| (i, bounds[i])).collect();
                allocate_neyman(budget, &weighted, spec.seed, wave)
            };
            if quotas.is_empty() {
                break;
            }
            event!(
                "campaign.wave",
                net = &net,
                wave = wave,
                strata = quotas.len(),
                budget = quotas.iter().map(|&(_, q)| q).sum::<usize>(),
                bound = total_bound,
            );
            mirror(
                "campaign.wave",
                &[
                    ("wave", Value::U64(wave as u64)),
                    ("strata", Value::U64(quotas.len() as u64)),
                ],
            );

            // Run the wave. Tasks read the committed tallies immutably and
            // publish into their own slot; the coordinator folds the slots
            // back in stratum order at the barrier, so nothing about the
            // result depends on scheduling.
            let outcomes: Vec<Mutex<Option<WaveOutcome>>> =
                quotas.iter().map(|_| Mutex::new(None)).collect();
            let states_ref = &states;
            pool.run_with(
                quotas.len(),
                |worker| {
                    let mut ws = Workspace::new();
                    ws.set_mac_tier(spec.mac_tier);
                    if spec.batch > 0 {
                        ws.install_golden(golden_key(self.trace), &self.trace.node_outputs);
                    }
                    (worker, ws)
                },
                |state, tidx| {
                    let (_worker, ws) = state;
                    if cancelled() {
                        return;
                    }
                    let (sidx, quota) = quotas[tidx];
                    let plan = &plans[sidx];
                    let cat = cat_code(plan.category);
                    let snapshot = states_ref[sidx].clone();
                    let mut last: Option<FailureReason> = None;
                    let mut done = None;
                    for attempt in 0..max_attempts {
                        // Each attempt restarts from the committed snapshot,
                        // so a successful retry is bit-identical to a clean
                        // first run of the wave.
                        let mut tally = snapshot.clone();
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            self.run_stratum_quota(
                                &mut tally,
                                plan,
                                quota,
                                progress.as_ref(),
                                &metrics,
                                &mut *ws,
                            )
                        }));
                        match run {
                            Ok(Ok(())) => {
                                done = Some(tally);
                                break;
                            }
                            Ok(Err(e)) => last = Some(FailureReason::Error(e.to_string())),
                            Err(payload) => {
                                last = Some(FailureReason::Panic(panic_text(&*payload)));
                            }
                        }
                        if attempt + 1 < max_attempts {
                            metrics.retries.inc();
                            if let Some(p) = &progress {
                                p.on_retry();
                            }
                            event!(
                                "cell.retry",
                                node = plan.node,
                                cat = &cat,
                                attempt = attempt + 1,
                                reason = last.as_ref().map_or("", reason_kind),
                            );
                            let wait =
                                spec.resilience
                                    .retry_backoff
                                    .delay(spec.seed, sidx, attempt + 1);
                            if !sleep_unless(wait, cancelled) {
                                break;
                            }
                        }
                    }
                    let outcome = match done {
                        Some(tally) => WaveOutcome::Done(tally),
                        None => WaveOutcome::Failed {
                            attempts: max_attempts,
                            reason: last.unwrap_or_else(|| {
                                FailureReason::Error("stratum never ran".into())
                            }),
                        },
                    };
                    *lock(&outcomes[tidx]) = Some(outcome);
                },
            );

            // Fold the wave at the barrier, in stratum order.
            let mut block = WaveBlock {
                index: wave,
                rows: Vec::new(),
                fails: Vec::new(),
            };
            let mut incomplete = false;
            for (tidx, &(sidx, _)) in quotas.iter().enumerate() {
                match lock(&outcomes[tidx]).take() {
                    None => incomplete = true,
                    Some(WaveOutcome::Done(tally)) => {
                        block.rows.push((
                            sidx,
                            StratumRow {
                                samples: tally.samples,
                                masked: tally.masked,
                                output_error: tally.output_error,
                                anomaly: tally.anomaly,
                                rng_state: tally.rng_state,
                            },
                        ));
                        states[sidx] = tally;
                    }
                    Some(WaveOutcome::Failed { attempts, reason }) => {
                        // The stratum freezes with its pre-wave tally: the
                        // lost wave's partial samples are discarded (they
                        // were never committed), its Wilson interval simply
                        // stays at the committed width.
                        states[sidx].frozen = true;
                        total_failures += 1;
                        let meta = &strata[sidx];
                        event!(
                            "cell.failed",
                            node = meta.node,
                            cat = &cat_code(meta.category),
                            attempts = attempts,
                            samples = states[sidx].samples,
                            reason = reason_kind(&reason),
                        );
                        if let Some(p) = &progress {
                            p.on_cell_failed();
                        }
                        block.fails.push(WaveFail {
                            stratum: sidx,
                            attempts,
                            kind: reason_kind(&reason).to_owned(),
                            message: match &reason {
                                FailureReason::Error(m) | FailureReason::Panic(m) => m.clone(),
                            },
                        });
                        failures.push((
                            sidx,
                            CellFailure {
                                node: meta.node,
                                layer: meta.layer.clone(),
                                category: meta.category,
                                attempts,
                                samples_completed: states[sidx].samples,
                                reason,
                            },
                        ));
                    }
                }
            }
            if incomplete {
                // Cancelled mid-wave: nothing of this wave is committed, so
                // the checkpoint on disk resumes from the last barrier.
                if let Some(p) = &progress {
                    p.finish();
                }
                let total: usize = states.iter().map(|t| t.samples).sum();
                event!(
                    "campaign.cancel",
                    net = &net,
                    waves = wave,
                    injections = total
                );
                return Err(bad(format!(
                    "adaptive campaign cancelled after {wave} waves ({total} injections)"
                )));
            }
            if let Some(w) = &mut ckpt {
                write_wave(w, &block).map_err(|e| io_err("wave write", e))?;
                w.flush().map_err(|e| io_err("flush", e))?;
            }
            wave += 1;
            if total_failures > spec.resilience.failure_budget {
                if let Some(p) = &progress {
                    p.finish();
                }
                return Err(bad(format!(
                    "failure budget exhausted: {total_failures} cells failed (budget {})",
                    spec.resilience.failure_budget
                )));
            }
        }

        // Build the certificate with the exact arithmetic the offline
        // verifier replays, so `statcheck --cert` compares bit-for-bit.
        let tallies: Vec<(usize, usize)> = states.iter().map(|t| (t.samples, t.masked)).collect();
        let cert = build_certificate(fingerprint, &aplan, z, &strata, &tallies, wave);
        if let Some(f) = &resumed_footer {
            // A complete checkpoint must agree with its own data when
            // recomputed — anything else is tampering or corruption.
            if cert.total_bound.to_bits() != f.total_bound.to_bits()
                || cert.total_injections != f.total_injections
                || cert.converged != f.converged
                || committed.len() != f.waves
            {
                return Err(bad(
                    "corrupt adaptive checkpoint: stored certificate does not match \
                     its own wave data"
                        .into(),
                ));
            }
        }
        if let Some(w) = &mut ckpt {
            write_cert_footer(
                w,
                &CertFooter {
                    total_bound: cert.total_bound,
                    total_injections: cert.total_injections,
                    waves: wave,
                    converged: cert.converged,
                },
            )
            .map_err(|e| io_err("certificate write", e))?;
            w.flush().map_err(|e| io_err("flush", e))?;
        }
        if let Some(p) = &progress {
            p.finish();
        }

        let cells: Vec<CellStats> = strata
            .iter()
            .zip(&states)
            .map(|(m, t)| CellStats {
                node: m.node,
                layer: m.layer.clone(),
                category: m.category,
                model: m.model,
                samples: t.samples,
                masked: t.masked,
                output_error: t.output_error,
                anomaly: t.anomaly,
                events: Vec::new(),
            })
            .collect();
        failures.sort_by_key(|&(idx, _)| idx);
        let fast_divergence = self.measure_fast_divergence(&plans, &net);
        let result = CampaignResult {
            cells,
            failures: failures.into_iter().map(|(_, f)| f).collect(),
            fast_divergence,
            certificate: Some(cert),
        };
        event!(
            "campaign.finish",
            net = &net,
            cells = result.cells.len(),
            injections = result.total_samples(),
            waves = wave,
            converged = result.certificate.as_ref().is_some_and(|c| c.converged),
            failures = result.failures.len(),
            elapsed_us = campaign_sw.elapsed_us().unwrap_or(0),
        );
        mirror(
            "campaign.finish",
            &[
                ("cells", Value::U64(result.cells.len() as u64)),
                ("injections", Value::U64(result.total_samples() as u64)),
                ("waves", Value::U64(wave as u64)),
                ("failures", Value::U64(result.failures.len() as u64)),
                (
                    "elapsed_us",
                    Value::U64(campaign_sw.elapsed_us().unwrap_or(0)),
                ),
            ],
        );
        Ok(result)
    }

    /// Runs one wave quota for one stratum, continuing its RNG stream from
    /// the committed tally. Sample indices are absolute (`tally.samples`
    /// counts from the stratum's birth), so chaos triggers and the golden
    /// re-ensure cadence line up with the fixed path's.
    fn run_stratum_quota(
        &self,
        tally: &mut StratumTally,
        plan: &CellPlan,
        quota: usize,
        progress: Option<&CampaignProgress>,
        metrics: &CampaignMetrics,
        ws: &mut Workspace,
    ) -> Result<(), DnnError> {
        let spec = &self.spec;
        let kind = category_kind(plan.category);
        let chaos = spec
            .resilience
            .chaos
            .iter()
            .find(|c| c.node == plan.node && c.category == plan.category);
        let mut rng = SplitMix64::new(tally.rng_state);
        let golden = (spec.batch > 0).then(|| golden_key(self.trace));
        for j in 0..quota {
            let i = tally.samples;
            if let Some(key) = golden {
                // `j == 0` additionally re-ensures at every wave entry: an
                // absolute index mid-batch must still find the snapshot.
                if (j == 0 || i.is_multiple_of(spec.batch)) && ws.golden_key() != Some(key) {
                    ws.install_golden(key, &self.trace.node_outputs);
                }
            }
            let deadline = spec.resilience.injection_deadline.map(|d| clock::now() + d);
            apply_chaos(chaos, i, plan.node, plan.category);
            let inj_sw = clock::Stopwatch::start_if(timing_enabled());
            let inj = inject_once_pooled(
                self.engine,
                self.trace,
                plan.node,
                plan.model,
                self.metric,
                &mut rng,
                deadline,
                ws,
            )?;
            metrics.injection_ns.record_opt(inj_sw.elapsed_ns());
            metrics.injections.inc();
            tally.samples += 1;
            match inj.outcome {
                Outcome::Masked => tally.masked += 1,
                Outcome::OutputError => tally.output_error += 1,
                Outcome::SystemAnomaly => tally.anomaly += 1,
            }
            if inj.watchdog {
                metrics.watchdog.inc();
                event!("watchdog.fired", node = plan.node, sample = i);
                if let Some(p) = progress {
                    p.on_watchdog();
                }
            }
            if let Some(p) = progress {
                p.on_injection(kind, outcome_kind(inj.outcome));
            }
        }
        tally.rng_state = rng.state();
        Ok(())
    }
}

/// The published result of one stratum's wave task: either the extended
/// tally, or a failure that freezes the stratum at its pre-wave snapshot.
enum WaveOutcome {
    Done(StratumTally),
    Failed {
        attempts: usize,
        reason: FailureReason,
    },
}

/// A campaign runner with an explicit worker count, sharding cells over the
/// `fidelity-par` work-stealing pool.
///
/// [`CampaignRunner`] already executes in parallel using `spec.threads`;
/// this façade is the entry point for callers that choose the degree of
/// parallelism at the call site (the CLI's `--jobs`, benchmarks sweeping
/// worker counts, determinism tests comparing job counts). The determinism
/// contract is identical either way: every cell derives its RNG stream from
/// `(campaign seed, cell id)` alone, all shared accounting is commutative,
/// and checkpoint records pass through the ordered commit buffer — so for
/// any `jobs` value the results and checkpoint bytes are bit-identical to a
/// serial run.
pub struct ParallelCampaignRunner<'a> {
    runner: CampaignRunner<'a>,
    jobs: usize,
}

impl std::fmt::Debug for ParallelCampaignRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Parallel{:?} jobs={}", self.runner, self.jobs)
    }
}

impl<'a> ParallelCampaignRunner<'a> {
    /// Binds a campaign to its inputs; the worker count starts at
    /// `spec.threads` and can be overridden with
    /// [`ParallelCampaignRunner::with_jobs`].
    pub fn new(
        engine: &'a Engine,
        trace: &'a Trace,
        accel: &'a AcceleratorConfig,
        metric: &'a dyn CorrectnessMetric,
        spec: CampaignSpec,
    ) -> Self {
        let jobs = spec.threads.max(1);
        ParallelCampaignRunner {
            runner: CampaignRunner::new(engine, trace, accel, metric, spec),
            jobs,
        }
    }

    /// Sets the worker count (min 1). Results do not depend on it.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The bound spec.
    pub fn spec(&self) -> &CampaignSpec {
        self.runner.spec()
    }

    /// Runs the campaign on `jobs` workers; semantics are exactly
    /// [`CampaignRunner::run`].
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::Campaign`] when the failure budget is exhausted
    /// or the checkpoint is unusable.
    pub fn run(&self) -> Result<CampaignResult, DnnError> {
        let resume = self
            .runner
            .spec
            .resilience
            .checkpoint
            .as_ref()
            .filter(|c| c.resume)
            .map(|c| c.path.clone());
        self.runner.execute(resume.as_deref(), self.jobs)
    }

    /// Resumes from `path` on `jobs` workers; semantics are exactly
    /// [`CampaignRunner::resume_from`].
    ///
    /// # Errors
    ///
    /// As for [`CampaignRunner::resume_from`].
    pub fn resume_from(&self, path: &Path) -> Result<CampaignResult, DnnError> {
        self.runner.execute(Some(path), self.jobs)
    }
}

/// Locks a mutex, recovering from poisoning: a worker that panicked inside
/// the runner's own bookkeeping (not the injection code, which unwinds
/// before any lock is taken) still leaves consistent per-cell data.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Short tag for trace events (full messages live in [`CellFailure`]).
fn reason_kind(reason: &FailureReason) -> &'static str {
    match reason {
        FailureReason::Error(_) => "error",
        FailureReason::Panic(_) => "panic",
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Sleeps for `total`, polling `interrupted` in short slices so a
/// cancellation or abort cuts a long backoff wait short. Returns `false`
/// when the wait was interrupted.
fn sleep_unless(total: std::time::Duration, interrupted: impl Fn() -> bool) -> bool {
    const SLICE: std::time::Duration = std::time::Duration::from_millis(5);
    let mut remaining = total;
    while !remaining.is_zero() {
        if interrupted() {
            return false;
        }
        let step = remaining.min(SLICE);
        std::thread::sleep(step);
        remaining -= step;
    }
    !interrupted()
}

/// Creates (or truncates) the checkpoint file, writes the header plus all
/// already-completed cells in plan-index order, and marks those indices as
/// pre-committed skips so the ordered cursor passes over them.
fn open_checkpoint(
    path: &Path,
    fingerprint: u64,
    interval: usize,
    completed: &[Option<CellStats>],
) -> Result<OrderedCommit, DnnError> {
    let io_err = |what: &str, e: std::io::Error| DnnError::Campaign {
        message: format!("checkpoint {what} failed for {}: {e}", path.display()),
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| io_err("directory creation", e))?;
        }
    }
    let file = File::create(path).map_err(|e| io_err("creation", e))?;
    let mut writer = BufWriter::new(file);
    write_header(&mut writer, fingerprint).map_err(|e| io_err("header write", e))?;
    let mut pending = BTreeMap::new();
    for (idx, cell) in completed.iter().enumerate() {
        if let Some(cell) = cell {
            write_cell(&mut writer, idx, cell).map_err(|e| io_err("cell write", e))?;
            pending.insert(idx, None);
        }
    }
    writer.flush().map_err(|e| io_err("flush", e))?;
    let mut state = OrderedCommit {
        writer,
        interval,
        unflushed: 0,
        cursor: 0,
        pending,
    };
    // Advance past any restored prefix right away; the loop writes nothing
    // (every entry is a skip), so no I/O error can surface here.
    while state.pending.remove(&state.cursor).is_some() {
        state.cursor += 1;
    }
    Ok(state)
}

fn cat_tag(category: FfCategory) -> u64 {
    use fidelity_accel::ff::{PipelineStage, VarType};
    match category {
        FfCategory::Datapath { stage, var } => {
            let s = match stage {
                PipelineStage::BeforeBuffer => 1u64,
                PipelineStage::BufferToMac => 2,
                PipelineStage::AfterMac => 3,
            };
            let v = match var {
                VarType::Input => 1u64,
                VarType::Weight => 2,
                VarType::Bias => 3,
                VarType::PartialSum => 4,
                VarType::Output => 5,
            };
            s * 31 + v
        }
        FfCategory::LocalControl => 1009,
        FfCategory::GlobalControl => 2003,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::TopOneMatch;
    use fidelity_accel::presets;
    use fidelity_dnn::graph::NetworkBuilder;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::layers::{Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool};
    use fidelity_dnn::precision::Precision;

    fn tiny_engine() -> (Engine, Trace) {
        let net = NetworkBuilder::new("clf")
            .input("x")
            .layer(
                Conv2d::new("conv", uniform_tensor(1, vec![4, 2, 3, 3], 0.6))
                    .unwrap()
                    .with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
            .unwrap()
            .layer(GlobalAvgPool::new("gap"), &["relu"])
            .unwrap()
            .layer(Flatten::new("flat"), &["gap"])
            .unwrap()
            .layer(
                Dense::new("fc", uniform_tensor(2, vec![5, 4], 0.6)).unwrap(),
                &["flat"],
            )
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let x = uniform_tensor(3, vec![1, 2, 6, 6], 1.0);
        let trace = engine.trace(&[x]).unwrap();
        (engine, trace)
    }

    #[test]
    fn campaign_covers_all_cells() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 20,
            seed: 7,
            threads: 4,
            record_events: false,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        // 2 MAC layers × 7 categories.
        assert_eq!(result.cells.len(), 14);
        assert_eq!(result.total_samples(), 14 * 20);
        for cell in &result.cells {
            assert_eq!(cell.masked + cell.output_error + cell.anomaly, cell.samples);
        }
    }

    #[test]
    fn campaign_is_reproducible_across_thread_counts() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let run = |threads: usize| {
            let spec = CampaignSpec {
                samples_per_cell: 30,
                seed: 99,
                threads,
                record_events: false,
                target_ci_halfwidth: None,
                resilience: Default::default(),
                progress: None,
                batch: 0,
                mac_tier: MacTier::Bitwise,
                adaptive: None,
            };
            run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec)
                .unwrap()
                .cells
                .iter()
                .map(|c| (c.node, c.masked, c.output_error, c.anomaly))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn global_cells_never_mask() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 5,
            seed: 1,
            threads: 2,
            record_events: false,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        for cell in result
            .cells
            .iter()
            .filter(|c| c.category == FfCategory::GlobalControl)
        {
            assert_eq!(cell.prob_swmask(), 0.0);
            assert_eq!(cell.anomaly, cell.samples);
        }
    }

    #[test]
    fn adaptive_sampling_stops_early_on_tight_ci() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let fixed = CampaignSpec {
            samples_per_cell: 2000,
            seed: 21,
            threads: 2,
            record_events: false,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let adaptive = CampaignSpec {
            target_ci_halfwidth: Some(0.08),
            ..fixed.clone()
        };
        let full = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &fixed).unwrap();
        let early = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &adaptive).unwrap();
        assert!(
            early.total_samples() < full.total_samples(),
            "adaptive should save samples: {} vs {}",
            early.total_samples(),
            full.total_samples()
        );
        // And the estimates agree within the combined CI slack.
        for (a, b) in early.cells.iter().zip(&full.cells) {
            assert_eq!(a.category, b.category);
            assert!(
                (a.prob_swmask() - b.prob_swmask()).abs() < 0.2,
                "{}: {} vs {}",
                a.category,
                a.prob_swmask(),
                b.prob_swmask()
            );
        }
    }

    /// Scratch path for checkpoint-writing tests; unique per test name and
    /// process so parallel test threads never collide.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fidelity-campaign-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Cancellation skips work, reports a distinct error, and leaves a
    /// checkpoint that resumes to the same bytes as an uninterrupted run.
    #[test]
    fn cancelled_campaign_errors_and_checkpoint_resumes_bit_identical() {
        use crate::resilience::CheckpointSpec;
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let base = |ckpt: CheckpointSpec, cancel: Option<CancelToken>| CampaignSpec {
            samples_per_cell: 12,
            seed: 23,
            threads: 2,
            record_events: true,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec {
                checkpoint: Some(ckpt),
                cancel,
                ..ResilienceSpec::default()
            },
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };

        let ref_path = scratch("cancel-ref.ckpt");
        let spec = base(CheckpointSpec::new(&ref_path), None);
        run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        let ref_bytes = std::fs::read(&ref_path).unwrap();
        std::fs::remove_file(&ref_path).ok();

        // A pre-fired token: every cell is skipped and the run reports
        // cancellation instead of fabricating results.
        let path = scratch("cancel-resume.ckpt");
        let token = CancelToken::new();
        token.cancel();
        let spec = base(CheckpointSpec::new(&path), Some(token));
        let err = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("cancelled after 0/"),
            "unexpected error: {err}"
        );

        // The checkpoint left behind (header only) resumes cleanly, and the
        // finished file is bit-identical to the uninterrupted run's.
        let spec = base(CheckpointSpec::resuming(&path), None);
        let resumed = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        assert!(resumed.failures.is_empty());
        assert_eq!(std::fs::read(&path).unwrap(), ref_bytes);
        std::fs::remove_file(&path).ok();
    }

    /// The first and last non-global cells of the plan, as chaos victims
    /// (global-control cells never reach the injection loop, so chaos cannot
    /// fire there).
    fn victim_pair(result: &CampaignResult) -> ((usize, FfCategory), (usize, FfCategory)) {
        let non_global: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.category != FfCategory::GlobalControl)
            .collect();
        let first = non_global.first().unwrap();
        let last = non_global.last().unwrap();
        ((first.node, first.category), (last.node, last.category))
    }

    /// Regression (serial-ordering bug): failures used to be reported in
    /// completion order, which depends on scheduling. They must come back in
    /// plan order for any worker count — even when the chaos specs are
    /// listed in the opposite order.
    #[test]
    fn failures_are_reported_in_plan_order() {
        use crate::resilience::{ChaosMode, ChaosSpec};
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let mut spec = CampaignSpec {
            samples_per_cell: 10,
            seed: 13,
            threads: 8,
            record_events: false,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let baseline = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        let ((n1, c1), (n2, c2)) = victim_pair(&baseline);
        spec.resilience.max_retries_per_cell = 0;
        spec.resilience.failure_budget = 10;
        // Reverse order in the spec: the report order must not follow it.
        spec.resilience.chaos = vec![
            ChaosSpec {
                node: n2,
                category: c2,
                mode: ChaosMode::PanicAtSample(0),
            },
            ChaosSpec {
                node: n1,
                category: c1,
                mode: ChaosMode::PanicAtSample(0),
            },
        ];
        for _ in 0..4 {
            let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
            assert_eq!(result.failures.len(), 2);
            assert_eq!(
                (result.failures[0].node, result.failures[0].category),
                (n1, c1)
            );
            assert_eq!(
                (result.failures[1].node, result.failures[1].category),
                (n2, c2)
            );
        }
    }

    /// Regression (serial-ordering bug): the failure-budget abort used to
    /// fire in every worker that observed the count above budget, with a
    /// message carrying whatever count that worker happened to see. Now only
    /// the worker whose increment lands exactly on budget + 1 aborts, so the
    /// error is byte-identical for any job count.
    #[test]
    fn budget_abort_message_is_deterministic_across_job_counts() {
        use crate::resilience::{ChaosMode, ChaosSpec};
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let mut spec = CampaignSpec {
            samples_per_cell: 10,
            seed: 29,
            threads: 1,
            record_events: false,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let baseline = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        let ((n1, c1), (n2, c2)) = victim_pair(&baseline);
        spec.resilience.max_retries_per_cell = 0;
        spec.resilience.failure_budget = 0;
        spec.resilience.chaos = vec![
            ChaosSpec {
                node: n1,
                category: c1,
                mode: ChaosMode::PanicAtSample(0),
            },
            ChaosSpec {
                node: n2,
                category: c2,
                mode: ChaosMode::PanicAtSample(0),
            },
        ];
        let message = |jobs: usize| {
            ParallelCampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, spec.clone())
                .with_jobs(jobs)
                .run()
                .unwrap_err()
                .to_string()
        };
        let serial = message(1);
        assert!(
            serial.contains("1 cells failed (budget 0)"),
            "unexpected message: {serial}"
        );
        for jobs in [2, 4, 8] {
            assert_eq!(serial, message(jobs), "jobs={jobs}");
        }
    }

    /// Regression (serial-ordering bug): checkpoint records used to be
    /// appended in completion order, so the file bytes depended on
    /// scheduling. The ordered commit buffer must make them identical for
    /// any worker count, including with per-injection events in the records.
    #[test]
    fn checkpoint_bytes_identical_across_job_counts() {
        use crate::resilience::CheckpointSpec;
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let bytes = |jobs: usize| {
            let path = scratch(&format!("ordered-commit-{jobs}.ckpt"));
            let spec = CampaignSpec {
                samples_per_cell: 15,
                seed: 41,
                threads: 1,
                record_events: true,
                target_ci_halfwidth: None,
                resilience: ResilienceSpec {
                    checkpoint: Some(CheckpointSpec::new(&path)),
                    ..ResilienceSpec::default()
                },
                progress: None,
                batch: 0,
                mac_tier: MacTier::Bitwise,
                adaptive: None,
            };
            ParallelCampaignRunner::new(&engine, &trace, &cfg, &TopOneMatch, spec)
                .with_jobs(jobs)
                .run()
                .unwrap();
            let data = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            data
        };
        let serial = bytes(1);
        for jobs in [2, 4, 8] {
            assert_eq!(
                serial,
                bytes(jobs),
                "checkpoint bytes diverge at jobs={jobs}"
            );
        }
    }

    /// The batched fault-cone path is a pure evaluation policy: outcomes,
    /// masking counts, and recorded per-injection events (perturbation bits
    /// included) must be identical to the dense resume path for any batch
    /// size and worker count.
    #[test]
    fn batched_campaign_matches_dense_path_bitwise() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let run = |batch: usize, jobs: usize| {
            let spec = CampaignSpec {
                samples_per_cell: 25,
                seed: 71,
                threads: jobs,
                record_events: true,
                batch,
                ..CampaignSpec::default()
            };
            let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
            result
                .cells
                .iter()
                .map(|c| {
                    let events: Vec<(usize, u32, u8)> = c
                        .events
                        .iter()
                        .map(|e| {
                            (
                                e.faulty_neurons,
                                e.max_perturbation.to_bits(),
                                e.outcome as u8,
                            )
                        })
                        .collect();
                    (c.node, c.masked, c.output_error, c.anomaly, events)
                })
                .collect::<Vec<_>>()
        };
        let dense = run(0, 1);
        for batch in [1, 7, 64] {
            for jobs in [1, 4] {
                assert_eq!(dense, run(batch, jobs), "batch={batch} jobs={jobs}");
            }
        }
    }

    /// The Fast-tier divergence metric is reported exactly when the Fast
    /// tier runs, and the Bitwise tier never fabricates one.
    #[test]
    fn fast_divergence_reported_only_for_fast_tier() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let run = |mac_tier: MacTier| {
            let spec = CampaignSpec {
                samples_per_cell: 5,
                seed: 3,
                threads: 1,
                mac_tier,
                ..CampaignSpec::default()
            };
            run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap()
        };
        assert_eq!(run(MacTier::Bitwise).fast_divergence, None);
        let fast = run(MacTier::Fast).fast_divergence.unwrap();
        // A measurement, not a guess: finite unless a kernel produced a NaN
        // mismatch, which this tiny all-finite workload cannot.
        assert!(fast.is_finite(), "divergence should be finite: {fast}");
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo > 0.38 && lo < 0.5);
        assert!(hi > 0.5 && hi < 0.62);
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo0, _) = wilson_interval(0, 10);
        assert!(lo0.abs() < 1e-12);
        let (_, hi1) = wilson_interval(10, 10);
        assert!((hi1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_recorded_when_requested() {
        let (engine, trace) = tiny_engine();
        let cfg = presets::nvdla_like();
        let spec = CampaignSpec {
            samples_per_cell: 10,
            seed: 3,
            threads: 1,
            record_events: true,
            target_ci_halfwidth: None,
            resilience: ResilienceSpec::default(),
            progress: None,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            adaptive: None,
        };
        let result = run_campaign(&engine, &trace, &cfg, &TopOneMatch, &spec).unwrap();
        let non_global: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.category != FfCategory::GlobalControl)
            .collect();
        assert!(non_global.iter().all(|c| c.events.len() == c.samples));
    }
}
