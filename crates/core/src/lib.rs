//! # fidelity-core
//!
//! The FIdelity resilience-analysis framework (He, Balaprakash, Li —
//! MICRO 2020): accurate software fault models for logic transient errors in
//! deep-learning accelerators, derived without RTL access.
//!
//! The crate implements the paper's pipeline end to end:
//!
//! * [`rfa`] — Reuse Factor Analysis (Algorithm 1) over the dataflow
//!   descriptions of `fidelity-accel`;
//! * [`models`] — the Table-II software fault models and their application
//!   to deployed networks;
//! * [`inject`] / [`campaign`] — fast trace/resume software fault injection
//!   and statistically-sized campaigns;
//! * [`adaptive`] — confidence-driven sequential campaign planning with
//!   Neyman wave allocation and a machine-checkable certificate;
//! * [`resilience`] — fault-tolerant campaign execution: panic isolation,
//!   per-injection watchdogs, checkpoint/resume;
//! * [`activeness`] — Eq. 1 (inactive-FF masking);
//! * [`fit`] — Eq. 2 (`Accelerator_FIT_rate`) and ISO-26262 budgeting;
//! * [`analysis`] — the full Fig.-3 flow;
//! * [`validate`] — Sec.-IV validation against the register-level golden
//!   reference of `fidelity-rtl`;
//! * [`naive`] — the single-architectural-bit-flip strawman for the
//!   Sec.-VI comparison.
//!
//! ## Example: reuse factors of the paper's Fig. 2 targets
//!
//! ```
//! use fidelity_accel::dataflow::NvdlaDataflow;
//! use fidelity_core::rfa::reuse_factor_analysis;
//!
//! let df = NvdlaDataflow::paper_config();
//! let a4 = reuse_factor_analysis(&df.example_a4()).unwrap();
//! assert_eq!(a4.rf(), 16); // k² parallel MAC units
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activeness;
pub mod adaptive;
pub mod analysis;
pub mod batch;
pub mod campaign;
pub mod fit;
pub mod inject;
#[cfg(feature = "loom_model")]
pub mod modelcheck;
pub mod models;
pub mod naive;
pub mod outcome;
pub mod protect;
pub mod report;
pub mod resilience;
pub mod rfa;
pub mod validate;
pub mod validate_systolic;

/// Re-exported register-level address arithmetic used when instantiating
/// software fault models for concrete RTL fault sites.
pub(crate) mod rtl_addr {
    pub use fidelity_rtl::layer::{input_addr, weight_addr};
}

pub use adaptive::{AdaptivePlan, ConfidenceCertificate, StratumCert};
pub use analysis::{analyze, ResilienceAnalysis};
pub use batch::{BatchStats, BatchedInjectionRunner};
pub use campaign::{
    run_campaign, CampaignResult, CampaignRunner, CampaignSpec, MacTier, ParallelCampaignRunner,
};
pub use fit::{accelerator_fit_rate, FitBreakdown, PAPER_RAW_FIT_PER_MB};
pub use models::{model_for, SoftwareFaultModel};
pub use outcome::{CorrectnessMetric, Outcome, TopOneMatch};
pub use resilience::{
    CellFailure, ChaosMode, ChaosSpec, CheckpointSpec, FailureReason, ResilienceSpec,
};
pub use rfa::{reuse_factor_analysis, RfaResult};
pub use validate::{predict, random_sites, validate_many, Prediction, ValidationReport};
