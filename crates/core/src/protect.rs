//! Selective-protection exploration — the paper's "Architectural Insights".
//!
//! The paper observes that once per-category FIT contributions are known,
//! a designer can (a) selectively protect only the FF categories that
//! contribute most, sized to a resilience target, and (b) adapt that choice
//! per workload, because the resilience-critical categories are workload
//! dependent. This module turns those observations into an optimization:
//! given a FIT breakdown and per-category protection costs, find the
//! cheapest category set whose protection meets a FIT target.

use fidelity_accel::ff::FfCategory;

use crate::fit::FitBreakdown;

/// Cost model for protecting one FF category (e.g. hardened flip-flops or
/// parity+retry), expressed as relative area overhead per protected FF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectionCost {
    /// Category being protected.
    pub category: FfCategory,
    /// Area overhead of protecting one FF of this category, relative to the
    /// unprotected FF (e.g. 0.4 = 40% larger cell).
    pub overhead: f64,
}

/// Default cost model: control state is cheap to harden (few, wide cells);
/// datapath pipeline registers are the bulk of the cost.
pub fn default_costs(categories: impl Iterator<Item = FfCategory>) -> Vec<ProtectionCost> {
    categories
        .map(|category| ProtectionCost {
            category,
            overhead: match category {
                FfCategory::GlobalControl => 0.25,
                FfCategory::LocalControl => 0.30,
                FfCategory::Datapath { .. } => 0.40,
            },
        })
        .collect()
}

/// One step of the greedy selection.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionStep {
    /// Category protected at this step.
    pub category: FfCategory,
    /// FIT removed by protecting it.
    pub fit_removed: f64,
    /// Area cost incurred (census fraction × overhead).
    pub cost: f64,
    /// Remaining FIT after this step.
    pub remaining_fit: f64,
}

/// Result of the selective-protection optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionPlan {
    /// Steps taken, in selection order.
    pub steps: Vec<ProtectionStep>,
    /// Whether the target was met.
    pub met_target: bool,
    /// FIT after all selected protections.
    pub final_fit: f64,
    /// Total relative area cost (Σ census fraction × overhead).
    pub total_cost: f64,
}

impl ProtectionPlan {
    /// The protected categories, in selection order.
    pub fn protected(&self) -> Vec<FfCategory> {
        self.steps.iter().map(|s| s.category).collect()
    }
}

/// Greedily selects FF categories to protect until the FIT rate drops to
/// `target_fit`, maximizing FIT-removed per unit cost at each step — the
/// paper's "selectively protecting only the FFs in these categories may be
/// sufficient to achieve a given resilience target while minimizing
/// system-level costs".
///
/// `census_fraction(cat)` supplies the FF population share used for the
/// cost term (`AcceleratorConfig::census` in practice).
pub fn plan_selective_protection(
    breakdown: &FitBreakdown,
    costs: &[ProtectionCost],
    census_fraction: impl Fn(FfCategory) -> f64,
    target_fit: f64,
) -> ProtectionPlan {
    let mut remaining: Vec<(FfCategory, f64)> = breakdown.per_category.clone();
    let mut fit = breakdown.total;
    let mut steps = Vec::new();
    let mut total_cost = 0.0;

    while fit > target_fit {
        // Pick the category with the best (FIT removed) / cost ratio.
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, (_, contribution))| *contribution > 0.0)
            .map(|(i, (cat, contribution))| {
                let overhead = costs
                    .iter()
                    .find(|c| c.category == *cat)
                    .map_or(0.4, |c| c.overhead);
                let cost = census_fraction(*cat) * overhead;
                (i, *cat, *contribution, cost)
            })
            .max_by(|a, b| {
                let ra = a.2 / a.3.max(1e-12);
                let rb = b.2 / b.3.max(1e-12);
                ra.total_cmp(&rb)
            });
        let Some((idx, category, contribution, cost)) = best else {
            break; // nothing left to protect
        };
        remaining.remove(idx);
        fit -= contribution;
        total_cost += cost;
        steps.push(ProtectionStep {
            category,
            fit_removed: contribution,
            cost,
            remaining_fit: fit,
        });
    }

    ProtectionPlan {
        steps,
        met_target: fit <= target_fit,
        final_fit: fit,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_accel::ff::{PipelineStage, VarType};
    use fidelity_accel::presets;

    fn breakdown() -> FitBreakdown {
        let dp = FfCategory::Datapath {
            stage: PipelineStage::AfterMac,
            var: VarType::Output,
        };
        let dp2 = FfCategory::Datapath {
            stage: PipelineStage::BufferToMac,
            var: VarType::Weight,
        };
        FitBreakdown {
            total: 10.0,
            datapath: 2.5,
            local: 0.5,
            global: 7.0,
            per_category: vec![
                (FfCategory::GlobalControl, 7.0),
                (dp, 2.0),
                (dp2, 0.5),
                (FfCategory::LocalControl, 0.5),
            ],
        }
    }

    #[test]
    fn global_control_is_protected_first() {
        let cfg = presets::nvdla_like();
        let costs = default_costs(cfg.census.iter().map(|(c, _)| c));
        let plan = plan_selective_protection(&breakdown(), &costs, |c| cfg.census.fraction(c), 2.0);
        assert!(plan.met_target);
        assert_eq!(plan.steps[0].category, FfCategory::GlobalControl);
        assert!(plan.final_fit <= 2.0);
    }

    #[test]
    fn tighter_targets_cost_more() {
        let cfg = presets::nvdla_like();
        let costs = default_costs(cfg.census.iter().map(|(c, _)| c));
        let loose =
            plan_selective_protection(&breakdown(), &costs, |c| cfg.census.fraction(c), 5.0);
        let tight =
            plan_selective_protection(&breakdown(), &costs, |c| cfg.census.fraction(c), 0.2);
        assert!(tight.total_cost > loose.total_cost);
        assert!(tight.steps.len() > loose.steps.len());
    }

    #[test]
    fn unreachable_target_reports_not_met() {
        let cfg = presets::nvdla_like();
        let costs = default_costs(cfg.census.iter().map(|(c, _)| c));
        let plan =
            plan_selective_protection(&breakdown(), &costs, |c| cfg.census.fraction(c), -1.0);
        assert!(!plan.met_target);
        // Everything protected.
        assert_eq!(plan.steps.len(), 4);
        assert!(plan.final_fit.abs() < 1e-9);
    }

    #[test]
    fn already_met_target_needs_no_steps() {
        let cfg = presets::nvdla_like();
        let costs = default_costs(cfg.census.iter().map(|(c, _)| c));
        let plan =
            plan_selective_protection(&breakdown(), &costs, |c| cfg.census.fraction(c), 100.0);
        assert!(plan.met_target);
        assert!(plan.steps.is_empty());
        assert_eq!(plan.total_cost, 0.0);
    }
}
