//! Adaptive confidence-driven campaign planning: stratified sequential
//! sampling with early termination and a machine-checkable certificate.
//!
//! The fixed-count campaign of [`crate::campaign`] spends the same number of
//! injections on every (layer × FF category) cell, although most cells
//! resolve their masking probability long before the budget runs out and a
//! few (high-variance, high-FIT-weight) cells deserve far more. This module
//! replaces the per-cell count with a *target accuracy*: sampling stops once
//! the campaign can bound its Eq.-2 FIT estimate to a requested ±ε at a
//! requested confidence level.
//!
//! **Stratification.** Each plan cell — one (MAC node × [`FfCategory`])
//! pair — is a stratum. Its Eq.-2 weight
//! `C_h = FIT_raw · N_ff · w_r · FF_Perc(cat) · (1 − Prob_inactive)` is
//! computed once up front (at the paper's raw FIT rate, so the weights are
//! identity: they do not depend on the raw-FIT scaling a caller later
//! applies); the stratum's FIT contribution is `C_h · (1 − p̂)` where `p̂` is
//! the observed `Prob_SWmask`, and its uncertainty contribution is
//! `C_h · hw` with `hw` the Wilson half-width of `p̂` at the plan's z. The
//! campaign has converged when `Σ_h C_h · hw_h ≤ ε`. Global-control strata
//! are never sampled (`Prob_SWmask = 0` by definition), contribute `C_h`
//! exactly, and carry zero uncertainty.
//!
//! **Allocation.** Waves of injections are sized from the running total
//! (wave 0 lays a floor of [`WAVE_FLOOR`] samples per stratum; each later
//! wave spends half the total so far, at least [`WAVE_MIN_BUDGET`]) and
//! split across strata proportionally to their current uncertainty
//! contribution — a Neyman-style allocation that buys the most bound
//! reduction per injection. Rounding remainders are distributed by a
//! seed-derived permutation, so the schedule is a pure function of
//! (seed, tallies) and bit-identical for any worker count.
//!
//! **Determinism and resume.** Each stratum owns the same SplitMix64 stream
//! it would own in a fixed-count campaign (so the first k adaptive samples
//! of a stratum are bit-identical to the fixed path's first k), and the
//! stream's state is persisted after every wave in a `fidelity-ackpt v1`
//! checkpoint. A killed campaign loses at most the wave in flight; resuming
//! replays the allocator from the recorded tallies and continues the exact
//! streams mid-way (via [`SplitMix64::state`]), producing byte-identical
//! results and checkpoint files.
//!
//! **Certificate.** A finished campaign emits a [`ConfidenceCertificate`]:
//! per-stratum n, p̂, CI half-width, FIT contribution ± bound, the total ε
//! achieved, and the campaign fingerprint. The certificate is recomputable
//! from the checkpoint alone — [`verify_checkpoint`] re-derives every term
//! offline and cross-checks the stored totals bit-for-bit, which is what
//! `fidelity statcheck --cert` runs.

use std::io::{self, BufRead, Write};

use fidelity_accel::arch::AcceleratorConfig;
use fidelity_accel::ff::FfCategory;
use fidelity_accel::perf::{extract_work, LayerTiming};
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::DnnError;
use fidelity_obs::stats::{wilson, z_for_confidence};

use crate::activeness::prob_inactive;
use crate::fit::PAPER_RAW_FIT_PER_MB;
use crate::models::SoftwareFaultModel;
use crate::resilience::{cat_code, model_code, parse_cat, parse_model};

/// Sampling floor laid by wave 0: every sampled stratum gets this many
/// injections before any adaptive decision, so a lucky early streak cannot
/// freeze a stratum's estimate on a handful of samples.
pub const WAVE_FLOOR: usize = 32;

/// Minimum injection budget of any wave after the floor wave: below this,
/// per-wave scheduling overhead dominates the statistics bought.
pub const WAVE_MIN_BUDGET: usize = 64;

/// Adaptive sampling policy for a campaign: run injection waves until the
/// total FIT-contribution uncertainty is below `epsilon`, or `max_injections`
/// is exhausted.
///
/// Fingerprint semantics (see `campaign_fingerprint`): `epsilon`,
/// `confidence`, and `max_injections` are campaign *identity* — they decide
/// which injections run, so checkpoints are only interchangeable between
/// equal plans. Wave batching (worker count, `--batch`) remains pure policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePlan {
    /// Target half-width on the total FIT contribution of the sampled
    /// strata, in the same FIT units Eq. 2 produces at
    /// [`PAPER_RAW_FIT_PER_MB`]. The campaign converges when
    /// `Σ_h C_h · hw_h ≤ ε`.
    pub epsilon: f64,
    /// Two-sided confidence level of the per-stratum Wilson intervals. Only
    /// levels with a pinned quantile are accepted (0.90, 0.95, 0.99 — see
    /// [`z_for_confidence`]).
    pub confidence: f64,
    /// Hard cap on total injections across all strata. Reaching it ends the
    /// campaign with an honest non-converged certificate.
    pub max_injections: usize,
}

impl AdaptivePlan {
    /// A plan targeting ±`epsilon` at 95% confidence with a one-million
    /// injection cap.
    pub fn new(epsilon: f64) -> Self {
        AdaptivePlan {
            epsilon,
            confidence: 0.95,
            max_injections: 1_000_000,
        }
    }

    /// Validates the plan and returns the standard-normal quantile of its
    /// confidence level.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::Campaign`] for a non-positive or non-finite ε, an
    /// unsupported confidence level, or a zero injection cap.
    pub fn validated_z(&self) -> Result<f64, DnnError> {
        let bad = |message: String| DnnError::Campaign { message };
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(bad(format!(
                "adaptive epsilon must be positive and finite, got {}",
                self.epsilon
            )));
        }
        if self.max_injections == 0 {
            return Err(bad("adaptive max_injections must be at least 1".into()));
        }
        z_for_confidence(self.confidence).ok_or_else(|| {
            bad(format!(
                "unsupported adaptive confidence level {} (use 0.90, 0.95, or 0.99)",
                self.confidence
            ))
        })
    }
}

/// One stratum of the adaptive plan, as pinned in the checkpoint header.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StratumMeta {
    /// Target node index.
    pub node: usize,
    /// FF category.
    pub category: FfCategory,
    /// Software fault model applied.
    pub model: SoftwareFaultModel,
    /// Eq.-2 identity weight `C_h` (at [`PAPER_RAW_FIT_PER_MB`]).
    pub weight: f64,
    /// Layer name (reporting only).
    pub layer: String,
}

impl StratumMeta {
    /// Whether the stratum is sampled at all (global control never is).
    pub fn sampled(&self) -> bool {
        self.category != FfCategory::GlobalControl
    }
}

/// The running tally of one stratum, including its RNG stream position.
#[derive(Debug, Clone)]
pub(crate) struct StratumTally {
    /// Injections run.
    pub samples: usize,
    /// Masked outcomes.
    pub masked: usize,
    /// Application output errors.
    pub output_error: usize,
    /// System anomalies.
    pub anomaly: usize,
    /// SplitMix64 state the stream continues from.
    pub rng_state: u64,
    /// A frozen stratum exhausted its retries; it keeps its last committed
    /// tally and receives no further allocation.
    pub frozen: bool,
}

impl StratumTally {
    /// A fresh tally at the start of the stratum's derived RNG stream.
    pub fn fresh(rng_state: u64) -> Self {
        StratumTally {
            samples: 0,
            masked: 0,
            output_error: 0,
            anomaly: 0,
            rng_state,
            frozen: false,
        }
    }
}

/// Eq.-2 identity weights `C_h` for every plan cell, computed at the paper's
/// raw FIT rate so they are independent of any caller-side scaling.
///
/// `plan` is the campaign's cell plan in plan order; the returned vector is
/// index-aligned with it.
pub(crate) fn stratum_weights(
    engine: &Engine,
    trace: &Trace,
    accel: &AcceleratorConfig,
    plan: &[(usize, FfCategory)],
) -> Vec<f64> {
    let work = extract_work(engine, trace);
    let precision = engine.precision();
    let mut nodes: Vec<usize> = plan.iter().map(|&(node, _)| node).collect();
    nodes.dedup();
    let timings: Vec<(usize, LayerTiming)> = nodes
        .iter()
        .map(|&node| (node, LayerTiming::analyze(accel, &work[node])))
        .collect();
    let total_exec: f64 = timings.iter().map(|(_, t)| t.total_cycles as f64).sum();
    let raw_total = PAPER_RAW_FIT_PER_MB * accel.ff_megabytes();
    plan.iter()
        .map(|&(node, category)| {
            let timing = timings
                .iter()
                .find(|(n, _)| *n == node)
                .map(|(_, t)| t)
                // Every plan node was timed just above.
                // statcheck:allow(panic-path)
                .expect("plan node timed");
            let w = if total_exec > 0.0 {
                timing.total_cycles as f64 / total_exec
            } else {
                0.0
            };
            let frac = accel.census.fraction(category);
            let inactive = prob_inactive(accel, category, timing, precision);
            raw_total * w * frac * (1.0 - inactive)
        })
        .collect()
}

/// The per-stratum certificate terms, derived from (weight, tally, z) —
/// shared by the running campaign and the offline verifier so both compute
/// bit-identical numbers.
pub(crate) fn stratum_terms(
    weight: f64,
    masked: usize,
    samples: usize,
    z: f64,
    sampled: bool,
) -> (f64, f64, f64, f64) {
    let p_hat = if samples == 0 {
        0.0
    } else {
        masked as f64 / samples as f64
    };
    let halfwidth = if sampled {
        let (lo, hi) = wilson(masked, samples, z);
        (hi - lo) / 2.0
    } else {
        0.0
    };
    let contribution = weight * (1.0 - p_hat);
    let bound = weight * halfwidth;
    (p_hat, halfwidth, contribution, bound)
}

// ---------------------------------------------------------------------------
// Wave allocation
// ---------------------------------------------------------------------------

/// A seed-derived rank for breaking allocation ties; a pure function of
/// (seed, wave, stratum), so the permutation replays exactly on resume.
fn tie_rank(seed: u64, wave: usize, stratum: usize) -> u64 {
    SplitMix64::new(
        seed ^ 0xADA7_11CE_5EED_0001u64.wrapping_mul(wave as u64 + 1)
            ^ (stratum as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
    .next_u64()
}

/// Splits `budget` injections evenly over `strata` (the floor wave), with
/// the remainder distributed by the seeded permutation. Returns
/// `(stratum index, quota)` pairs in stratum order, zero quotas omitted.
pub(crate) fn allocate_even(
    budget: usize,
    strata: &[usize],
    seed: u64,
    wave: usize,
) -> Vec<(usize, usize)> {
    if strata.is_empty() || budget == 0 {
        return Vec::new();
    }
    let per = budget / strata.len();
    let rem = budget % strata.len();
    let mut order: Vec<usize> = (0..strata.len()).collect();
    order.sort_by_key(|&i| (tie_rank(seed, wave, strata[i]), strata[i]));
    let mut quotas = vec![per; strata.len()];
    for &i in order.iter().take(rem) {
        quotas[i] += 1;
    }
    let mut out: Vec<(usize, usize)> = strata
        .iter()
        .zip(quotas)
        .filter(|&(_, q)| q > 0)
        .map(|(&s, q)| (s, q))
        .collect();
    out.sort_unstable_by_key(|&(s, _)| s);
    out
}

/// Neyman-style allocation: splits `budget` over `strata` proportionally to
/// each stratum's current uncertainty contribution `C_h · hw_h`, with
/// largest-remainder rounding and seeded tie-breaks. Returns
/// `(stratum index, quota)` pairs in stratum order, zero quotas omitted.
pub(crate) fn allocate_neyman(
    budget: usize,
    strata: &[(usize, f64)],
    seed: u64,
    wave: usize,
) -> Vec<(usize, usize)> {
    if strata.is_empty() || budget == 0 {
        return Vec::new();
    }
    let total: f64 = strata.iter().map(|&(_, b)| b).sum();
    if total <= 0.0 {
        return allocate_even(
            budget,
            &strata.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            seed,
            wave,
        );
    }
    let shares: Vec<f64> = strata
        .iter()
        .map(|&(_, b)| budget as f64 * (b / total))
        .collect();
    let mut quotas: Vec<usize> = shares.iter().map(|&s| s.floor() as usize).collect();
    let assigned: usize = quotas.iter().sum();
    let mut order: Vec<usize> = (0..strata.len()).collect();
    // Largest fractional remainder first; seeded permutation breaks exact
    // ties (total_cmp gives f64 a total order, so the sort is deterministic).
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.total_cmp(&fa)
            .then_with(|| tie_rank(seed, wave, strata[a].0).cmp(&tie_rank(seed, wave, strata[b].0)))
            .then_with(|| strata[a].0.cmp(&strata[b].0))
    });
    for &i in order.iter().take(budget.saturating_sub(assigned)) {
        quotas[i] += 1;
    }
    let mut out: Vec<(usize, usize)> = strata
        .iter()
        .zip(quotas)
        .filter(|&(_, q)| q > 0)
        .map(|(&(s, _), q)| (s, q))
        .collect();
    out.sort_unstable_by_key(|&(s, _)| s);
    out
}

// ---------------------------------------------------------------------------
// Checkpoint encoding (fidelity-ackpt v1)
// ---------------------------------------------------------------------------

/// Adaptive checkpoint magic + version line. Distinct from the fixed-count
/// `fidelity-ckpt v1` format: the two record different state (cumulative
/// wave tallies + RNG stream positions vs completed cells) and are not
/// interchangeable.
const ACKPT_HEADER: &str = "fidelity-ackpt v1";

/// One stratum's cumulative tally as recorded at a wave boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StratumRow {
    /// Injections run so far (absolute, not per-wave).
    pub samples: usize,
    /// Masked outcomes so far.
    pub masked: usize,
    /// Application output errors so far.
    pub output_error: usize,
    /// System anomalies so far.
    pub anomaly: usize,
    /// SplitMix64 state the stream continues from.
    pub rng_state: u64,
}

/// A stratum that exhausted its retries during a wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WaveFail {
    /// Stratum index.
    pub stratum: usize,
    /// Attempts made (first run + retries).
    pub attempts: usize,
    /// Failure kind tag (`panic` or `error`).
    pub kind: String,
    /// Full failure message (newlines flattened to spaces).
    pub message: String,
}

/// One committed wave: the cumulative tallies of every stratum that received
/// allocation, plus any strata frozen by failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WaveBlock {
    /// Wave index (0-based, contiguous).
    pub index: usize,
    /// `(stratum index, cumulative tally)` rows, sorted by stratum index.
    pub rows: Vec<(usize, StratumRow)>,
    /// Strata frozen during this wave, sorted by stratum index.
    pub fails: Vec<WaveFail>,
}

/// The certificate totals pinned in the checkpoint footer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CertFooter {
    /// Achieved total uncertainty bound (`Σ_h C_h · hw_h`), exact bits.
    pub total_bound: f64,
    /// Total injections across all strata.
    pub total_injections: usize,
    /// Waves run.
    pub waves: usize,
    /// Whether the bound met the plan's ε.
    pub converged: bool,
}

/// A parsed `fidelity-ackpt v1` checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct AdaptiveCheckpoint {
    /// Campaign fingerprint the checkpoint was written for.
    pub fingerprint: u64,
    /// Plan identity, exact bits.
    pub epsilon_bits: u64,
    /// Confidence level, exact bits.
    pub confidence_bits: u64,
    /// Injection cap.
    pub max_injections: usize,
    /// Wave-0 floor the schedule was derived with.
    pub floor: usize,
    /// Stratum metadata in plan order (weights as exact bits).
    pub strata: Vec<(StratumMeta, u64)>,
    /// Committed waves, in order.
    pub waves: Vec<WaveBlock>,
    /// The certificate footer, present once the campaign finished.
    pub footer: Option<CertFooter>,
}

/// Writes the checkpoint preamble: header, fingerprint, plan identity, and
/// the stratum table.
///
/// # Errors
///
/// Propagates I/O errors.
pub(crate) fn write_adaptive_header<W: Write>(
    w: &mut W,
    fingerprint: u64,
    plan: &AdaptivePlan,
    floor: usize,
    strata: &[StratumMeta],
) -> io::Result<()> {
    writeln!(w, "{ACKPT_HEADER}")?;
    writeln!(w, "fingerprint {fingerprint:016x}")?;
    writeln!(
        w,
        "plan {:016x} {:016x} {} {} {}",
        plan.epsilon.to_bits(),
        plan.confidence.to_bits(),
        plan.max_injections,
        floor,
        strata.len(),
    )?;
    for (idx, s) in strata.iter().enumerate() {
        writeln!(
            w,
            "stratum {idx} {} {} {} {:016x} {}",
            s.node,
            cat_code(s.category),
            model_code(&s.model),
            s.weight.to_bits(),
            s.layer,
        )?;
    }
    Ok(())
}

/// Appends one committed wave block, terminated by its `wdone` marker. A
/// block cut short by a kill lacks the marker and is dropped on parse.
///
/// # Errors
///
/// Propagates I/O errors.
pub(crate) fn write_wave<W: Write>(w: &mut W, wave: &WaveBlock) -> io::Result<()> {
    writeln!(w, "wave {}", wave.index)?;
    for (idx, row) in &wave.rows {
        writeln!(
            w,
            "w {idx} {} {} {} {} {:016x}",
            row.samples, row.masked, row.output_error, row.anomaly, row.rng_state,
        )?;
    }
    for f in &wave.fails {
        writeln!(
            w,
            "wfail {} {} {} {}",
            f.stratum,
            f.attempts,
            f.kind,
            f.message.replace('\n', " "),
        )?;
    }
    writeln!(w, "wdone {}", wave.index)
}

/// Appends the certificate footer, terminated by its `done cert` marker.
///
/// # Errors
///
/// Propagates I/O errors.
pub(crate) fn write_cert_footer<W: Write>(w: &mut W, footer: &CertFooter) -> io::Result<()> {
    writeln!(
        w,
        "cert {:016x} {} {} {}",
        footer.total_bound.to_bits(),
        footer.total_injections,
        footer.waves,
        u8::from(footer.converged),
    )?;
    writeln!(w, "done cert")
}

/// A heuristic for the final, torn line of a killed writer: any prefix of a
/// valid record keyword. Full garbage elsewhere in the file still errors.
fn line_is_torn_tail(line: &str) -> bool {
    [
        "plan", "stratum", "wave", "w", "wfail", "wdone", "cert", "done",
    ]
    .iter()
    .any(|kw| kw.starts_with(line.split_whitespace().next().unwrap_or("")))
}

/// Parses a `fidelity-ackpt v1` checkpoint, keeping only wave blocks whose
/// `wdone` marker made it to disk (a torn tail from a killed process is
/// silently dropped — the campaign simply re-runs the lost wave).
///
/// # Errors
///
/// Returns [`DnnError::Campaign`] on I/O errors, a bad header, or a
/// structurally malformed record (corruption rather than a torn tail).
pub(crate) fn parse_adaptive_checkpoint<R: BufRead>(r: R) -> Result<AdaptiveCheckpoint, DnnError> {
    let corrupt = |what: &str| DnnError::Campaign {
        message: format!("corrupt adaptive checkpoint: {what}"),
    };
    let mut lines = r.lines();
    let mut next_line = || -> Result<Option<String>, DnnError> {
        lines
            .next()
            .transpose()
            .map_err(|e| corrupt(&format!("read failed: {e}")))
    };
    let header = next_line()?.ok_or_else(|| corrupt("empty file"))?;
    if header != ACKPT_HEADER {
        return Err(corrupt(&format!("bad header `{header}`")));
    }
    let fp_line = next_line()?.ok_or_else(|| corrupt("missing fingerprint"))?;
    let fingerprint = fp_line
        .strip_prefix("fingerprint ")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| corrupt(&format!("bad fingerprint line `{fp_line}`")))?;
    let plan_line = next_line()?.ok_or_else(|| corrupt("missing plan line"))?;
    let (epsilon_bits, confidence_bits, max_injections, floor, nstrata) = plan_line
        .strip_prefix("plan ")
        .and_then(|rest| {
            let mut it = rest.split(' ');
            let eps = u64::from_str_radix(it.next()?, 16).ok()?;
            let conf = u64::from_str_radix(it.next()?, 16).ok()?;
            let max: usize = it.next()?.parse().ok()?;
            let floor: usize = it.next()?.parse().ok()?;
            let n: usize = it.next()?.parse().ok()?;
            it.next().is_none().then_some((eps, conf, max, floor, n))
        })
        .ok_or_else(|| corrupt(&format!("bad plan line `{plan_line}`")))?;

    let mut strata = Vec::with_capacity(nstrata.min(4096));
    for expect in 0..nstrata {
        let line = next_line()?.ok_or_else(|| corrupt("truncated stratum table"))?;
        let parsed = line.strip_prefix("stratum ").and_then(|rest| {
            // stratum <idx> <node> <cat> <model> <weight_bits> <layer...>
            let mut it = rest.splitn(6, ' ');
            let idx: usize = it.next()?.parse().ok()?;
            let node: usize = it.next()?.parse().ok()?;
            let category = parse_cat(it.next()?)?;
            let model = parse_model(it.next()?)?;
            let weight_bits = u64::from_str_radix(it.next()?, 16).ok()?;
            let layer = it.next()?.to_owned();
            Some((idx, node, category, model, weight_bits, layer))
        });
        let Some((idx, node, category, model, weight_bits, layer)) = parsed else {
            return Err(corrupt(&format!("bad stratum line `{line}`")));
        };
        if idx != expect {
            return Err(corrupt(&format!(
                "stratum table out of order (index {idx}, expected {expect})"
            )));
        }
        strata.push((
            StratumMeta {
                node,
                category,
                model,
                weight: f64::from_bits(weight_bits),
                layer,
            },
            weight_bits,
        ));
    }

    let mut waves: Vec<WaveBlock> = Vec::new();
    let mut pending: Option<WaveBlock> = None;
    let mut pending_footer: Option<CertFooter> = None;
    let mut footer = None;
    while let Some(line) = next_line().unwrap_or(None) {
        if let Some(rest) = line.strip_prefix("wave ") {
            // A new wave while one is pending means the previous block never
            // completed; a kill can only tear the *last* block, so anything
            // after a torn block is corruption.
            if pending.is_some() {
                return Err(corrupt(&format!(
                    "wave block without wdone before `{line}`"
                )));
            }
            let Some(index) = rest.trim().parse::<usize>().ok() else {
                if line_is_torn_tail(&line) {
                    break;
                }
                return Err(corrupt(&format!("bad wave line `{line}`")));
            };
            if index != waves.len() {
                return Err(corrupt(&format!(
                    "wave {index} out of order (expected {})",
                    waves.len()
                )));
            }
            pending = Some(WaveBlock {
                index,
                rows: Vec::new(),
                fails: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix("wfail ") {
            let parsed = (|| {
                let mut it = rest.splitn(4, ' ');
                let stratum: usize = it.next()?.parse().ok()?;
                let attempts: usize = it.next()?.parse().ok()?;
                let kind = it.next()?.to_owned();
                let message = it.next().unwrap_or("").to_owned();
                Some(WaveFail {
                    stratum,
                    attempts,
                    kind,
                    message,
                })
            })();
            match (pending.as_mut(), parsed) {
                (Some(block), Some(f)) => block.fails.push(f),
                // Torn mid-block, or a stray row whose `wave` header was
                // lost: drop the open block (if any) and stop.
                (Some(_), None) | (None, _) => break,
            }
        } else if let Some(rest) = line.strip_prefix("wdone ") {
            match pending.take() {
                Some(block) if rest.trim().parse::<usize>().ok() == Some(block.index) => {
                    waves.push(block);
                }
                // Mismatched marker: drop the block (torn), stop.
                _ => break,
            }
        } else if let Some(rest) = line.strip_prefix("w ") {
            let parsed = (|| {
                let mut it = rest.split(' ');
                let idx: usize = it.next()?.parse().ok()?;
                let samples: usize = it.next()?.parse().ok()?;
                let masked: usize = it.next()?.parse().ok()?;
                let output_error: usize = it.next()?.parse().ok()?;
                let anomaly: usize = it.next()?.parse().ok()?;
                let rng_state = u64::from_str_radix(it.next()?, 16).ok()?;
                it.next().is_none().then_some((
                    idx,
                    StratumRow {
                        samples,
                        masked,
                        output_error,
                        anomaly,
                        rng_state,
                    },
                ))
            })();
            match (pending.as_mut(), parsed) {
                (Some(block), Some((idx, row))) => block.rows.push((idx, row)),
                // Torn mid-block, or a stray row whose `wave` header was
                // lost: drop the open block (if any) and stop.
                (Some(_), None) | (None, _) => break,
            }
        } else if let Some(rest) = line.strip_prefix("cert ") {
            if pending.is_some() {
                return Err(corrupt("cert line inside an open wave block"));
            }
            pending_footer = rest
                .split(' ')
                .collect::<Vec<_>>()
                .as_slice()
                .try_into()
                .ok()
                .and_then(|[b, inj, wv, conv]: [&str; 4]| {
                    Some(CertFooter {
                        total_bound: f64::from_bits(u64::from_str_radix(b, 16).ok()?),
                        total_injections: inj.parse().ok()?,
                        waves: wv.parse().ok()?,
                        converged: match conv {
                            "0" => false,
                            "1" => true,
                            _ => return None,
                        },
                    })
                });
            if pending_footer.is_none() {
                if line_is_torn_tail(&line) {
                    break;
                }
                return Err(corrupt(&format!("bad cert line `{line}`")));
            }
        } else if line == "done cert" {
            footer = pending_footer.take();
        } else if line.trim().is_empty() {
            // Blank line: ignore.
        } else if line_is_torn_tail(&line) {
            break;
        } else {
            return Err(corrupt(&format!("unrecognized line `{line}`")));
        }
    }

    Ok(AdaptiveCheckpoint {
        fingerprint,
        epsilon_bits,
        confidence_bits,
        max_injections,
        floor,
        strata,
        waves,
        footer,
    })
}

// ---------------------------------------------------------------------------
// Confidence certificate
// ---------------------------------------------------------------------------

/// One stratum's entry in a [`ConfidenceCertificate`].
#[derive(Debug, Clone, PartialEq)]
pub struct StratumCert {
    /// Target node index.
    pub node: usize,
    /// Target layer name.
    pub layer: String,
    /// FF category.
    pub category: FfCategory,
    /// Injections run for this stratum.
    pub samples: usize,
    /// Masked outcomes.
    pub masked: usize,
    /// Eq.-2 identity weight `C_h` (at [`PAPER_RAW_FIT_PER_MB`]).
    pub weight: f64,
    /// Observed masking probability `p̂` (0 for unsampled strata).
    pub p_hat: f64,
    /// Wilson half-width of `p̂` at the plan's confidence level (0 for
    /// unsampled strata, whose `Prob_SWmask` is 0 by definition).
    pub ci_halfwidth: f64,
    /// FIT contribution `C_h · (1 − p̂)`.
    pub contribution: f64,
    /// Uncertainty contribution `C_h · hw` — the stratum's share of the
    /// total ε bound.
    pub bound: f64,
    /// Whether the stratum is sampled (global control never is).
    pub sampled: bool,
}

/// The machine-checkable result of an adaptive campaign: everything needed
/// to audit the claimed ±ε offline.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceCertificate {
    /// Campaign fingerprint the certificate belongs to.
    pub fingerprint: u64,
    /// The plan that produced it.
    pub plan: AdaptivePlan,
    /// Per-stratum terms, in plan order.
    pub strata: Vec<StratumCert>,
    /// Total injections across all strata.
    pub total_injections: usize,
    /// Waves run.
    pub waves: usize,
    /// Total FIT estimate `Σ_h C_h · (1 − p̂_h)` at [`PAPER_RAW_FIT_PER_MB`].
    pub total_fit: f64,
    /// Achieved total uncertainty bound `Σ_h C_h · hw_h`.
    pub total_bound: f64,
    /// Whether `total_bound ≤ ε`.
    pub converged: bool,
}

impl ConfidenceCertificate {
    /// A canonical, deterministic byte serialization (floats as exact bit
    /// patterns) — the unit the determinism tests compare across worker
    /// counts and resume paths.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str("fidelity-cert v1\n");
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!(
            "plan {:016x} {:016x} {}\n",
            self.plan.epsilon.to_bits(),
            self.plan.confidence.to_bits(),
            self.plan.max_injections,
        ));
        for (idx, s) in self.strata.iter().enumerate() {
            out.push_str(&format!(
                "stratum {idx} {} {} {} {} {:016x} {:016x} {:016x} {:016x} {:016x} {} {}\n",
                s.node,
                cat_code(s.category),
                s.samples,
                s.masked,
                s.weight.to_bits(),
                s.p_hat.to_bits(),
                s.ci_halfwidth.to_bits(),
                s.contribution.to_bits(),
                s.bound.to_bits(),
                u8::from(s.sampled),
                s.layer,
            ));
        }
        out.push_str(&format!(
            "total {:016x} {:016x} {} {} {}\n",
            self.total_fit.to_bits(),
            self.total_bound.to_bits(),
            self.total_injections,
            self.waves,
            u8::from(self.converged),
        ));
        out.into_bytes()
    }

    /// Renders the certificate as a human-readable per-stratum table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Confidence certificate (fingerprint {:016x})\n",
            self.fingerprint
        ));
        out.push_str(&format!(
            "  target ±{:.6} FIT at {:.0}% confidence, cap {} injections\n",
            self.plan.epsilon,
            self.plan.confidence * 100.0,
            self.plan.max_injections,
        ));
        out.push_str(&format!(
            "  {}: bound {:.6} FIT after {} injections in {} waves\n\n",
            if self.converged {
                "CONVERGED"
            } else {
                "NOT CONVERGED"
            },
            self.total_bound,
            self.total_injections,
            self.waves,
        ));
        out.push_str(&format!(
            "{:<16} {:<8} {:>8} {:>8} {:>10} {:>12} {:>12}\n",
            "layer", "category", "n", "p^", "ci +/-", "FIT", "bound +/-"
        ));
        for s in &self.strata {
            out.push_str(&format!(
                "{:<16} {:<8} {:>8} {:>8.4} {:>10.5} {:>12.5} {:>12.6}\n",
                s.layer,
                cat_code(s.category),
                s.samples,
                s.p_hat,
                s.ci_halfwidth,
                s.contribution,
                s.bound,
            ));
        }
        out.push_str(&format!(
            "{:<16} {:<8} {:>8} {:>8} {:>10} {:>12.5} {:>12.6}\n",
            "total", "", self.total_injections, "", "", self.total_fit, self.total_bound,
        ));
        out
    }
}

/// Builds the certificate from the final stratum tallies — the same
/// arithmetic [`verify_checkpoint`] re-runs offline.
pub(crate) fn build_certificate(
    fingerprint: u64,
    plan: &AdaptivePlan,
    z: f64,
    strata: &[StratumMeta],
    tallies: &[(usize, usize)],
    waves: usize,
) -> ConfidenceCertificate {
    let mut certs = Vec::with_capacity(strata.len());
    let mut total_fit = 0.0f64;
    let mut total_bound = 0.0f64;
    let mut total_injections = 0usize;
    for (meta, &(samples, masked)) in strata.iter().zip(tallies) {
        let (p_hat, ci_halfwidth, contribution, bound) =
            stratum_terms(meta.weight, masked, samples, z, meta.sampled());
        total_fit += contribution;
        total_bound += bound;
        total_injections += samples;
        certs.push(StratumCert {
            node: meta.node,
            layer: meta.layer.clone(),
            category: meta.category,
            samples,
            masked,
            weight: meta.weight,
            p_hat,
            ci_halfwidth,
            contribution,
            bound,
            sampled: meta.sampled(),
        });
    }
    ConfidenceCertificate {
        fingerprint,
        plan: plan.clone(),
        strata: certs,
        total_injections,
        waves,
        total_fit,
        total_bound,
        converged: total_bound <= plan.epsilon,
    }
}

/// Re-verifies an adaptive checkpoint offline and returns the certificate
/// it vouches for — the engine behind `fidelity statcheck --cert`.
///
/// Every invariant the running campaign maintains is re-checked from the
/// file alone: wave blocks contiguous and internally ordered, tallies
/// monotone and self-consistent, frozen strata never re-allocated, the
/// recomputed total bound bit-identical to the stored footer, the converged
/// flag consistent with ε, and the injection total within the cap.
///
/// # Errors
///
/// Returns [`DnnError::Campaign`] describing the first violated invariant,
/// or a parse error for a structurally corrupt file.
pub fn verify_checkpoint<R: BufRead>(r: R) -> Result<ConfidenceCertificate, DnnError> {
    let ckpt = parse_adaptive_checkpoint(r)?;
    let fail = |message: String| DnnError::Campaign {
        message: format!("certificate verification failed: {message}"),
    };
    let plan = AdaptivePlan {
        epsilon: f64::from_bits(ckpt.epsilon_bits),
        confidence: f64::from_bits(ckpt.confidence_bits),
        max_injections: ckpt.max_injections,
    };
    let z = plan.validated_z().map_err(|e| fail(e.to_string()))?;
    let footer = ckpt
        .footer
        .ok_or_else(|| fail("checkpoint has no certificate footer (campaign unfinished)".into()))?;

    // Replay the wave blocks, checking monotonicity and freeze discipline.
    let n = ckpt.strata.len();
    let mut tallies: Vec<(usize, usize)> = vec![(0, 0); n]; // (samples, masked)
    let mut outcome_sum: Vec<(usize, usize)> = vec![(0, 0); n]; // (output_error, anomaly)
    let mut frozen = vec![false; n];
    for block in &ckpt.waves {
        let mut prev_idx = None;
        for (idx, row) in &block.rows {
            if *idx >= n {
                return Err(fail(format!(
                    "wave {}: stratum {idx} out of range",
                    block.index
                )));
            }
            if prev_idx.is_some_and(|p| p >= *idx) {
                return Err(fail(format!(
                    "wave {}: rows not in stratum order",
                    block.index
                )));
            }
            prev_idx = Some(*idx);
            let meta = &ckpt.strata[*idx].0;
            if !meta.sampled() {
                return Err(fail(format!(
                    "wave {}: unsampled (global-control) stratum {idx} was allocated",
                    block.index
                )));
            }
            if frozen[*idx] {
                return Err(fail(format!(
                    "wave {}: frozen stratum {idx} was re-allocated",
                    block.index
                )));
            }
            if row.masked + row.output_error + row.anomaly != row.samples {
                return Err(fail(format!(
                    "wave {}: stratum {idx} outcomes do not sum to its samples",
                    block.index
                )));
            }
            let (prev_samples, prev_masked) = tallies[*idx];
            if row.samples <= prev_samples && !(row.samples == 0 && prev_samples == 0) {
                return Err(fail(format!(
                    "wave {}: stratum {idx} samples not increasing ({prev_samples} -> {})",
                    block.index, row.samples
                )));
            }
            if row.masked < prev_masked {
                return Err(fail(format!(
                    "wave {}: stratum {idx} masked count decreased",
                    block.index
                )));
            }
            tallies[*idx] = (row.samples, row.masked);
            outcome_sum[*idx] = (row.output_error, row.anomaly);
        }
        for f in &block.fails {
            if f.stratum >= n {
                return Err(fail(format!(
                    "wave {}: failed stratum {} out of range",
                    block.index, f.stratum
                )));
            }
            frozen[f.stratum] = true;
        }
    }

    let cert = build_certificate(
        ckpt.fingerprint,
        &plan,
        z,
        &ckpt
            .strata
            .iter()
            .map(|(m, _)| m.clone())
            .collect::<Vec<_>>(),
        &tallies,
        ckpt.waves.len(),
    );
    if cert.total_bound.to_bits() != footer.total_bound.to_bits() {
        return Err(fail(format!(
            "recomputed total bound {} != stored {} (bit mismatch)",
            cert.total_bound, footer.total_bound
        )));
    }
    if cert.total_injections != footer.total_injections {
        return Err(fail(format!(
            "recomputed injection total {} != stored {}",
            cert.total_injections, footer.total_injections
        )));
    }
    if ckpt.waves.len() != footer.waves {
        return Err(fail(format!(
            "checkpoint has {} waves but footer claims {}",
            ckpt.waves.len(),
            footer.waves
        )));
    }
    if cert.converged != footer.converged {
        return Err(fail(format!(
            "converged flag {} inconsistent with bound {} vs epsilon {}",
            footer.converged, cert.total_bound, plan.epsilon
        )));
    }
    if cert.total_injections > plan.max_injections {
        return Err(fail(format!(
            "injection total {} exceeds the plan cap {}",
            cert.total_injections, plan.max_injections
        )));
    }
    Ok(cert)
}

/// Opens and verifies an adaptive checkpoint file; see [`verify_checkpoint`].
///
/// # Errors
///
/// As [`verify_checkpoint`], plus I/O errors opening the file.
pub fn verify_checkpoint_file(path: &std::path::Path) -> Result<ConfidenceCertificate, DnnError> {
    let file = std::fs::File::open(path).map_err(|e| DnnError::Campaign {
        message: format!("cannot open adaptive checkpoint {}: {e}", path.display()),
    })?;
    verify_checkpoint(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_accel::ff::{PipelineStage, VarType};

    fn meta(node: usize, category: FfCategory, weight: f64) -> StratumMeta {
        StratumMeta {
            node,
            category,
            model: match category {
                FfCategory::GlobalControl => SoftwareFaultModel::GlobalControl,
                FfCategory::LocalControl => SoftwareFaultModel::LocalControl,
                FfCategory::Datapath { .. } => SoftwareFaultModel::OutputValue,
            },
            weight,
            layer: format!("layer{node}"),
        }
    }

    fn dp() -> FfCategory {
        FfCategory::Datapath {
            stage: PipelineStage::BeforeBuffer,
            var: VarType::Input,
        }
    }

    #[test]
    fn plan_validation_rejects_bad_parameters() {
        assert!(AdaptivePlan::new(0.01).validated_z().is_ok());
        assert!(AdaptivePlan::new(0.0).validated_z().is_err());
        assert!(AdaptivePlan::new(-1.0).validated_z().is_err());
        assert!(AdaptivePlan::new(f64::NAN).validated_z().is_err());
        let mut p = AdaptivePlan::new(0.01);
        p.confidence = 0.42;
        assert!(p.validated_z().is_err());
        let mut p = AdaptivePlan::new(0.01);
        p.max_injections = 0;
        assert!(p.validated_z().is_err());
        let mut p = AdaptivePlan::new(0.01);
        p.confidence = 0.99;
        assert!(p.validated_z().is_ok());
    }

    #[test]
    fn even_allocation_is_exact_and_deterministic() {
        let strata = [0usize, 2, 5];
        let a = allocate_even(10, &strata, 7, 0);
        let b = allocate_even(10, &strata, 7, 0);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|&(_, q)| q).sum::<usize>(), 10);
        // In stratum order, every stratum within one of the mean.
        let mut prev = None;
        for &(s, q) in &a {
            assert!(prev.is_none_or(|p| p < s));
            prev = Some(s);
            assert!((3..=4).contains(&q), "quota {q}");
        }
        // Different seeds may permute the remainder.
        let c = allocate_even(10, &strata, 8, 0);
        assert_eq!(c.iter().map(|&(_, q)| q).sum::<usize>(), 10);
    }

    #[test]
    fn neyman_allocation_follows_uncertainty() {
        let strata = [(0usize, 9.0), (1, 1.0)];
        let quotas = allocate_neyman(100, &strata, 3, 1);
        assert_eq!(quotas.iter().map(|&(_, q)| q).sum::<usize>(), 100);
        let q0 = quotas.iter().find(|&&(s, _)| s == 0).map_or(0, |&(_, q)| q);
        let q1 = quotas.iter().find(|&&(s, _)| s == 1).map_or(0, |&(_, q)| q);
        assert_eq!(q0, 90);
        assert_eq!(q1, 10);
        // Zero total uncertainty degrades to an even split.
        let flat = allocate_neyman(10, &[(0, 0.0), (1, 0.0)], 3, 1);
        assert_eq!(flat.iter().map(|&(_, q)| q).sum::<usize>(), 10);
    }

    #[test]
    fn checkpoint_round_trips_including_footer() {
        let plan = AdaptivePlan::new(0.005);
        let strata = vec![meta(0, dp(), 1.5), meta(0, FfCategory::GlobalControl, 0.25)];
        let mut buf = Vec::new();
        write_adaptive_header(&mut buf, 0xABCD, &plan, WAVE_FLOOR, &strata).unwrap();
        let wave = WaveBlock {
            index: 0,
            rows: vec![(
                0,
                StratumRow {
                    samples: 32,
                    masked: 30,
                    output_error: 2,
                    anomaly: 0,
                    rng_state: 0xDEAD_BEEF,
                },
            )],
            fails: vec![WaveFail {
                stratum: 0,
                attempts: 2,
                kind: "panic".into(),
                message: "chaos: deliberate panic".into(),
            }],
        };
        write_wave(&mut buf, &wave).unwrap();
        let footer = CertFooter {
            total_bound: 0.123,
            total_injections: 32,
            waves: 1,
            converged: false,
        };
        write_cert_footer(&mut buf, &footer).unwrap();
        let parsed = parse_adaptive_checkpoint(&buf[..]).unwrap();
        assert_eq!(parsed.fingerprint, 0xABCD);
        assert_eq!(parsed.epsilon_bits, plan.epsilon.to_bits());
        assert_eq!(parsed.confidence_bits, plan.confidence.to_bits());
        assert_eq!(parsed.max_injections, plan.max_injections);
        assert_eq!(parsed.floor, WAVE_FLOOR);
        assert_eq!(parsed.strata.len(), 2);
        assert_eq!(parsed.strata[0].0, strata[0]);
        assert_eq!(parsed.waves.len(), 1);
        assert_eq!(parsed.waves[0], wave);
        assert_eq!(parsed.footer, Some(footer));
    }

    #[test]
    fn torn_wave_block_is_dropped_not_fatal() {
        let plan = AdaptivePlan::new(0.01);
        let strata = vec![meta(0, dp(), 1.0)];
        let mut buf = Vec::new();
        write_adaptive_header(&mut buf, 1, &plan, WAVE_FLOOR, &strata).unwrap();
        let row = StratumRow {
            samples: 32,
            masked: 16,
            output_error: 16,
            anomaly: 0,
            rng_state: 7,
        };
        write_wave(
            &mut buf,
            &WaveBlock {
                index: 0,
                rows: vec![(0, row.clone())],
                fails: vec![],
            },
        )
        .unwrap();
        let full = String::from_utf8(buf).unwrap();
        // Kill mid-write of a second wave: header + partial tally row.
        for torn_tail in ["wave 1\n", "wave 1\nw 0 64 3", "wav", "w 0 64 32 3"] {
            let torn = format!("{full}{torn_tail}");
            let parsed = parse_adaptive_checkpoint(torn.as_bytes()).unwrap();
            assert_eq!(parsed.waves.len(), 1, "tail {torn_tail:?}");
            assert_eq!(parsed.waves[0].rows[0].1, row);
            assert!(parsed.footer.is_none());
        }
        // Genuine garbage still errors.
        let garbage = format!("{full}lorem ipsum\n");
        assert!(parse_adaptive_checkpoint(garbage.as_bytes()).is_err());
    }

    #[test]
    fn verify_accepts_a_consistent_checkpoint_and_rejects_tampering() {
        let plan = AdaptivePlan::new(10.0); // generous: one wave converges
        let z = plan.validated_z().unwrap();
        let strata = vec![meta(0, dp(), 2.0), meta(0, FfCategory::GlobalControl, 0.5)];
        let tallies = [(40usize, 30usize), (0, 0)];
        let cert = build_certificate(9, &plan, z, &strata, &tallies, 1);
        assert!(cert.converged);
        let mut buf = Vec::new();
        write_adaptive_header(&mut buf, 9, &plan, WAVE_FLOOR, &strata).unwrap();
        write_wave(
            &mut buf,
            &WaveBlock {
                index: 0,
                rows: vec![(
                    0,
                    StratumRow {
                        samples: 40,
                        masked: 30,
                        output_error: 10,
                        anomaly: 0,
                        rng_state: 1,
                    },
                )],
                fails: vec![],
            },
        )
        .unwrap();
        write_cert_footer(
            &mut buf,
            &CertFooter {
                total_bound: cert.total_bound,
                total_injections: cert.total_injections,
                waves: 1,
                converged: cert.converged,
            },
        )
        .unwrap();
        let ok = String::from_utf8(buf).unwrap();
        let verified = verify_checkpoint(ok.as_bytes()).unwrap();
        assert_eq!(verified, cert);

        // Tamper with the masked count: the stored bound no longer matches.
        let tampered = ok.replace("w 0 40 30 10 0", "w 0 40 35 5 0");
        let err = verify_checkpoint(tampered.as_bytes())
            .unwrap_err()
            .to_string();
        assert!(err.contains("total bound"), "unexpected: {err}");

        // Tamper with the converged flag.
        let unconverged = ok.replace(" 1\ndone cert", " 0\ndone cert");
        let err = verify_checkpoint(unconverged.as_bytes())
            .unwrap_err()
            .to_string();
        assert!(err.contains("converged flag"), "unexpected: {err}");

        // An unfinished checkpoint (no footer) cannot certify anything.
        let unfinished = ok
            .lines()
            .take_while(|l| !l.starts_with("cert "))
            .collect::<Vec<_>>()
            .join("\n");
        let err = verify_checkpoint(unfinished.as_bytes())
            .unwrap_err()
            .to_string();
        assert!(err.contains("no certificate footer"), "unexpected: {err}");
    }

    #[test]
    fn verify_rejects_global_and_frozen_allocation() {
        let plan = AdaptivePlan::new(0.001);
        let strata = vec![meta(0, dp(), 2.0), meta(0, FfCategory::GlobalControl, 0.5)];
        let mut buf = Vec::new();
        write_adaptive_header(&mut buf, 9, &plan, WAVE_FLOOR, &strata).unwrap();
        let row = |samples, masked| StratumRow {
            samples,
            masked,
            output_error: samples - masked,
            anomaly: 0,
            rng_state: 1,
        };
        // Global-control stratum allocated: invalid.
        let mut bad = buf.clone();
        write_wave(
            &mut bad,
            &WaveBlock {
                index: 0,
                rows: vec![(1, row(8, 0))],
                fails: vec![],
            },
        )
        .unwrap();
        write_cert_footer(
            &mut bad,
            &CertFooter {
                total_bound: 0.0,
                total_injections: 8,
                waves: 1,
                converged: false,
            },
        )
        .unwrap();
        let err = verify_checkpoint(&bad[..]).unwrap_err().to_string();
        assert!(err.contains("global-control"), "unexpected: {err}");

        // A frozen stratum re-allocated on a later wave: invalid.
        let mut bad = buf.clone();
        write_wave(
            &mut bad,
            &WaveBlock {
                index: 0,
                rows: vec![(0, row(8, 4))],
                fails: vec![WaveFail {
                    stratum: 0,
                    attempts: 2,
                    kind: "panic".into(),
                    message: "boom".into(),
                }],
            },
        )
        .unwrap();
        write_wave(
            &mut bad,
            &WaveBlock {
                index: 1,
                rows: vec![(0, row(16, 8))],
                fails: vec![],
            },
        )
        .unwrap();
        write_cert_footer(
            &mut bad,
            &CertFooter {
                total_bound: 0.0,
                total_injections: 16,
                waves: 2,
                converged: false,
            },
        )
        .unwrap();
        let err = verify_checkpoint(&bad[..]).unwrap_err().to_string();
        assert!(err.contains("frozen"), "unexpected: {err}");

        // Shrinking samples: invalid.
        let mut bad = buf;
        write_wave(
            &mut bad,
            &WaveBlock {
                index: 0,
                rows: vec![(0, row(8, 4))],
                fails: vec![],
            },
        )
        .unwrap();
        write_wave(
            &mut bad,
            &WaveBlock {
                index: 1,
                rows: vec![(0, row(4, 2))],
                fails: vec![],
            },
        )
        .unwrap();
        write_cert_footer(
            &mut bad,
            &CertFooter {
                total_bound: 0.0,
                total_injections: 4,
                waves: 2,
                converged: false,
            },
        )
        .unwrap();
        let err = verify_checkpoint(&bad[..]).unwrap_err().to_string();
        assert!(err.contains("not increasing"), "unexpected: {err}");
    }

    #[test]
    fn certificate_bytes_are_deterministic_and_render_is_sane() {
        let plan = AdaptivePlan::new(0.005);
        let z = plan.validated_z().unwrap();
        let strata = vec![meta(0, dp(), 2.0), meta(1, FfCategory::GlobalControl, 0.5)];
        let cert = build_certificate(5, &plan, z, &strata, &[(100, 90), (0, 0)], 3);
        assert_eq!(cert.canonical_bytes(), cert.canonical_bytes());
        // The global stratum contributes its full weight with zero bound.
        assert_eq!(cert.strata[1].contribution, 0.5);
        assert_eq!(cert.strata[1].bound, 0.0);
        assert_eq!(cert.total_injections, 100);
        let text = cert.render();
        assert!(text.contains("layer0"));
        assert!(text.contains("NOT CONVERGED") || text.contains("CONVERGED"));
        assert!(text.contains("fingerprint 0000000000000005"));
    }
}
