//! Deterministic interleaving model of the ordered checkpoint commit.
//!
//! The campaign's `OrderedCommit` ([`crate::campaign`]) parks out-of-order
//! cell completions until every lower plan index has committed or skipped,
//! then drains contiguously — so the checkpoint file is always the byte
//! prefix a serial run would have written, no matter how workers are
//! scheduled. This module re-expresses that cursor/pending protocol against
//! the `loom` model `Mutex` (the file write becomes an append to an
//! in-memory `written` log) and lets the model scheduler enumerate every
//! interleaving of worker commits.
//!
//! Checked invariants, in every explored interleaving:
//!
//! - **write-order determinism**: the `written` sequence equals plan order
//!   with the skipped cell absent — identical across all schedules, which
//!   is exactly the checkpoint-byte determinism the resume path relies on;
//! - **drain completeness**: after the last commit, the cursor has passed
//!   every cell and nothing is left parked in `pending`;
//! - **skip semantics**: a failed cell advances the cursor without a
//!   record, so later cells still drain.

use std::collections::BTreeMap;

use loom::model::sync::{Arc, Mutex};
use loom::model::thread;

/// `OrderedCommit` with the `BufWriter<File>` replaced by a write log.
struct ModelCommit {
    written: Vec<usize>,
    cursor: usize,
    pending: BTreeMap<usize, Option<usize>>,
}

impl ModelCommit {
    /// Mirrors `OrderedCommit::commit`: park, then drain the contiguous run.
    fn commit(&mut self, idx: usize, entry: Option<usize>) {
        self.pending.insert(idx, entry);
        while let Some(slot) = self.pending.remove(&self.cursor) {
            if slot.is_some() {
                self.written.push(self.cursor);
            }
            self.cursor += 1;
        }
    }
}

/// One model execution: two workers complete a 5-cell plan out of order
/// (worker A: cells 2, 0, 4; worker B: cell 3, then cell 1 as a failure
/// skip), every commit behind the shared lock, full check after the join.
fn run_model() {
    let state = Arc::new(Mutex::new(ModelCommit {
        written: Vec::new(),
        cursor: 0,
        pending: BTreeMap::new(),
    }));
    let a = {
        let state = Arc::clone(&state);
        thread::spawn(move || {
            for idx in [2usize, 0, 4] {
                state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .commit(idx, Some(idx));
            }
        })
    };
    let b = {
        let state = Arc::clone(&state);
        thread::spawn(move || {
            state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .commit(3, Some(3));
            // Cell 1 failed: commits as a skip, cursor must still advance.
            state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .commit(1, None);
        })
    };
    a.join().expect("worker A panicked");
    b.join().expect("worker B panicked");
    let st = state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert_eq!(
        st.written,
        vec![0, 2, 3, 4],
        "checkpoint bytes depend on scheduling"
    );
    assert_eq!(st.cursor, 5, "cursor did not pass the whole plan");
    assert!(st.pending.is_empty(), "completed cells left parked");
}

/// Exhaustively model-checks the out-of-order flush protocol. Panics on
/// the first interleaving whose write log deviates from plan order.
pub fn ordered_commit_exhaustive() -> loom::Report {
    loom::Builder::default().check(run_model)
}
