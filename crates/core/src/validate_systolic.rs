//! Validation of software fault models against the Eyeriss-like systolic
//! golden reference — the same Sec.-IV methodology as [`crate::validate`],
//! applied to a second, structurally different dataflow. This is the
//! framework's portability claim made executable: only the schedule
//! interpretation changes; the comparison criteria are identical.

use fidelity_accel::ff::FfCategory;
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::macspec::{OperandKind, Operands, Substitution};
use fidelity_rtl::{ObservedFault, SysFaultSite, SysFfId, SysSchedPoint, SystolicEngine};

use crate::validate::{Agreement, Prediction, ValidationReport};

/// Derives the software-model prediction for a systolic fault site.
pub fn predict_systolic(engine: &SystolicEngine, site: SysFaultSite) -> Prediction {
    let layer = engine.layer();
    let spec = &layer.spec;
    let cfgw = layer.config_words();
    let k = engine.pe_rows() as u64;
    let t = engine.chan_reuse() as u64;
    let (out_c, out_h, out_w) = (
        spec.channel_count() as u64,
        (spec.position_count() as u64) / spec_out_w(spec),
        spec_out_w(spec),
    );
    let operands = Operands {
        input: &layer.input,
        weight: &layer.weight,
    };
    let flip = |codec: fidelity_dnn::precision::ValueCodec, v: f32| {
        codec.decode(codec.encode(v) ^ (1u32 << site.bit.min(31)))
    };
    let sched = engine.schedule_at(site.cycle);

    let finish = |offsets: Vec<usize>, values: Vec<Option<f32>>| -> Prediction {
        let clean = engine.clean_output();
        let mut o = Vec::new();
        let mut v = Vec::new();
        for (off, val) in offsets.into_iter().zip(values) {
            match val {
                Some(p) => {
                    let c = clean.data()[off];
                    if p.is_nan() || c.is_nan() || (p - c).abs() > 0.0 {
                        o.push(off);
                        v.push(Some(p));
                    }
                }
                None => {
                    o.push(off);
                    v.push(None);
                }
            }
        }
        if o.is_empty() {
            Prediction::Masked
        } else {
            Prediction::Neurons {
                offsets: o,
                values: v,
            }
        }
    };

    match site.ff {
        SysFfId::FetchInput => match sched {
            SysSchedPoint::FetchInput { index } => {
                let faulty = flip(layer.input_codec, layer.input.data()[index]);
                let subst = Substitution {
                    kind: OperandKind::Input,
                    offset: index,
                    value: faulty,
                };
                let users = spec.neurons_using_input(index);
                let values = users
                    .iter()
                    .map(|&off| {
                        Some(layer.output_codec.quantize(spec.compute_at(
                            &operands,
                            off,
                            Some(&subst),
                        )))
                    })
                    .collect();
                finish(users, values)
            }
            _ => Prediction::Masked,
        },
        SysFfId::FetchWeight => match sched {
            SysSchedPoint::FetchWeight { index } => {
                let faulty = flip(layer.weight_codec, layer.weight.data()[index]);
                let subst = Substitution {
                    kind: OperandKind::Weight,
                    offset: index,
                    value: faulty,
                };
                let users = spec.neurons_using_weight(index);
                let values = users
                    .iter()
                    .map(|&off| {
                        Some(layer.output_codec.quantize(spec.compute_at(
                            &operands,
                            off,
                            Some(&subst),
                        )))
                    })
                    .collect();
                finish(users, values)
            }
            _ => Prediction::Masked,
        },
        SysFfId::InputOperand { pe } => match sched {
            SysSchedPoint::Compute {
                chan_block,
                row_block,
                column,
                kstep,
                tc,
                t_eff,
            } => {
                let row = row_block * k + pe as u64;
                if row >= out_h {
                    return Prediction::Masked;
                }
                let p = row * out_w + column;
                let Some(addr) = crate::rtl_addr::input_addr(&cfgw, p, kstep, layer.input.len())
                else {
                    return Prediction::Masked;
                };
                let faulty = flip(layer.input_codec, layer.input.data()[addr as usize]);
                let subst = Substitution {
                    kind: OperandKind::Input,
                    offset: addr as usize,
                    value: faulty,
                };
                // The register holds this value for the remaining channel
                // slots of the current kernel step.
                let mut offsets = Vec::new();
                let mut values = Vec::new();
                for tcc in tc..t_eff {
                    let c = chan_block * t + tcc;
                    if c >= out_c {
                        continue;
                    }
                    let off = spec.offset_of(p as usize, c as usize);
                    offsets.push(off);
                    values.push(Some(layer.output_codec.quantize(spec.compute_at(
                        &operands,
                        off,
                        Some(&subst),
                    ))));
                }
                finish(offsets, values)
            }
            _ => Prediction::Masked,
        },
        SysFfId::WeightOperand => match sched {
            SysSchedPoint::Compute {
                chan_block,
                row_block,
                column,
                kstep,
                tc,
                ..
            } => {
                let c = chan_block * t + tc;
                if c >= out_c {
                    return Prediction::Masked;
                }
                let Some(addr) = crate::rtl_addr::weight_addr(&cfgw, c, kstep, layer.weight.len())
                else {
                    return Prediction::Masked;
                };
                let faulty = flip(layer.weight_codec, layer.weight.data()[addr as usize]);
                let subst = Substitution {
                    kind: OperandKind::Weight,
                    offset: addr as usize,
                    value: faulty,
                };
                // Broadcast: all PEs whose input is live this cycle.
                let mut offsets = Vec::new();
                let mut values = Vec::new();
                for pe in 0..k {
                    let row = row_block * k + pe;
                    if row >= out_h {
                        continue;
                    }
                    let p = row * out_w + column;
                    if crate::rtl_addr::input_addr(&cfgw, p, kstep, layer.input.len()).is_none() {
                        continue; // that PE's MAC is gated (padding)
                    }
                    let off = spec.offset_of(p as usize, c as usize);
                    offsets.push(off);
                    values.push(Some(layer.output_codec.quantize(spec.compute_at(
                        &operands,
                        off,
                        Some(&subst),
                    ))));
                }
                finish(offsets, values)
            }
            _ => Prediction::Masked,
        },
        SysFfId::Accumulator { pe, slot } => {
            let (flip_before, point) = match sched {
                SysSchedPoint::Compute {
                    chan_block,
                    row_block,
                    column,
                    kstep,
                    tc,
                    t_eff,
                } => {
                    if (slot as u64) >= t_eff {
                        return Prediction::Masked;
                    }
                    let fb = if (slot as u64) < tc {
                        kstep as usize + 1
                    } else {
                        kstep as usize
                    };
                    (fb, Some((chan_block, row_block, column)))
                }
                SysSchedPoint::Writeback {
                    chan_block,
                    row_block,
                    column,
                    tc,
                    t_eff,
                } => {
                    if (slot as u64) <= tc || (slot as u64) >= t_eff {
                        return Prediction::Masked;
                    }
                    (
                        layer.spec.kernel_steps(),
                        Some((chan_block, row_block, column)),
                    )
                }
                _ => (0, None),
            };
            let Some((cb, rb, col)) = point else {
                return Prediction::Masked;
            };
            let row = rb * k + pe as u64;
            let c = cb * t + slot as u64;
            if row >= out_h || c >= out_c {
                return Prediction::Masked;
            }
            let p = row * out_w + col;
            let off = spec.offset_of(p as usize, c as usize);
            let flip = fidelity_dnn::macspec::AccFlip::new(flip_before, site.bit)
                .expect("accumulator fault sites carry f32 bit indices (inventory width 32)");
            let value = layer
                .output_codec
                .quantize(spec.compute_at_acc_flip(&operands, off, flip));
            finish(vec![off], vec![Some(value)])
        }
        SysFfId::OutputReg { pe } => match sched {
            SysSchedPoint::Writeback {
                chan_block,
                row_block,
                column,
                tc,
                ..
            } => {
                let row = row_block * k + pe as u64;
                let c = chan_block * t + tc;
                if row >= out_h || c >= out_c {
                    return Prediction::Masked;
                }
                let p = row * out_w + column;
                let off = spec.offset_of(p as usize, c as usize);
                let clean = engine.clean_output().data()[off];
                finish(vec![off], vec![Some(flip(layer.output_codec, clean))])
            }
            _ => Prediction::Masked,
        },
        SysFfId::OutputValid { pe } => match sched {
            SysSchedPoint::Writeback {
                chan_block,
                row_block,
                column,
                tc,
                ..
            } => {
                let row = row_block * k + pe as u64;
                let c = chan_block * t + tc;
                if row >= out_h || c >= out_c {
                    return Prediction::Masked;
                }
                let p = row * out_w + column;
                Prediction::Neurons {
                    offsets: vec![spec.offset_of(p as usize, c as usize)],
                    values: vec![None],
                }
            }
            _ => Prediction::Masked,
        },
        SysFfId::Config { .. } | SysFfId::Sequencer { .. } => Prediction::SystemFailure,
    }
}

fn spec_out_w(spec: &fidelity_dnn::macspec::MacSpec) -> u64 {
    match spec {
        fidelity_dnn::macspec::MacSpec::Conv(c) => c.out_w() as u64,
        _ => 1,
    }
}

/// Validates one systolic fault site.
pub fn validate_systolic_site(
    engine: &SystolicEngine,
    site: SysFaultSite,
) -> (FfCategory, bool, Agreement) {
    let category = site.ff.category();
    let result = engine.run(site);
    let observed = ObservedFault {
        faulty_neurons: engine
            .clean_output()
            .diff_indices(&result.output, 0.0)
            .expect("same shape"),
        faulty_values: Vec::new(),
        timed_out: result.timed_out,
    };
    let observed_values: Vec<f32> = observed
        .faulty_neurons
        .iter()
        .map(|&i| result.output.data()[i])
        .collect();
    let prediction = predict_systolic(engine, site);

    let agreement = match (&prediction, category) {
        (Prediction::SystemFailure, _) => {
            if observed.is_masked() {
                Agreement::GlobalMasked
            } else {
                Agreement::GlobalFailureConfirmed
            }
        }
        (Prediction::Masked, _) => {
            if observed.is_masked() {
                Agreement::MaskedAgreed
            } else {
                Agreement::Mismatch(format!(
                    "systolic: predicted masked, rtl saw {} faulty ({:?} cycle {})",
                    observed.reuse_factor(),
                    site.ff,
                    site.cycle
                ))
            }
        }
        (Prediction::Neurons { offsets, .. }, FfCategory::LocalControl) => {
            if observed.reuse_factor() <= 1
                && observed.faulty_neurons.iter().all(|n| offsets.contains(n))
            {
                Agreement::LocalNeuronMatch {
                    // Bit-exact: the engine writes a literal zero on drop.
                    // statcheck:allow(float-eq)
                    value_was_zero: observed_values.first().is_some_and(|v| *v == 0.0),
                }
            } else {
                Agreement::Mismatch(format!(
                    "systolic local control: predicted {:?}, rtl {:?}",
                    offsets, observed.faulty_neurons
                ))
            }
        }
        (Prediction::Neurons { offsets, values }, _) => {
            let values_match = observed_values.iter().zip(values).all(|(rv, pv)| {
                pv.is_some_and(|p| {
                    (rv.is_nan() && p.is_nan()) || rv.to_bits() == p.to_bits() || *rv == p
                })
            });
            if !observed.timed_out && observed.faulty_neurons == *offsets && values_match {
                Agreement::DatapathExact
            } else {
                Agreement::Mismatch(format!(
                    "systolic datapath {:?} cycle {} bit {}: predicted {:?} rtl {:?}",
                    site.ff, site.cycle, site.bit, offsets, observed.faulty_neurons
                ))
            }
        }
    };
    (category, observed.timed_out, agreement)
}

/// Validates a batch of systolic sites into the shared report format.
pub fn validate_systolic_many(engine: &SystolicEngine, sites: &[SysFaultSite]) -> ValidationReport {
    let mut report = ValidationReport::default();
    for &site in sites {
        let (category, timed_out, agreement) = validate_systolic_site(engine, site);
        report.total += 1;
        if timed_out {
            report.timeouts += 1;
        }
        match agreement {
            Agreement::MaskedAgreed => report.masked_agreed += 1,
            Agreement::DatapathExact => {
                report.datapath_cases += 1;
                report.datapath_exact += 1;
            }
            Agreement::LocalNeuronMatch { .. } => {
                report.local_cases += 1;
                report.local_match += 1;
            }
            Agreement::GlobalFailureConfirmed => {
                report.global_cases += 1;
                report.global_failure += 1;
            }
            Agreement::GlobalMasked => {
                report.global_cases += 1;
                report.global_masked += 1;
            }
            Agreement::Mismatch(m) => {
                match category {
                    FfCategory::Datapath { .. } => report.datapath_cases += 1,
                    FfCategory::LocalControl => report.local_cases += 1,
                    FfCategory::GlobalControl => report.global_cases += 1,
                }
                report.mismatches.push(m);
            }
        }
    }
    report
}

/// Samples `n` random systolic fault sites.
pub fn random_systolic_sites(
    engine: &SystolicEngine,
    n: usize,
    rng: &mut SplitMix64,
) -> Vec<SysFaultSite> {
    let inventory = engine.inventory();
    (0..n)
        .map(|_| {
            let (ff, width) = inventory[rng.next_below(inventory.len() as u64) as usize];
            SysFaultSite {
                ff,
                bit: rng.next_below(u64::from(width)) as u32,
                cycle: rng.next_below(engine.clean_cycles()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::macspec::{ConvSpec, MacSpec};
    use fidelity_dnn::precision::{Precision, ValueCodec};
    use fidelity_rtl::RtlLayer;

    fn engine(precision: Precision) -> SystolicEngine {
        let spec = ConvSpec {
            batch: 1,
            in_c: 2,
            in_h: 6,
            in_w: 5,
            out_c: 5,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        };
        let codec = ValueCodec::new(precision, 0.01);
        let input = uniform_tensor(21, vec![1, 2, 6, 5], 1.0).map(|v| codec.quantize(v));
        let weight = uniform_tensor(22, vec![5, 2, 3, 3], 0.5).map(|v| codec.quantize(v));
        let layer = RtlLayer::new(MacSpec::Conv(spec), input, weight, codec, codec, codec).unwrap();
        SystolicEngine::new(layer, 4, 3)
    }

    #[test]
    fn systolic_sites_validate_exactly_fp16() {
        let e = engine(Precision::Fp16);
        let mut rng = SplitMix64::new(88);
        let sites = random_systolic_sites(&e, 400, &mut rng);
        let report = validate_systolic_many(&e, &sites);
        assert!(
            report.mismatches.is_empty(),
            "mismatches: {:#?}",
            &report.mismatches[..report.mismatches.len().min(5)]
        );
        assert!(report.datapath_cases > 0);
        assert_eq!(report.datapath_exact, report.datapath_cases);
    }

    #[test]
    fn systolic_sites_validate_exactly_int16() {
        let e = engine(Precision::Int16);
        let mut rng = SplitMix64::new(89);
        let sites = random_systolic_sites(&e, 300, &mut rng);
        let report = validate_systolic_many(&e, &sites);
        assert!(
            report.mismatches.is_empty(),
            "mismatches: {:#?}",
            &report.mismatches[..report.mismatches.len().min(5)]
        );
    }
}
