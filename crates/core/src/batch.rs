//! Batched fault-cone evaluation: amortize the golden forward pass over
//! many injections.
//!
//! A software injection only ever needs two things from the fault-free
//! baseline: the corrupted layer's clean output (to sample the fault
//! against) and the downstream tensors it perturbs. Both live in the
//! [`Trace`], which is computed once — but the *dense* resume path still
//! clones and splices a full corrupted tensor per injection. The batched
//! path instead installs a read-only golden snapshot of the trace in the
//! worker's [`Workspace`] and evaluates every injection as a sparse delta
//! over its downstream cone ([`Engine::resume_delta`]): only the faulty
//! offsets are patched, only the dirty regions of downstream tensors are
//! recomputed, and the snapshot is repaired bit-exactly afterwards.
//!
//! [`BatchedInjectionRunner`] is the serial entry point for that policy.
//! It groups injection requests by their trace's *golden key* (a
//! process-local fingerprint of the baseline tensors, see
//! [`fidelity_dnn::graph::golden_key`]), pays one snapshot installation per
//! group switch, and re-ensures the snapshot on a configurable cadence so a
//! panic that lost the loaned overlay degrades to at most `batch - 1` dense
//! fallback resumes. Campaigns get the same policy internally via
//! [`crate::campaign::CampaignSpec::batch`]; this type exists for callers
//! that drive injections directly — differential test sweeps, validation
//! harnesses, custom samplers — and for observing the batching machinery
//! (group switches, delta hits, dense fallbacks) in tests.
//!
//! Determinism contract: batching is pure evaluation policy. The runner
//! never touches the caller's RNG, and the delta path produces bit-identical
//! outcomes, perturbation statistics, and (when requested) final outputs to
//! the dense path — guaranteed by [`Engine::resume_delta`]'s repair
//! invariants and checked end to end by `tests/batched_vs_serial.rs`.

use std::time::Instant;

use fidelity_dnn::graph::{golden_key, Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::macspec::MacTier;
use fidelity_dnn::workspace::Workspace;
use fidelity_dnn::DnnError;

use crate::inject::{inject_once_pooled, Injection};
use crate::models::SoftwareFaultModel;
use crate::outcome::CorrectnessMetric;

/// Counters describing how a [`BatchedInjectionRunner`] evaluated its
/// injections so far. Pure telemetry: none of these feed back into results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Injections run.
    pub injections: usize,
    /// Golden-snapshot installations (group switches plus cadence repairs
    /// after a lost overlay).
    pub installs: usize,
    /// Distinct group switches (the first install for a new golden key).
    pub groups: usize,
    /// Injections that ran with a matching snapshot installed (the delta
    /// path). The remainder fell back to the dense resume path.
    pub delta_eligible: usize,
}

/// Serial batched-injection driver: one [`Workspace`], one golden snapshot
/// at a time, grouped by trace identity.
///
/// ```
/// use fidelity_core::batch::BatchedInjectionRunner;
/// use fidelity_core::models::SoftwareFaultModel;
/// use fidelity_core::outcome::TopOneMatch;
/// use fidelity_dnn::init::SplitMix64;
/// # use fidelity_dnn::graph::NetworkBuilder;
/// # use fidelity_dnn::init::uniform_tensor;
/// # use fidelity_dnn::layers::{Dense, Flatten, GlobalAvgPool};
/// # use fidelity_dnn::precision::Precision;
/// # let net = NetworkBuilder::new("n")
/// #     .input("x")
/// #     .layer(GlobalAvgPool::new("gap"), &["x"]).unwrap()
/// #     .layer(Flatten::new("flat"), &["gap"]).unwrap()
/// #     .layer(Dense::new("fc", uniform_tensor(2, vec![3, 2], 0.6)).unwrap(), &["flat"]).unwrap()
/// #     .build().unwrap();
/// # let engine = fidelity_dnn::graph::Engine::new(net, Precision::Fp32, &[]).unwrap();
/// # let trace = engine.trace(&[uniform_tensor(3, vec![1, 2, 4, 4], 1.0)]).unwrap();
/// let mut runner = BatchedInjectionRunner::new(16);
/// let mut rng = SplitMix64::new(7);
/// let inj = runner
///     .run(&engine, &trace, 2, SoftwareFaultModel::OutputValue, &TopOneMatch, &mut rng, None)
///     .unwrap();
/// assert_eq!(runner.stats().groups, 1);
/// # let _ = inj;
/// ```
#[derive(Debug)]
pub struct BatchedInjectionRunner {
    ws: Workspace,
    /// Re-ensure cadence: every `batch` injections within a group the
    /// snapshot key is re-checked (and reinstalled if an unwound injection
    /// lost the overlay). `0` disables batching entirely — every injection
    /// takes the dense path, which is what campaigns with `batch: 0` do.
    batch: usize,
    /// Key of the currently installed snapshot's group.
    current: Option<u64>,
    /// Injections run since the last group switch.
    in_group: usize,
    stats: BatchStats,
}

impl BatchedInjectionRunner {
    /// Creates a runner with the given re-ensure cadence (`0` disables
    /// batching; every injection then takes the dense resume path).
    pub fn new(batch: usize) -> Self {
        BatchedInjectionRunner {
            ws: Workspace::new(),
            batch,
            current: None,
            in_group: 0,
            stats: BatchStats::default(),
        }
    }

    /// Selects the MAC kernel tier for all subsequent injections (default
    /// [`MacTier::Bitwise`], byte-identical to the scalar oracle).
    #[must_use]
    pub fn with_mac_tier(mut self, tier: MacTier) -> Self {
        self.ws.set_mac_tier(tier);
        self
    }

    /// Evaluation counters so far.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// The configured re-ensure cadence.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Orders request indices so that requests sharing a golden key run
    /// back to back, preserving first-appearance order of groups and the
    /// caller's order within each group. Use this to schedule cells from
    /// several (network, input) pairs with one snapshot install per group
    /// instead of one per alternation.
    pub fn group_order(traces: &[&Trace]) -> Vec<usize> {
        let keys: Vec<u64> = traces.iter().map(|t| golden_key(t)).collect();
        let mut seen: Vec<u64> = Vec::new();
        for &k in &keys {
            if !seen.contains(&k) {
                seen.push(k);
            }
        }
        let mut order = Vec::with_capacity(traces.len());
        for &group in &seen {
            order.extend(
                keys.iter()
                    .enumerate()
                    .filter(|&(_, &k)| k == group)
                    .map(|(i, _)| i),
            );
        }
        order
    }

    /// Runs one injection, installing or re-ensuring the golden snapshot for
    /// `trace`'s group as needed. Outcomes, RNG consumption, and statistics
    /// are bit-identical to [`inject_once_pooled`] on a fresh workspace.
    ///
    /// # Errors
    ///
    /// As for [`inject_once_pooled`]: `node` must be a MAC layer and
    /// propagation must succeed.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        engine: &Engine,
        trace: &Trace,
        node: usize,
        model: SoftwareFaultModel,
        metric: &dyn CorrectnessMetric,
        rng: &mut SplitMix64,
        deadline: Option<Instant>,
    ) -> Result<Injection, DnnError> {
        if self.batch > 0 {
            let key = golden_key(trace);
            if self.current != Some(key) {
                self.ws.install_golden(key, &trace.node_outputs);
                self.current = Some(key);
                self.in_group = 0;
                self.stats.groups += 1;
                self.stats.installs += 1;
            } else if self.in_group.is_multiple_of(self.batch) && self.ws.golden_key() != Some(key)
            {
                // The overlay was lost (an injection unwound mid-delta);
                // reinstall on the batch cadence.
                self.ws.install_golden(key, &trace.node_outputs);
                self.stats.installs += 1;
            }
            self.in_group += 1;
            if self.ws.golden_key() == Some(key) {
                self.stats.delta_eligible += 1;
            }
        }
        self.stats.injections += 1;
        inject_once_pooled(
            engine,
            trace,
            node,
            model,
            metric,
            rng,
            deadline,
            &mut self.ws,
        )
    }

    /// Drops the installed snapshot and recycles its buffers. The next `run`
    /// reinstalls for whatever group it sees.
    pub fn flush(&mut self) {
        self.ws.flush_golden();
        self.current = None;
        self.in_group = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::model_for;
    use crate::outcome::TopOneMatch;
    use fidelity_accel::presets;
    use fidelity_dnn::graph::NetworkBuilder;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::layers::{Activation, ActivationKind, Conv2d, Dense, Flatten, GlobalAvgPool};
    use fidelity_dnn::precision::Precision;

    fn tiny(seed: u64) -> (Engine, Trace) {
        let net = NetworkBuilder::new("clf")
            .input("x")
            .layer(
                Conv2d::new("conv", uniform_tensor(seed, vec![4, 2, 3, 3], 0.6))
                    .unwrap()
                    .with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
            .unwrap()
            .layer(GlobalAvgPool::new("gap"), &["relu"])
            .unwrap()
            .layer(Flatten::new("flat"), &["gap"])
            .unwrap()
            .layer(
                Dense::new("fc", uniform_tensor(seed + 1, vec![5, 4], 0.6)).unwrap(),
                &["flat"],
            )
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let x = uniform_tensor(seed + 2, vec![1, 2, 6, 6], 1.0);
        let trace = engine.trace(&[x]).unwrap();
        (engine, trace)
    }

    /// The runner matches the plain pooled path bit for bit, for every
    /// category of the census and across group switches between two traces.
    #[test]
    fn batched_runner_matches_pooled_path() {
        let (engine, trace_a) = tiny(11);
        let trace_b = engine
            .trace(&[uniform_tensor(99, vec![1, 2, 6, 6], 1.0)])
            .unwrap();
        let cfg = presets::nvdla_like();
        let mut runner = BatchedInjectionRunner::new(4);
        let mut ws = Workspace::new();
        for (category, _) in cfg.census.iter() {
            let Some(model) = model_for(category, &cfg) else {
                continue;
            };
            for (t, tag) in [(&trace_a, 0u64), (&trace_b, 1u64)] {
                let mut rng_b = SplitMix64::new(0xABCD ^ tag);
                let mut rng_d = SplitMix64::new(0xABCD ^ tag);
                for _ in 0..12 {
                    let b = runner
                        .run(&engine, t, 0, model, &TopOneMatch, &mut rng_b, None)
                        .unwrap();
                    let d = inject_once_pooled(
                        &engine,
                        t,
                        0,
                        model,
                        &TopOneMatch,
                        &mut rng_d,
                        None,
                        &mut ws,
                    )
                    .unwrap();
                    assert_eq!(b.outcome, d.outcome);
                    assert_eq!(b.faulty_neurons, d.faulty_neurons);
                    assert_eq!(
                        b.max_perturbation.to_bits(),
                        d.max_perturbation.to_bits(),
                        "perturbation bits diverge"
                    );
                }
            }
        }
        let stats = runner.stats();
        assert!(stats.groups >= 2, "two traces → at least two groups");
        assert_eq!(stats.delta_eligible, stats.injections);
    }

    /// `group_order` brings same-key requests together while preserving
    /// first-appearance and intra-group order.
    #[test]
    fn group_order_clusters_by_golden_key() {
        let (engine, a) = tiny(5);
        let b = engine
            .trace(&[uniform_tensor(77, vec![1, 2, 6, 6], 1.0)])
            .unwrap();
        let order = BatchedInjectionRunner::group_order(&[&a, &b, &a, &b, &a]);
        assert_eq!(order, vec![0, 2, 4, 1, 3]);
    }

    /// `batch == 0` disables the snapshot entirely: every injection takes
    /// the dense path and no golden buffers are ever pinned.
    #[test]
    fn zero_batch_never_installs() {
        let (engine, trace) = tiny(21);
        let mut runner = BatchedInjectionRunner::new(0);
        let mut rng = SplitMix64::new(1);
        runner
            .run(
                &engine,
                &trace,
                0,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
                None,
            )
            .unwrap();
        let stats = runner.stats();
        assert_eq!(stats.installs, 0);
        assert_eq!(stats.delta_eligible, 0);
        assert_eq!(stats.injections, 1);
    }
}
