//! The naive software fault-injection strawman (Sec. VI).
//!
//! Existing software techniques model a hardware transient error as a single
//! bit flip in a single architectural (software-visible) state. The paper
//! shows this underestimates NVDLA's FIT rate by up to 25× because it
//! ignores reuse (one FF flip corrupting many neurons), control faults, and
//! the bias of where FFs actually sit. This module implements that strawman
//! so the comparison can be reproduced.

use fidelity_accel::arch::AcceleratorConfig;
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::DnnError;

use crate::outcome::{CorrectnessMetric, Outcome};

/// Result of a naive-injection campaign.
#[derive(Debug, Clone, Copy)]
pub struct NaiveResult {
    /// Samples run.
    pub samples: usize,
    /// Masked outcomes.
    pub masked: usize,
    /// The naive FIT estimate: raw FF FIT total × P(failure | flip).
    pub fit_estimate: f64,
}

/// Runs the naive campaign: uniform single-bit flips over all architectural
/// states (every intermediate tensor element), with the resulting masking
/// probability applied to the whole FF population.
///
/// # Errors
///
/// Propagates graph-execution errors.
pub fn naive_fit_rate(
    engine: &Engine,
    trace: &Trace,
    metric: &dyn CorrectnessMetric,
    accel: &AcceleratorConfig,
    raw_fit_per_mb: f64,
    samples: usize,
    seed: u64,
) -> Result<NaiveResult, DnnError> {
    // Architectural states = all node outputs, weighted by element count.
    let sizes: Vec<usize> = trace
        .node_outputs
        .iter()
        .map(fidelity_dnn::Tensor::len)
        .collect();
    let total: usize = sizes.iter().sum();
    let mut rng = SplitMix64::new(seed);
    let mut masked = 0usize;

    for _ in 0..samples {
        let mut flat = rng.next_below(total.max(1) as u64) as usize;
        let mut node = 0usize;
        while flat >= sizes[node] {
            flat -= sizes[node];
            node += 1;
        }
        let codec = engine.node_codec(node);
        let bit = rng.next_below(u64::from(codec.precision().bits())) as u32;
        let mut corrupted = trace.node_outputs[node].clone();
        let clean = corrupted.data()[flat];
        let faulty = codec.flip_bit(clean, bit);
        let outcome = if faulty.is_nan() && clean.is_nan() || faulty == clean {
            Outcome::Masked
        } else {
            corrupted.data_mut()[flat] = faulty;
            let final_output = engine.resume(trace, node, corrupted)?;
            if metric.is_correct(&trace.output, &final_output) {
                Outcome::Masked
            } else {
                Outcome::OutputError
            }
        };
        if outcome == Outcome::Masked {
            masked += 1;
        }
    }

    let p_fail = 1.0 - masked as f64 / samples.max(1) as f64;
    let fit_estimate = raw_fit_per_mb * accel.ff_megabytes() * p_fail;
    Ok(NaiveResult {
        samples,
        masked,
        fit_estimate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::TopOneMatch;
    use fidelity_accel::presets;
    use fidelity_dnn::graph::NetworkBuilder;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::layers::{Conv2d, Dense, Flatten, GlobalAvgPool};
    use fidelity_dnn::precision::Precision;

    #[test]
    fn naive_estimate_is_finite_and_below_raw_total() {
        let net = NetworkBuilder::new("t")
            .input("x")
            .layer(
                Conv2d::new("conv", uniform_tensor(1, vec![4, 2, 3, 3], 0.5))
                    .unwrap()
                    .with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .layer(GlobalAvgPool::new("gap"), &["conv"])
            .unwrap()
            .layer(Flatten::new("flat"), &["gap"])
            .unwrap()
            .layer(
                Dense::new("fc", uniform_tensor(2, vec![3, 4], 0.5)).unwrap(),
                &["flat"],
            )
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let trace = engine
            .trace(&[uniform_tensor(3, vec![1, 2, 6, 6], 1.0)])
            .unwrap();
        let cfg = presets::nvdla_like();
        let res = naive_fit_rate(&engine, &trace, &TopOneMatch, &cfg, 600.0, 200, 11).unwrap();
        assert_eq!(res.samples, 200);
        let raw_total = 600.0 * cfg.ff_megabytes();
        assert!(res.fit_estimate >= 0.0 && res.fit_estimate <= raw_total);
        assert!(res.masked > 0, "single-element flips are often masked");
    }
}
