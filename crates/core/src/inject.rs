//! The software fault-injection engine: apply a model instance to one layer,
//! propagate through the rest of the network, classify the outcome.
//!
//! Propagation reuses the fault-free trace and recomputes only the nodes
//! downstream of the corrupted layer ([`fidelity_dnn::graph::Engine::resume`])
//! — the reason FIdelity-style injection is orders of magnitude faster than
//! register-level simulation.

use std::time::Instant;

use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::tensor::Tensor;
use fidelity_dnn::workspace::Workspace;
use fidelity_dnn::DnnError;

use crate::models::{apply_model_sparse, SoftwareFaultModel, SparseEffect};
use crate::outcome::{CorrectnessMetric, Outcome};
use fidelity_dnn::graph::golden_key;

/// Everything recorded about one injection experiment.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Outcome class.
    pub outcome: Outcome,
    /// Number of faulty neurons in the corrupted layer (0 when masked at the
    /// layer level or for modeled anomalies).
    pub faulty_neurons: usize,
    /// Largest |faulty − clean| perturbation at the corrupted layer.
    pub max_perturbation: f32,
    /// The final application output, when the run completed.
    pub final_output: Option<Tensor>,
    /// Whether the outcome was forced by the watchdog (deadline overrun)
    /// rather than the fault model itself — telemetry distinguishes watchdog
    /// resets from modeled anomalies.
    pub watchdog: bool,
}

/// Runs one software fault-injection experiment.
///
/// # Errors
///
/// Returns [`DnnError`] when `node` is not a MAC layer or propagation fails.
pub fn inject_once(
    engine: &Engine,
    trace: &Trace,
    node: usize,
    model: SoftwareFaultModel,
    metric: &dyn CorrectnessMetric,
    rng: &mut SplitMix64,
) -> Result<Injection, DnnError> {
    inject_once_guarded(engine, trace, node, model, metric, rng, None)
}

/// [`inject_once`] under a per-injection wall-clock deadline.
///
/// A propagation that overruns the deadline is a runaway from the campaign's
/// point of view — the hardware watchdog would reset the accelerator — so it
/// is classified as [`Outcome::SystemAnomaly`] rather than surfaced as an
/// error. The RNG is advanced identically either way, keeping cell streams
/// deterministic. `None` disables the watchdog.
///
/// # Errors
///
/// Returns [`DnnError`] when `node` is not a MAC layer or propagation fails
/// for a non-timeout reason.
pub fn inject_once_guarded(
    engine: &Engine,
    trace: &Trace,
    node: usize,
    model: SoftwareFaultModel,
    metric: &dyn CorrectnessMetric,
    rng: &mut SplitMix64,
    deadline: Option<Instant>,
) -> Result<Injection, DnnError> {
    let mut ws = Workspace::new();
    inject_once_core(
        engine, trace, node, model, metric, rng, deadline, &mut ws, true,
    )
}

/// [`inject_once_guarded`] drawing every tensor — the corrupted layer
/// output, the recomputed downstream tensors, the final output — from a
/// caller-owned [`Workspace`], so a warm pool makes steady-state injection
/// allocation-free. The final output is recycled after classification
/// (`final_output` is `None`); callers that need it use
/// [`inject_once_guarded`]. Outcomes and RNG consumption are identical.
///
/// # Errors
///
/// As for [`inject_once_guarded`].
#[allow(clippy::too_many_arguments)]
pub fn inject_once_pooled(
    engine: &Engine,
    trace: &Trace,
    node: usize,
    model: SoftwareFaultModel,
    metric: &dyn CorrectnessMetric,
    rng: &mut SplitMix64,
    deadline: Option<Instant>,
    ws: &mut Workspace,
) -> Result<Injection, DnnError> {
    inject_once_core(engine, trace, node, model, metric, rng, deadline, ws, false)
}

#[allow(clippy::too_many_arguments)]
fn inject_once_core(
    engine: &Engine,
    trace: &Trace,
    node: usize,
    model: SoftwareFaultModel,
    metric: &dyn CorrectnessMetric,
    rng: &mut SplitMix64,
    deadline: Option<Instant>,
    ws: &mut Workspace,
    keep_output: bool,
) -> Result<Injection, DnnError> {
    let timeout = |faulty_neurons: usize, max_perturbation: f32| Injection {
        outcome: Outcome::SystemAnomaly,
        faulty_neurons,
        max_perturbation,
        final_output: None,
        watchdog: true,
    };
    // Monotonic watchdog deadline check via the obs clock (the workspace's
    // sanctioned wall-clock site); never feeds campaign statistics.
    let expired = || deadline.is_some_and(|d| fidelity_obs::clock::now() >= d);
    let injection = match apply_model_sparse(model, engine, trace, node, rng)? {
        SparseEffect::Masked => Injection {
            outcome: Outcome::Masked,
            faulty_neurons: 0,
            max_perturbation: 0.0,
            final_output: None,
            watchdog: false,
        },
        SparseEffect::SystemFailure => Injection {
            outcome: Outcome::SystemAnomaly,
            faulty_neurons: usize::MAX,
            max_perturbation: f32::INFINITY,
            final_output: None,
            watchdog: false,
        },
        SparseEffect::Layer(app) => {
            // Batched fast path: when the workspace carries a golden overlay
            // for exactly this trace and the caller doesn't need the final
            // output, propagate the sparse patch as a delta over the
            // overlay. Outcomes are bit-identical to the dense resume (see
            // `Engine::resume_delta`); a lost overlay — e.g. after an
            // injected panic — simply fails the key check and falls back.
            let delta = if !keep_output && ws.golden_key() == Some(golden_key(trace)) {
                match engine.resume_delta(
                    trace,
                    node,
                    &app.neurons,
                    &app.values,
                    deadline,
                    ws,
                    |out| metric.is_correct(&trace.output, out),
                ) {
                    Ok(correct) => Some(correct),
                    Err(DnnError::DeadlineExceeded) => {
                        return Ok(timeout(app.neurons.len(), app.max_perturbation));
                    }
                    Err(e) => return Err(e),
                }
            } else {
                None
            };
            let (outcome, final_output) = match delta {
                Some(correct) => {
                    let outcome = if correct {
                        Outcome::Masked
                    } else {
                        Outcome::OutputError
                    };
                    (outcome, None)
                }
                None => {
                    let mut layer_output = ws.clone_of(&trace.node_outputs[node]);
                    for (&off, &v) in app.neurons.iter().zip(&app.values) {
                        layer_output.data_mut()[off] = v;
                    }
                    let resumed =
                        match engine.resume_pooled(trace, node, layer_output, deadline, ws) {
                            Ok(out) => out,
                            Err(DnnError::DeadlineExceeded) => {
                                return Ok(timeout(app.neurons.len(), app.max_perturbation));
                            }
                            Err(e) => return Err(e),
                        };
                    let outcome = if metric.is_correct(&trace.output, resumed.tensor()) {
                        Outcome::Masked
                    } else {
                        Outcome::OutputError
                    };
                    let final_output = if keep_output {
                        Some(resumed.into_owned())
                    } else {
                        resumed.recycle_into(ws);
                        None
                    };
                    (outcome, final_output)
                }
            };
            Injection {
                outcome,
                faulty_neurons: app.neurons.len(),
                max_perturbation: app.max_perturbation,
                final_output,
                watchdog: false,
            }
        }
    };
    // Even a completed injection that blew the deadline counts as a timeout:
    // the watchdog semantics are "the accelerator was reset", regardless of
    // what the propagation would eventually have produced.
    if expired() {
        return Ok(timeout(
            injection.faulty_neurons,
            injection.max_perturbation,
        ));
    }
    Ok(injection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::TopOneMatch;
    use fidelity_dnn::graph::NetworkBuilder;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::layers::Conv2d;
    use fidelity_dnn::layers::{Activation, ActivationKind, Dense, Flatten, GlobalAvgPool};
    use fidelity_dnn::precision::Precision;

    fn tiny_classifier() -> (Engine, Trace) {
        let conv_w = uniform_tensor(1, vec![4, 2, 3, 3], 0.6);
        let fc_w = uniform_tensor(2, vec![5, 4], 0.6);
        let net = NetworkBuilder::new("clf")
            .input("x")
            .layer(
                Conv2d::new("conv", conv_w).unwrap().with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
            .unwrap()
            .layer(GlobalAvgPool::new("gap"), &["relu"])
            .unwrap()
            .layer(Flatten::new("flat"), &["gap"])
            .unwrap()
            .layer(Dense::new("fc", fc_w).unwrap(), &["flat"])
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let x = uniform_tensor(3, vec![1, 2, 6, 6], 1.0);
        let trace = engine.trace(&[x]).unwrap();
        (engine, trace)
    }

    #[test]
    fn global_control_is_anomaly() {
        let (engine, trace) = tiny_classifier();
        let mut rng = SplitMix64::new(1);
        let inj = inject_once(
            &engine,
            &trace,
            0,
            SoftwareFaultModel::GlobalControl,
            &TopOneMatch,
            &mut rng,
        )
        .unwrap();
        assert_eq!(inj.outcome, Outcome::SystemAnomaly);
    }

    #[test]
    fn output_value_faults_sometimes_mask_sometimes_fail() {
        let (engine, trace) = tiny_classifier();
        let mut rng = SplitMix64::new(2);
        let mut masked = 0;
        let mut failed = 0;
        for _ in 0..200 {
            let inj = inject_once(
                &engine,
                &trace,
                0,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .unwrap();
            match inj.outcome {
                Outcome::Masked => masked += 1,
                Outcome::OutputError => failed += 1,
                Outcome::SystemAnomaly => panic!("no anomaly expected"),
            }
        }
        // A single bit flip in one of 144 conv outputs should often be
        // masked by pooling, but exponent flips should sometimes flip the
        // label.
        assert!(masked > 0, "expected some masked outcomes");
        assert!(failed > 0, "expected some output errors");
    }

    #[test]
    fn pooled_and_guarded_injections_agree() {
        use fidelity_dnn::macspec::OperandKind;
        let (engine, trace) = tiny_classifier();
        let mut ws = Workspace::new();
        let models = [
            SoftwareFaultModel::OutputValue,
            SoftwareFaultModel::LocalControl,
            SoftwareFaultModel::BeforeBuffer {
                kind: OperandKind::Input,
            },
            SoftwareFaultModel::BeforeBuffer {
                kind: OperandKind::Weight,
            },
        ];
        for model in models {
            let mut r1 = SplitMix64::new(99);
            let mut r2 = SplitMix64::new(99);
            for _ in 0..25 {
                let a = inject_once_guarded(&engine, &trace, 0, model, &TopOneMatch, &mut r1, None)
                    .unwrap();
                let b = inject_once_pooled(
                    &engine,
                    &trace,
                    0,
                    model,
                    &TopOneMatch,
                    &mut r2,
                    None,
                    &mut ws,
                )
                .unwrap();
                assert_eq!(a.outcome, b.outcome);
                assert_eq!(a.faulty_neurons, b.faulty_neurons);
                assert_eq!(a.max_perturbation.to_bits(), b.max_perturbation.to_bits());
                assert_eq!(a.watchdog, b.watchdog);
            }
        }
    }

    #[test]
    fn delta_and_pooled_injections_agree() {
        use fidelity_dnn::macspec::OperandKind;
        let (engine, trace) = tiny_classifier();
        // One workspace runs the golden-overlay delta path, the other the
        // dense resume path; every recorded quantity must agree bit-for-bit.
        let mut ws_delta = Workspace::new();
        ws_delta.install_golden(golden_key(&trace), &trace.node_outputs);
        let mut ws_plain = Workspace::new();
        let models = [
            SoftwareFaultModel::OutputValue,
            SoftwareFaultModel::LocalControl,
            SoftwareFaultModel::BeforeBuffer {
                kind: OperandKind::Input,
            },
            SoftwareFaultModel::BeforeBuffer {
                kind: OperandKind::Weight,
            },
        ];
        for model in models {
            let mut r1 = SplitMix64::new(1234);
            let mut r2 = SplitMix64::new(1234);
            for _ in 0..40 {
                let a = inject_once_pooled(
                    &engine,
                    &trace,
                    0,
                    model,
                    &TopOneMatch,
                    &mut r1,
                    None,
                    &mut ws_delta,
                )
                .unwrap();
                let b = inject_once_pooled(
                    &engine,
                    &trace,
                    0,
                    model,
                    &TopOneMatch,
                    &mut r2,
                    None,
                    &mut ws_plain,
                )
                .unwrap();
                assert_eq!(a.outcome, b.outcome);
                assert_eq!(a.faulty_neurons, b.faulty_neurons);
                assert_eq!(a.max_perturbation.to_bits(), b.max_perturbation.to_bits());
            }
        }
        // The overlay survived the whole run and is still keyed to the trace.
        assert_eq!(ws_delta.golden_key(), Some(golden_key(&trace)));
    }

    #[test]
    fn pooled_injection_is_allocation_free_after_warmup() {
        let (engine, trace) = tiny_classifier();
        let mut ws = Workspace::new();
        let mut rng = SplitMix64::new(7);
        let shoot = |ws: &mut Workspace, rng: &mut SplitMix64| {
            inject_once_pooled(
                &engine,
                &trace,
                0,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                rng,
                None,
                ws,
            )
            .unwrap()
        };
        for _ in 0..10 {
            shoot(&mut ws, &mut rng);
        }
        ws.reset_counters();
        for _ in 0..50 {
            shoot(&mut ws, &mut rng);
        }
        // The pool-hit metric is the zero-allocation acceptance check:
        // `unsafe_code` is forbidden workspace-wide, so a counting global
        // allocator is off the table.
        assert!(ws.hits() > 0);
        assert_eq!(
            ws.misses(),
            0,
            "steady-state injections must draw every f32 buffer from the pool"
        );
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let (engine, trace) = tiny_classifier();
        let run = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..20)
                .map(|_| {
                    inject_once(
                        &engine,
                        &trace,
                        0,
                        SoftwareFaultModel::OutputValue,
                        &TopOneMatch,
                        &mut rng,
                    )
                    .unwrap()
                    .outcome
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // Clean trace is never perturbed by injections.
        let fresh = engine
            .trace(&[uniform_tensor(3, vec![1, 2, 6, 6], 1.0)])
            .unwrap();
        assert_eq!(fresh.output.data(), trace.output.data());
    }
}
