//! Accelerator FIT-rate computation — Eq. 2 of the paper — plus the
//! ISO 26262 budgeting arithmetic used by Key Result 1.

use fidelity_accel::arch::AcceleratorConfig;
use fidelity_accel::ff::FfCategory;

/// The raw flip-flop FIT rate the paper uses: 600 FIT per MB of flip-flops,
/// from 40nm alpha-particle measurements (Jagannathan et al.).
pub const PAPER_RAW_FIT_PER_MB: f64 = 600.0;

/// ASIL-D budget for a full self-driving chipset: overall FIT < 10.
pub const ASIL_D_CHIPSET_FIT: f64 = 10.0;

/// Area fraction of the chipset the accelerator's FFs occupy in the paper's
/// budgeting example (~2%), giving the FF FIT budget of 0.2.
pub const NVDLA_FF_AREA_FRACTION: f64 = 0.02;

/// The FIT budget assigned to a component occupying `area_fraction` of a
/// chipset with total budget `chipset_fit` (the standard area-proportional
/// assignment).
pub fn ff_fit_budget(chipset_fit: f64, area_fraction: f64) -> f64 {
    chipset_fit * area_fraction
}

/// One FF category's masking terms for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryTerm {
    /// FF category.
    pub category: FfCategory,
    /// `Prob_inactive(cat, r)` from Eq. 1.
    pub prob_inactive: f64,
    /// `Prob_SWmask(cat, r)` from the injection campaign (0 for global
    /// control, by definition).
    pub prob_swmask: f64,
}

/// One layer's contribution inputs to Eq. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTerm {
    /// Layer name (reporting only).
    pub name: String,
    /// `exec_time(r)` in cycles (only the ratios matter).
    pub exec_cycles: u64,
    /// Per-category masking terms.
    pub categories: Vec<CategoryTerm>,
}

/// FIT-rate result, broken down the way Figs. 4–6 stack it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FitBreakdown {
    /// Total Accelerator_FIT_rate.
    pub total: f64,
    /// Contribution of all datapath categories.
    pub datapath: f64,
    /// Contribution of local control.
    pub local: f64,
    /// Contribution of global control.
    pub global: f64,
    /// Per-category contributions.
    pub per_category: Vec<(FfCategory, f64)>,
}

/// Computes Eq. 2:
///
/// ```text
/// FIT = FIT_raw · N_ff · Σ_r [ exec(r) · Σ_cat FF_Perc(cat)
///        · (1 − Prob_inactive(cat, r)) · (1 − Prob_SWmask(cat, r)) ] / Σ_r exec(r)
/// ```
///
/// `protected` lists categories whose raw FIT is forced to zero (Fig. 6's
/// "global control FFs are protected" scenario).
///
/// # Panics
///
/// Panics if `layers` is empty or all exec times are zero (there is no
/// meaningful average to take).
pub fn accelerator_fit_rate(
    cfg: &AcceleratorConfig,
    raw_fit_per_mb: f64,
    layers: &[LayerTerm],
    protected: &[FfCategory],
) -> FitBreakdown {
    assert!(!layers.is_empty(), "FIT rate needs at least one layer");
    let total_exec: f64 = layers.iter().map(|l| l.exec_cycles as f64).sum();
    assert!(total_exec > 0.0, "total execution time must be positive");

    let raw_total = raw_fit_per_mb * cfg.ff_megabytes();

    let mut per_category: Vec<(FfCategory, f64)> = Vec::new();
    for layer in layers {
        let w = layer.exec_cycles as f64 / total_exec;
        for term in &layer.categories {
            if protected.contains(&term.category) {
                continue;
            }
            let frac = cfg.census.fraction(term.category);
            let contrib =
                raw_total * w * frac * (1.0 - term.prob_inactive) * (1.0 - term.prob_swmask);
            match per_category.iter_mut().find(|(c, _)| *c == term.category) {
                Some((_, v)) => *v += contrib,
                None => per_category.push((term.category, contrib)),
            }
        }
    }

    let mut breakdown = FitBreakdown {
        per_category: per_category.clone(),
        ..FitBreakdown::default()
    };
    for (cat, v) in &per_category {
        breakdown.total += v;
        match cat {
            FfCategory::Datapath { .. } => breakdown.datapath += v,
            FfCategory::LocalControl => breakdown.local += v,
            FfCategory::GlobalControl => breakdown.global += v,
        }
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_accel::ff::{PipelineStage, VarType};
    use fidelity_accel::presets;

    fn layer(name: &str, cycles: u64, mask: f64) -> LayerTerm {
        let cfg = presets::nvdla_like();
        LayerTerm {
            name: name.into(),
            exec_cycles: cycles,
            categories: cfg
                .census
                .iter()
                .map(|(category, _)| CategoryTerm {
                    category,
                    prob_inactive: 0.0,
                    prob_swmask: if category == FfCategory::GlobalControl {
                        0.0
                    } else {
                        mask
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn everything_masked_gives_only_global() {
        let cfg = presets::nvdla_like();
        let b = accelerator_fit_rate(&cfg, 600.0, &[layer("l", 100, 1.0)], &[]);
        // All non-global categories fully masked; global never masks.
        let raw_total = 600.0 * cfg.ff_megabytes();
        assert!((b.total - raw_total * 0.113).abs() < 1e-9);
        assert_eq!(b.datapath, 0.0);
        assert!((b.global - b.total).abs() < 1e-12);
    }

    #[test]
    fn nothing_masked_gives_raw_total() {
        let cfg = presets::nvdla_like();
        let b = accelerator_fit_rate(&cfg, 600.0, &[layer("l", 100, 0.0)], &[]);
        let raw_total = 600.0 * cfg.ff_megabytes();
        assert!((b.total - raw_total).abs() < 1e-9);
    }

    #[test]
    fn exec_time_weighting() {
        let cfg = presets::nvdla_like();
        // Long layer fully masked, short layer unmasked: FIT close to the
        // short layer's share.
        let long_masked = layer("long", 900, 1.0);
        let short_open = layer("short", 100, 0.0);
        let b = accelerator_fit_rate(&cfg, 600.0, &[long_masked, short_open], &[]);
        let raw_total = 600.0 * cfg.ff_megabytes();
        // Global control is unmasked in both layers; the datapath+local part
        // only contributes in the short layer (10% weight).
        let expected = raw_total * (0.113 + 0.1 * 0.887);
        assert!(
            (b.total - expected).abs() < 1e-9,
            "{} vs {expected}",
            b.total
        );
    }

    #[test]
    fn protection_zeroes_category() {
        let cfg = presets::nvdla_like();
        let unprotected = accelerator_fit_rate(&cfg, 600.0, &[layer("l", 10, 0.5)], &[]);
        let protected = accelerator_fit_rate(
            &cfg,
            600.0,
            &[layer("l", 10, 0.5)],
            &[FfCategory::GlobalControl],
        );
        assert_eq!(protected.global, 0.0);
        assert!((unprotected.total - unprotected.global - protected.total).abs() < 1e-9);
    }

    #[test]
    fn budget_arithmetic() {
        let budget = ff_fit_budget(ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION);
        assert!((budget - 0.2).abs() < 1e-12);
    }

    #[test]
    fn inactive_discount() {
        let cfg = presets::nvdla_like();
        let mut l = layer("l", 10, 0.0);
        for t in &mut l.categories {
            t.prob_inactive = 0.5;
        }
        let b = accelerator_fit_rate(&cfg, 600.0, &[l], &[]);
        let raw_total = 600.0 * cfg.ff_megabytes();
        assert!((b.total - raw_total * 0.5).abs() < 1e-9);
    }

    #[test]
    fn datapath_is_sum_of_datapath_categories() {
        let cfg = presets::nvdla_like();
        let b = accelerator_fit_rate(&cfg, 600.0, &[layer("l", 10, 0.3)], &[]);
        let dp: f64 = b
            .per_category
            .iter()
            .filter(|(c, _)| matches!(c, FfCategory::Datapath { .. }))
            .map(|(_, v)| v)
            .sum();
        assert!((b.datapath - dp).abs() < 1e-12);
        let _ = (
            FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Input,
            },
            b,
        );
    }
}
