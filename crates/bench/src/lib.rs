//! Shared plumbing for the experiment regenerators (one binary per paper
//! table/figure) and the Criterion benches.

#![warn(missing_docs)]

use fidelity_core::campaign::CampaignSpec;
use fidelity_core::resilience::CheckpointSpec;
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::precision::Precision;
use fidelity_workloads::Workload;

/// Injection samples per (layer × category) cell. Override with the
/// `FIDELITY_SAMPLES` environment variable; the default keeps every
/// regenerator comfortably under a minute while staying statistically
/// meaningful (Wilson 95% CI half-width ≲ 6 points per cell).
pub fn samples_per_cell() -> usize {
    std::env::var("FIDELITY_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

/// Validation sites per workload layer. Override with `FIDELITY_SITES`.
pub fn validation_sites() -> usize {
    std::env::var("FIDELITY_SITES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

/// Campaign worker threads for the regenerators: `--jobs N` on the command
/// line, else the `FIDELITY_JOBS` environment variable, else every core.
/// Campaigns are bit-identical for any value, so this only trades
/// wall-clock for cores.
pub fn jobs() -> usize {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| argv.get(i + 1))
        .or_else(|| {
            argv.iter()
                .find_map(|a| a.strip_prefix("--jobs=").map(|_| a))
        })
        .map(|v| v.trim_start_matches("--jobs=").to_owned())
        .or_else(|| std::env::var("FIDELITY_JOBS").ok())
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, std::num::NonZero::get))
}

/// The campaign spec used by the figure regenerators. Enables the live
/// progress reporter when the binary was launched with `--progress`, and
/// honors `--jobs` / `FIDELITY_JOBS` for the worker count.
pub fn campaign_spec(seed: u64, record_events: bool) -> CampaignSpec {
    CampaignSpec {
        samples_per_cell: samples_per_cell(),
        seed,
        threads: jobs(),
        record_events,
        target_ci_halfwidth: None,
        resilience: Default::default(),
        progress: progress_requested().then(fidelity_obs::progress::ProgressSpec::default),
    }
}

/// True when the regenerator was launched with `--resume`: resume each
/// campaign from its `results/<tag>.ckpt` checkpoint instead of restarting.
pub fn resume_requested() -> bool {
    std::env::args().any(|a| a == "--resume")
}

/// True when the regenerator was launched with `--progress`.
pub fn progress_requested() -> bool {
    std::env::args().any(|a| a == "--progress")
}

/// Applies the shared telemetry flags to a regenerator binary. Call once at
/// the top of `main`:
///
/// * `--trace FILE` installs the JSONL trace sink;
/// * `--metrics` enables timing instrumentation (the snapshot prints from
///   [`finish_telemetry`]);
/// * `--progress` is consumed by [`campaign_spec`].
///
/// # Panics
///
/// Panics when `--trace` is missing its file argument or the sink cannot be
/// created — regenerators treat bad invocations as fatal.
pub fn init_telemetry() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(pos + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| panic!("--trace requires a file path"));
        fidelity_obs::install_jsonl_sink(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("--trace {path}: {e}"));
    }
    if args.iter().any(|a| a == "--metrics") {
        fidelity_obs::set_timing(true);
    }
}

/// Tears telemetry down at the end of a regenerator: flushes the trace sink
/// (a flush failure is reported on stderr, not fatal) and prints the metrics
/// snapshot when `--metrics` was given.
pub fn finish_telemetry() {
    if let Err(e) = fidelity_obs::flush() {
        eprintln!("warning: {e}");
    }
    if std::env::args().any(|a| a == "--metrics") {
        print!("{}", fidelity_obs::metrics::snapshot());
    }
}

/// Like [`campaign_spec`], but checkpointing each campaign to
/// `results/<tag>.ckpt` so an interrupted regenerator can be relaunched with
/// `--resume` and skip every cell that already completed. `tag` must be
/// unique per campaign within a binary (the checkpoint fingerprint does not
/// cover deployment precision).
pub fn resilient_spec(tag: &str, seed: u64, record_events: bool) -> CampaignSpec {
    let mut spec = campaign_spec(seed, record_events);
    let path = std::path::Path::new("results").join(format!("{tag}.ckpt"));
    spec.resilience.checkpoint = Some(if resume_requested() {
        CheckpointSpec::resuming(path)
    } else {
        CheckpointSpec::new(path)
    });
    spec
}

/// Deploys a workload at a precision (calibrating integer scales on its own
/// input) and records the fault-free trace.
///
/// # Panics
///
/// Panics on graph errors — the workload topologies are fixed, so an error
/// here is a bug, not an input condition.
pub fn deploy(workload: Workload, precision: Precision) -> (Engine, Trace) {
    let calibration = vec![workload.inputs.clone()];
    let engine = Engine::new(workload.network, precision, &calibration)
        .unwrap_or_else(|e| panic!("deploying {}: {e}", workload.name));
    let trace = engine
        .trace(&workload.inputs)
        .unwrap_or_else(|e| panic!("tracing {}: {e}", workload.name));
    (engine, trace)
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

pub mod report {
    //! Machine-readable bench results.
    //!
    //! The perf benches (`injection_speed`, `inference`, the `speedup`
    //! regenerator) each merge their own section into one
    //! `BENCH_injection.json` at the workspace root, so a partial bench run
    //! updates only its rows and the file stays the union of the latest
    //! measurements. The format is the hand-rolled [`fidelity_obs::json`]
    //! value (the build is offline; no serde).

    use std::collections::BTreeMap;
    use std::path::PathBuf;

    use fidelity_obs::json::{self, Json};

    /// True when `FIDELITY_BENCH_QUICK` is set (and not `0`): the CI smoke
    /// mode — run the bitwise self-checks and a handful of timed reps, skip
    /// the full Criterion sweeps.
    pub fn quick() -> bool {
        std::env::var("FIDELITY_BENCH_QUICK").is_ok_and(|v| v != "0")
    }

    /// Where the report lives: `FIDELITY_BENCH_JSON` when set, else
    /// `BENCH_injection.json` at the workspace root (stable regardless of
    /// the working directory cargo gives a bench or a bin).
    pub fn path() -> PathBuf {
        std::env::var_os("FIDELITY_BENCH_JSON").map_or_else(
            || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_injection.json"),
            PathBuf::from,
        )
    }

    /// Builds a JSON object from literal key/value pairs.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Inserts or replaces `section` at the top level of the report file,
    /// preserving every other section. A missing or unparsable file starts
    /// fresh; write failures warn on stderr (benches must not die on a
    /// read-only checkout).
    pub fn update(section: &str, value: Json) {
        let p = path();
        let mut root: BTreeMap<String, Json> = std::fs::read_to_string(&p)
            .ok()
            .and_then(|s| json::parse(&s).ok())
            .and_then(|j| match j {
                Json::Obj(m) => Some(m),
                _ => None,
            })
            .unwrap_or_default();
        root.insert(section.to_owned(), value);
        let mut out = String::new();
        render(&Json::Obj(root), &mut out, 0);
        out.push('\n');
        match std::fs::write(&p, out) {
            Ok(()) => eprintln!("wrote section `{section}` to {}", p.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", p.display()),
        }
    }

    /// Pretty-prints a JSON value (2-space indent, stable key order).
    pub fn render(j: &Json, out: &mut String, indent: usize) {
        match j {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => json::number_into(out, *n),
            Json::Str(s) => json::escape_into(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    render(item, out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    json::escape_into(out, k);
                    out.push_str(": ");
                    render(v, out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Mean and best of a set of per-rep nanosecond samples.
    pub fn mean_best(samples_ns: &[f64]) -> (f64, f64) {
        if samples_ns.is_empty() {
            return (0.0, 0.0);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let best = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        (mean, best)
    }
}

/// Formats a FIT value with sensible precision.
pub fn fit(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_workloads::classification_suite;

    #[test]
    fn deploy_all_precisions() {
        for precision in [Precision::Fp16, Precision::Int8] {
            let w = classification_suite(1).remove(0);
            let (engine, trace) = deploy(w, precision);
            assert_eq!(engine.precision(), precision);
            assert!(!trace.output.is_empty());
        }
    }

    #[test]
    fn fit_formatting() {
        assert_eq!(fit(123.4), "123");
        assert_eq!(fit(9.5), "9.50");
        assert_eq!(fit(0.123), "0.123");
    }

    #[test]
    fn report_render_round_trips() {
        use fidelity_obs::json::{parse, Json};
        let v = report::obj([
            ("mean_ns", Json::Num(123.5)),
            ("label", Json::Str("per_injection/fidelity_software".into())),
            (
                "kernels",
                Json::Arr(vec![report::obj([("layer", Json::Str("conv".into()))])]),
            ),
        ]);
        let mut s = String::new();
        report::render(&v, &mut s, 0);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn report_mean_best() {
        assert_eq!(report::mean_best(&[2.0, 4.0]), (3.0, 2.0));
        assert_eq!(report::mean_best(&[]), (0.0, 0.0));
    }
}
