//! Shared plumbing for the experiment regenerators (one binary per paper
//! table/figure) and the Criterion benches.

#![warn(missing_docs)]

use fidelity_core::campaign::{CampaignSpec, MacTier};
use fidelity_core::resilience::CheckpointSpec;
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::precision::Precision;
use fidelity_workloads::Workload;

/// Injection samples per (layer × category) cell. Override with the
/// `FIDELITY_SAMPLES` environment variable; the default keeps every
/// regenerator comfortably under a minute while staying statistically
/// meaningful (Wilson 95% CI half-width ≲ 6 points per cell).
pub fn samples_per_cell() -> usize {
    std::env::var("FIDELITY_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

/// Validation sites per workload layer. Override with `FIDELITY_SITES`.
pub fn validation_sites() -> usize {
    std::env::var("FIDELITY_SITES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

/// Campaign worker threads for the regenerators: `--jobs N` on the command
/// line, else the `FIDELITY_JOBS` environment variable, else every core.
/// Campaigns are bit-identical for any value, so this only trades
/// wall-clock for cores.
pub fn jobs() -> usize {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| argv.get(i + 1))
        .or_else(|| {
            argv.iter()
                .find_map(|a| a.strip_prefix("--jobs=").map(|_| a))
        })
        .map(|v| v.trim_start_matches("--jobs=").to_owned())
        .or_else(|| std::env::var("FIDELITY_JOBS").ok())
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, std::num::NonZero::get))
}

/// One string-valued option from `--NAME VALUE` / `--NAME=VALUE` on the
/// command line, else the environment variable `env`.
fn flag_or_env(flag: &str, env: &str) -> Option<String> {
    let argv: Vec<String> = std::env::args().collect();
    let long = format!("--{flag}");
    let prefixed = format!("--{flag}=");
    argv.iter()
        .position(|a| *a == long)
        .and_then(|i| argv.get(i + 1).cloned())
        .or_else(|| {
            argv.iter()
                .find_map(|a| a.strip_prefix(&prefixed).map(str::to_owned))
        })
        .or_else(|| std::env::var(env).ok())
}

/// Batched fault-cone evaluation cadence for the regenerators: `--batch N`
/// on the command line, else `FIDELITY_BATCH`, else 0 (off). Results are
/// bit-identical for any value — batching only trades memory for speed.
pub fn batch() -> usize {
    flag_or_env("batch", "FIDELITY_BATCH")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// MAC kernel tier for the regenerators: `--mac-tier bitwise|fast` on the
/// command line, else `FIDELITY_MAC_TIER`, else [`MacTier::Bitwise`]. The
/// Fast tier may change low-order bits on Dense/MatMul layers; campaigns
/// then measure and report the exact worst-case divergence.
pub fn mac_tier() -> MacTier {
    flag_or_env("mac-tier", "FIDELITY_MAC_TIER")
        .and_then(|v| MacTier::parse(&v))
        .unwrap_or(MacTier::Bitwise)
}

/// The campaign spec used by the figure regenerators. Enables the live
/// progress reporter when the binary was launched with `--progress`, and
/// honors `--jobs` / `FIDELITY_JOBS` for the worker count as well as
/// `--batch` / `FIDELITY_BATCH` and `--mac-tier` / `FIDELITY_MAC_TIER` for
/// the evaluation policy.
pub fn campaign_spec(seed: u64, record_events: bool) -> CampaignSpec {
    CampaignSpec {
        samples_per_cell: samples_per_cell(),
        seed,
        threads: jobs(),
        record_events,
        target_ci_halfwidth: None,
        resilience: Default::default(),
        progress: progress_requested().then(fidelity_obs::progress::ProgressSpec::default),
        batch: batch(),
        mac_tier: mac_tier(),
        adaptive: None,
    }
}

/// True when the regenerator was launched with `--resume`: resume each
/// campaign from its `results/<tag>.ckpt` checkpoint instead of restarting.
pub fn resume_requested() -> bool {
    std::env::args().any(|a| a == "--resume")
}

/// True when the regenerator was launched with `--progress`.
pub fn progress_requested() -> bool {
    std::env::args().any(|a| a == "--progress")
}

/// Applies the shared telemetry flags to a regenerator binary. Call once at
/// the top of `main`:
///
/// * `--trace FILE` installs the JSONL trace sink;
/// * `--metrics` enables timing instrumentation (the snapshot prints from
///   [`finish_telemetry`]);
/// * `--progress` is consumed by [`campaign_spec`].
///
/// # Panics
///
/// Panics when `--trace` is missing its file argument or the sink cannot be
/// created — regenerators treat bad invocations as fatal.
pub fn init_telemetry() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(pos + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| panic!("--trace requires a file path"));
        fidelity_obs::install_jsonl_sink(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("--trace {path}: {e}"));
    }
    if args.iter().any(|a| a == "--metrics") {
        fidelity_obs::set_timing(true);
    }
}

/// Tears telemetry down at the end of a regenerator: flushes the trace sink
/// (a flush failure is reported on stderr, not fatal) and prints the metrics
/// snapshot when `--metrics` was given.
pub fn finish_telemetry() {
    if let Err(e) = fidelity_obs::flush() {
        eprintln!("warning: {e}");
    }
    if std::env::args().any(|a| a == "--metrics") {
        print!("{}", fidelity_obs::metrics::snapshot());
    }
}

/// Like [`campaign_spec`], but checkpointing each campaign to
/// `results/<tag>.ckpt` so an interrupted regenerator can be relaunched with
/// `--resume` and skip every cell that already completed. `tag` must be
/// unique per campaign within a binary (the checkpoint fingerprint does not
/// cover deployment precision).
pub fn resilient_spec(tag: &str, seed: u64, record_events: bool) -> CampaignSpec {
    let mut spec = campaign_spec(seed, record_events);
    let path = std::path::Path::new("results").join(format!("{tag}.ckpt"));
    spec.resilience.checkpoint = Some(if resume_requested() {
        CheckpointSpec::resuming(path)
    } else {
        CheckpointSpec::new(path)
    });
    spec
}

/// Deploys a workload at a precision (calibrating integer scales on its own
/// input) and records the fault-free trace.
///
/// # Panics
///
/// Panics on graph errors — the workload topologies are fixed, so an error
/// here is a bug, not an input condition.
pub fn deploy(workload: Workload, precision: Precision) -> (Engine, Trace) {
    let calibration = vec![workload.inputs.clone()];
    let engine = Engine::new(workload.network, precision, &calibration)
        .unwrap_or_else(|e| panic!("deploying {}: {e}", workload.name));
    let trace = engine
        .trace(&workload.inputs)
        .unwrap_or_else(|e| panic!("tracing {}: {e}", workload.name));
    (engine, trace)
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

pub mod report {
    //! Machine-readable bench results.
    //!
    //! The perf benches (`injection_speed`, `inference`, the `speedup`
    //! regenerator) each merge their own section into one
    //! `BENCH_injection.json` at the workspace root, so a partial bench run
    //! updates only its rows and the file stays the union of the latest
    //! measurements. The format is the hand-rolled [`fidelity_obs::json`]
    //! value (the build is offline; no serde).

    use std::collections::BTreeMap;
    use std::path::PathBuf;

    use fidelity_obs::json::{self, Json};

    /// True when `FIDELITY_BENCH_QUICK` is set (and not `0`): the CI smoke
    /// mode — run the bitwise self-checks and a handful of timed reps, skip
    /// the full Criterion sweeps.
    pub fn quick() -> bool {
        std::env::var("FIDELITY_BENCH_QUICK").is_ok_and(|v| v != "0")
    }

    /// Where the report lives: `FIDELITY_BENCH_JSON` when set, else
    /// `BENCH_injection.json` at the workspace root (stable regardless of
    /// the working directory cargo gives a bench or a bin).
    pub fn path() -> PathBuf {
        std::env::var_os("FIDELITY_BENCH_JSON").map_or_else(
            || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_injection.json"),
            PathBuf::from,
        )
    }

    /// Builds a JSON object from literal key/value pairs.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Inserts or replaces `section` at the top level of the report file,
    /// preserving every other section. A missing or unparsable file starts
    /// fresh; write failures warn on stderr (benches must not die on a
    /// read-only checkout).
    pub fn update(section: &str, value: Json) {
        let p = path();
        let mut root: BTreeMap<String, Json> = std::fs::read_to_string(&p)
            .ok()
            .and_then(|s| json::parse(&s).ok())
            .and_then(|j| match j {
                Json::Obj(m) => Some(m),
                _ => None,
            })
            .unwrap_or_default();
        root.insert(section.to_owned(), value);
        let mut out = String::new();
        render(&Json::Obj(root), &mut out, 0);
        out.push('\n');
        match std::fs::write(&p, out) {
            Ok(()) => eprintln!("wrote section `{section}` to {}", p.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", p.display()),
        }
    }

    /// Pretty-prints a JSON value (2-space indent, stable key order).
    pub fn render(j: &Json, out: &mut String, indent: usize) {
        match j {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => json::number_into(out, *n),
            Json::Str(s) => json::escape_into(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    render(item, out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    json::escape_into(out, k);
                    out.push_str(": ");
                    render(v, out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Mean and best of a set of per-rep nanosecond samples.
    pub fn mean_best(samples_ns: &[f64]) -> (f64, f64) {
        if samples_ns.is_empty() {
            return (0.0, 0.0);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let best = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        (mean, best)
    }
}

pub mod gate {
    //! The bench regression gate: compares a fresh `BENCH_injection.json`
    //! against a committed baseline and fails on mean-per-injection (and
    //! other tracked mean) regressions beyond a tolerance.
    //!
    //! Pure comparison over two parsed reports — the `bench_gate` binary
    //! owns file I/O and process exit, so every rule here is unit-testable.

    use fidelity_obs::json::Json;

    /// Default allowed slowdown: a metric may grow by at most 15% before
    /// the gate fails.
    pub const DEFAULT_TOLERANCE: f64 = 0.15;

    /// One compared metric.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Delta {
        /// Dotted path into the report, e.g. `per_injection.fidelity_software_pooled.mean_ns`.
        pub metric: String,
        /// Baseline value (ns).
        pub baseline: f64,
        /// Current value (ns).
        pub current: f64,
        /// `current / baseline - 1`; positive is a slowdown.
        pub ratio: f64,
        /// Whether the slowdown exceeds the tolerance.
        pub regressed: bool,
    }

    /// The mean-valued metrics the gate tracks. Means, not bests: a best-of
    /// sample is a lower-bound estimator whose variance CI machines make
    /// useless, while the mean over the quick-mode reps is stable enough to
    /// gate on.
    const TRACKED: &[&[&str]] = &[
        &["per_injection", "fidelity_software_pooled", "mean_ns"],
        &["per_injection", "fidelity_software_pooled_dense", "mean_ns"],
        &["per_injection", "fidelity_software", "mean_ns"],
    ];

    fn lookup<'a>(root: &'a Json, path: &[&str]) -> Option<&'a Json> {
        path.iter().try_fold(root, |j, key| j.get(key))
    }

    /// Compares `current` against `baseline`, returning every tracked
    /// metric present in both. Metrics missing from either side are
    /// skipped (a partial bench run updates only its own sections).
    pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> Vec<Delta> {
        let mut out = Vec::new();
        for path in TRACKED {
            let (Some(b), Some(c)) = (
                lookup(baseline, path).and_then(Json::as_f64),
                lookup(current, path).and_then(Json::as_f64),
            ) else {
                continue;
            };
            if b <= 0.0 {
                continue; // a zero/negative baseline cannot express a ratio
            }
            let ratio = c / b - 1.0;
            out.push(Delta {
                metric: path.join("."),
                baseline: b,
                current: c,
                ratio,
                regressed: ratio > tolerance,
            });
        }
        out
    }

    /// Renders the comparison as the table the CI log shows.
    pub fn render(deltas: &[Delta], tolerance: f64) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "bench gate (tolerance {:+.0}%):", tolerance * 100.0);
        if deltas.is_empty() {
            s.push_str("  no tracked metrics in common — gate is vacuous\n");
        }
        for d in deltas {
            let _ = writeln!(
                s,
                "  {:<52} {:>12.0} -> {:>12.0} ns  {:+6.1}%  {}",
                d.metric,
                d.baseline,
                d.current,
                d.ratio * 100.0,
                if d.regressed { "REGRESSED" } else { "ok" }
            );
        }
        s
    }
}

/// Formats a FIT value with sensible precision.
pub fn fit(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_workloads::classification_suite;

    #[test]
    fn deploy_all_precisions() {
        for precision in [Precision::Fp16, Precision::Int8] {
            let w = classification_suite(1).remove(0);
            let (engine, trace) = deploy(w, precision);
            assert_eq!(engine.precision(), precision);
            assert!(!trace.output.is_empty());
        }
    }

    #[test]
    fn fit_formatting() {
        assert_eq!(fit(123.4), "123");
        assert_eq!(fit(9.5), "9.50");
        assert_eq!(fit(0.123), "0.123");
    }

    #[test]
    fn report_render_round_trips() {
        use fidelity_obs::json::{parse, Json};
        let v = report::obj([
            ("mean_ns", Json::Num(123.5)),
            ("label", Json::Str("per_injection/fidelity_software".into())),
            (
                "kernels",
                Json::Arr(vec![report::obj([("layer", Json::Str("conv".into()))])]),
            ),
        ]);
        let mut s = String::new();
        report::render(&v, &mut s, 0);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn report_mean_best() {
        assert_eq!(report::mean_best(&[2.0, 4.0]), (3.0, 2.0));
        assert_eq!(report::mean_best(&[]), (0.0, 0.0));
    }

    #[test]
    fn gate_flags_regressions_beyond_tolerance() {
        use fidelity_obs::json::parse;
        let baseline = parse(
            r#"{"per_injection":{"fidelity_software_pooled":{"mean_ns":1000.0},
                "fidelity_software":{"mean_ns":2000.0}}}"#,
        )
        .unwrap();
        // Pooled regressed 20% (over the 15% gate); allocating improved.
        let current = parse(
            r#"{"per_injection":{"fidelity_software_pooled":{"mean_ns":1200.0},
                "fidelity_software":{"mean_ns":1800.0}}}"#,
        )
        .unwrap();
        let deltas = gate::compare(&baseline, &current, gate::DEFAULT_TOLERANCE);
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].regressed, "{deltas:?}");
        assert!(!deltas[1].regressed, "{deltas:?}");
        let table = gate::render(&deltas, gate::DEFAULT_TOLERANCE);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("fidelity_software_pooled"));
    }

    #[test]
    fn gate_skips_missing_metrics_and_is_vacuous_when_empty() {
        use fidelity_obs::json::parse;
        let empty = parse("{}").unwrap();
        let full =
            parse(r#"{"per_injection":{"fidelity_software_pooled":{"mean_ns":1000.0}}}"#).unwrap();
        assert!(gate::compare(&empty, &full, 0.15).is_empty());
        let table = gate::render(&[], 0.15);
        assert!(table.contains("vacuous"));
        // Within-tolerance growth passes.
        let slightly =
            parse(r#"{"per_injection":{"fidelity_software_pooled":{"mean_ns":1100.0}}}"#).unwrap();
        let deltas = gate::compare(&full, &slightly, 0.15);
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].regressed);
    }
}
