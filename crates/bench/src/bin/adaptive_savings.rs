//! Adaptive campaign planner savings: injections-to-convergence and
//! wall-clock for the confidence-driven planner vs the fixed per-cell
//! baseline, at the same FIT-bound target ±ε, on the Fig.-4 classification
//! workloads (FP16, top-1 metric).
//!
//! Two fixed baselines are recorded, because they answer different
//! questions:
//!
//! * **a-priori fixed** — the per-cell budget a fixed plan must commit to
//!   *before* seeing any outcome: masking rates are unknown up front, so a
//!   fixed plan that guarantees ±ε has to size every cell for worst-case
//!   variance (p = 0.5). This is the plan the adaptive planner replaces,
//!   and the headline ≥3× saving is measured against it.
//! * **oracle uniform** — the cheapest uniform plan that reaches ±ε given
//!   the *observed* rates (computed from the certificate's own stratum
//!   weights and p̂). No realizable fixed plan can beat it, so it bounds
//!   the allocation-only gain from below; the adaptive win over this
//!   oracle is the Neyman-allocation share of the saving (~1.3–1.7×).
//!
//! The oracle-uniform campaign is also *executed* (it is affordable) to
//! check wall-clock and adaptive/fixed FIT agreement within ε; the a-priori
//! plan's wall-clock is extrapolated from it linearly in injections.
//!
//! Quick mode (`FIDELITY_BENCH_QUICK=1`) runs MobileNet only, at a looser ε.

use std::time::Instant;

use fidelity_bench::report;
use fidelity_core::adaptive::{AdaptivePlan, ConfidenceCertificate};
use fidelity_core::analysis::analyze;
use fidelity_core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity_core::outcome::TopOneMatch;
use fidelity_dnn::precision::Precision;
use fidelity_obs::json::Json;
use fidelity_obs::stats::{wilson, z_for_confidence};
use fidelity_workloads::classification_suite;

/// The uniform-allocation FIT bound at `n` samples per cell. `rates`
/// selects the planner's knowledge: observed p̂ per stratum (oracle) or
/// worst-case p = 0.5 (a-priori).
fn uniform_bound(cert: &ConfidenceCertificate, n: usize, rates: Rates) -> f64 {
    let z = z_for_confidence(cert.plan.confidence).expect("certificate confidence is supported");
    cert.strata
        .iter()
        .filter(|s| s.sampled && s.weight > 0.0)
        .map(|s| {
            let p = match rates {
                Rates::Observed => s.p_hat,
                Rates::WorstCase => 0.5,
            };
            let successes = ((p * n as f64).round() as usize).min(n);
            let (lo, hi) = wilson(successes, n, z);
            s.weight * (hi - lo) / 2.0
        })
        .sum()
}

#[derive(Clone, Copy)]
enum Rates {
    /// The certificate's observed masking rates — oracle knowledge no fixed
    /// plan has before sampling.
    Observed,
    /// p = 0.5 everywhere — the worst-case variance an a-priori fixed plan
    /// must budget for.
    WorstCase,
}

/// The smallest uniform per-cell budget whose total bound reaches ±ε under
/// the given rate assumption.
fn fixed_budget(cert: &ConfidenceCertificate, epsilon: f64, rates: Rates) -> usize {
    let (mut lo, mut hi) = (1usize, 1usize);
    while uniform_bound(cert, hi, rates) > epsilon {
        hi *= 2;
        assert!(hi < 1 << 40, "uniform plan cannot reach epsilon {epsilon}");
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if uniform_bound(cert, mid, rates) > epsilon {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    fidelity_bench::init_telemetry();
    let quick = report::quick();
    let epsilon = std::env::var("FIDELITY_EPSILON")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 0.5 } else { 0.2 });
    let cfg = fidelity_accel::presets::nvdla_like();
    let spec_seed = 0xF164;

    println!("Adaptive planner vs fixed baseline (FP16, top-1, epsilon {epsilon})");
    fidelity_bench::rule(112);
    println!(
        "{:<12} {:>12} {:>8} {:>13} {:>8} {:>13} {:>8} {:>10} {:>10}",
        "network",
        "adaptive-inj",
        "waves",
        "apriori-inj",
        "saving",
        "oracle-inj",
        "saving",
        "adapt-s",
        "oracle-s"
    );
    fidelity_bench::rule(112);

    let mut rows = Vec::new();
    for workload in classification_suite(42) {
        if quick && workload.name != "mobilenet" {
            continue;
        }
        let name = workload.name.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);

        let mut adaptive_spec = fidelity_bench::campaign_spec(spec_seed, false);
        adaptive_spec.adaptive = Some(AdaptivePlan {
            epsilon,
            confidence: 0.95,
            max_injections: 50_000_000,
        });
        let started = Instant::now();
        let adaptive = analyze(
            &engine,
            &trace,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &adaptive_spec,
        )
        .expect("adaptive analysis over fixed workloads");
        let adaptive_secs = started.elapsed().as_secs_f64();
        let cert = adaptive
            .campaign
            .certificate
            .clone()
            .expect("adaptive campaigns emit a certificate");
        assert!(cert.converged, "{name}: planner hit the injection ceiling");

        let sampled = cert.strata.iter().filter(|s| s.sampled).count();
        let apriori_per_cell = fixed_budget(&cert, epsilon, Rates::WorstCase);
        let apriori_injections = apriori_per_cell * sampled;
        let oracle_per_cell = fixed_budget(&cert, epsilon, Rates::Observed);
        let oracle_injections = oracle_per_cell * sampled;

        // Execute the oracle-uniform plan (the cheapest fixed plan that
        // reaches ±ε) to validate FIT agreement and measure fixed-side
        // wall-clock; the a-priori plan's wall is extrapolated from it.
        let mut fixed_spec = fidelity_bench::campaign_spec(spec_seed, false);
        fixed_spec.samples_per_cell = oracle_per_cell;
        let started = Instant::now();
        let fixed = analyze(
            &engine,
            &trace,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &fixed_spec,
        )
        .expect("fixed analysis over fixed workloads");
        let oracle_secs = started.elapsed().as_secs_f64();
        let apriori_secs = oracle_secs * apriori_injections as f64 / oracle_injections as f64;

        let saving = apriori_injections as f64 / cert.total_injections as f64;
        let oracle_saving = oracle_injections as f64 / cert.total_injections as f64;
        let fit_delta = (fixed.fit.total - adaptive.fit.total).abs();
        assert!(
            fit_delta <= epsilon,
            "{name}: adaptive/fixed FIT disagree beyond epsilon: |{} - {}| = {fit_delta}",
            adaptive.fit.total,
            fixed.fit.total
        );
        println!(
            "{:<12} {:>12} {:>8} {:>13} {:>7.2}x {:>13} {:>7.2}x {:>10.2} {:>10.2}",
            name,
            cert.total_injections,
            cert.waves,
            apriori_injections,
            saving,
            oracle_injections,
            oracle_saving,
            adaptive_secs,
            oracle_secs,
        );
        rows.push(report::obj([
            ("network", Json::Str(name)),
            (
                "adaptive_injections",
                Json::Num(cert.total_injections as f64),
            ),
            ("adaptive_waves", Json::Num(cert.waves as f64)),
            ("adaptive_bound_fit", Json::Num(cert.total_bound)),
            ("adaptive_wall_s", Json::Num(adaptive_secs)),
            ("adaptive_fit", Json::Num(adaptive.fit.total)),
            ("apriori_injections", Json::Num(apriori_injections as f64)),
            (
                "apriori_samples_per_cell",
                Json::Num(apriori_per_cell as f64),
            ),
            ("apriori_wall_est_s", Json::Num(apriori_secs)),
            (
                "oracle_uniform_injections",
                Json::Num(oracle_injections as f64),
            ),
            ("oracle_samples_per_cell", Json::Num(oracle_per_cell as f64)),
            ("oracle_wall_s", Json::Num(oracle_secs)),
            ("oracle_fit", Json::Num(fixed.fit.total)),
            ("fit_delta", Json::Num(fit_delta)),
            ("injection_saving", Json::Num(saving)),
            ("oracle_uniform_saving", Json::Num(oracle_saving)),
        ]));
    }
    fidelity_bench::rule(112);

    let min_saving = rows
        .iter()
        .filter_map(|r| r.get("injection_saving").and_then(Json::as_f64))
        .fold(f64::INFINITY, f64::min);
    println!("minimum injection saving vs a-priori fixed plan: {min_saving:.2}x (target >= 3x)");
    assert!(
        min_saving >= 3.0,
        "adaptive planner saved only {min_saving:.2}x injections (target >= 3x)"
    );

    report::update(
        "adaptive",
        report::obj([
            ("epsilon", Json::Num(epsilon)),
            ("confidence", Json::Num(0.95)),
            ("precision", Json::Str("Fp16".to_owned())),
            ("quick", Json::Bool(quick)),
            ("min_injection_saving", Json::Num(min_saving)),
            ("networks", Json::Arr(rows)),
        ]),
    );
    fidelity_bench::finish_telemetry();
}
