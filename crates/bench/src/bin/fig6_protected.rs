//! E7 — Fig. 6: Accelerator FIT rates for the CNN workloads assuming the
//! raw FIT rate of all global-control FFs is zero (they are protected).
//! Key result 2: the remaining datapath + local-control FIT still exceeds
//! the 0.2 ASIL-D FF budget, so resilience analysis for those FFs matters.

use fidelity_core::analysis::analyze;
use fidelity_core::fit::{
    ff_fit_budget, ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION, PAPER_RAW_FIT_PER_MB,
};
use fidelity_core::outcome::TopOneMatch;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn main() {
    fidelity_bench::init_telemetry();
    let cfg = fidelity_accel::presets::nvdla_like();
    let budget = ff_fit_budget(ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION);

    println!(
        "Fig. 6 — Accelerator_FIT_rate with global-control FFs protected (FP16, top-1, {} samples/cell)",
        fidelity_bench::samples_per_cell()
    );
    fidelity_bench::rule(76);
    println!(
        "{:<12} {:>12} {:>12} {:>12}   vs 0.2 budget",
        "network", "datapath", "local", "TOTAL"
    );
    fidelity_bench::rule(76);

    let mut all_over = true;
    for workload in classification_suite(42) {
        let name = workload.name.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        let analysis = analyze(
            &engine,
            &trace,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &fidelity_bench::resilient_spec(&format!("fig6_{name}"), 0xF166, false),
        )
        .expect("analysis over fixed workloads");
        let f = &analysis.fit_global_protected;
        assert_eq!(f.global, 0.0, "protected global must contribute nothing");
        let over = f.total > budget;
        all_over &= over;
        println!(
            "{:<12} {:>12} {:>12} {:>12}   {}",
            name,
            fidelity_bench::fit(f.datapath),
            fidelity_bench::fit(f.local),
            fidelity_bench::fit(f.total),
            if over {
                "still OVER budget"
            } else {
                "within budget"
            }
        );
    }
    fidelity_bench::rule(76);
    if all_over {
        println!("All workloads still exceed the 0.2 ASIL-D FF budget without global control —");
        println!("datapath and local-control FFs need resilience analysis too (Key result 2).");
    } else {
        println!("Note: some workloads fall within budget at this configuration; the paper's");
        println!(
            "conclusion holds for its NVDLA point — rerun with more samples or a larger census."
        );
    }
    fidelity_bench::finish_telemetry();
}
