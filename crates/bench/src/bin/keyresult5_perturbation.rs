//! E8 — Key result 5: large single-neuron perturbations are far more likely
//! to cause application output errors than small ones.
//!
//! Reproduces the paper's split: among FP16 injections that corrupt exactly
//! one output neuron (output/partial-sum and local-control faults), compare
//! the output-error probability when |faulty − clean| ≤ 100 against > 100.

use fidelity_core::campaign::run_campaign;
use fidelity_core::outcome::{Outcome, TopOneMatch};
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn main() {
    let cfg = fidelity_accel::presets::nvdla_like();
    println!(
        "Key result 5 — single-faulty-neuron perturbation magnitude vs. output errors (FP16 CNNs, {} samples/cell)",
        fidelity_bench::samples_per_cell()
    );
    fidelity_bench::rule(74);
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "network", "small samples", "small err%", "large samples", "large err%"
    );
    fidelity_bench::rule(74);

    let mut small = (0usize, 0usize); // (errors, total)
    let mut large = (0usize, 0usize);
    for workload in classification_suite(42) {
        let name = workload.name.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        let campaign = run_campaign(
            &engine,
            &trace,
            &cfg,
            &TopOneMatch,
            &fidelity_bench::campaign_spec(0xF168, true),
        )
        .expect("campaign over fixed workloads");

        let mut net_small = (0usize, 0usize);
        let mut net_large = (0usize, 0usize);
        for cell in &campaign.cells {
            for event in &cell.events {
                if event.faulty_neurons != 1 {
                    continue;
                }
                let err = usize::from(event.outcome == Outcome::OutputError);
                if event.max_perturbation <= 100.0 {
                    net_small.0 += err;
                    net_small.1 += 1;
                } else {
                    net_large.0 += err;
                    net_large.1 += 1;
                }
            }
        }
        println!(
            "{:<12} {:>14} {:>13.1}% {:>14} {:>13.1}%",
            name,
            net_small.1,
            pct(net_small),
            net_large.1,
            pct(net_large)
        );
        small.0 += net_small.0;
        small.1 += net_small.1;
        large.0 += net_large.0;
        large.1 += net_large.1;
    }

    fidelity_bench::rule(74);
    println!(
        "{:<12} {:>14} {:>13.1}% {:>14} {:>13.1}%",
        "TOTAL",
        small.1,
        pct(small),
        large.1,
        pct(large)
    );
    println!("\nPaper: perturbation <= 100 → < 4% output errors; > 100 → > 45%. The shape to");
    println!(
        "check is a large gap between the two columns (here: {:.1}% vs {:.1}%).",
        pct(small),
        pct(large)
    );
}

fn pct((err, total): (usize, usize)) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * err as f64 / total as f64
    }
}
