//! Model-checker coverage statistics for the concurrency verification
//! layer (EXPERIMENTS.md, "Concurrency verification" section).
//!
//! Runs every protocol model the workspace ships — the four exhaustive
//! (preemption-bounded) checks plus the random-walk sweep — and prints a
//! table of interleavings explored, completeness, truncations, and wall
//! clock. Requires the `loom_model` feature:
//!
//! ```text
//! cargo run --release -p fidelity-bench --features loom_model --bin model_coverage
//! ```
//!
//! Every run is deterministic (the DFS order is a function of the model,
//! the random walks are seeded), so the numbers below are reproducible
//! bit-for-bit and any failure comes with a replayable decision trace.

use std::time::Instant;

fn row(name: &str, bound: &str, run: impl FnOnce() -> loom::Report) {
    let t0 = Instant::now();
    let r = run();
    let elapsed = t0.elapsed();
    println!(
        "| {name} | {bound} | {} | {} | {} | {:.2?} |",
        r.executions,
        if r.complete { "yes" } else { "no" },
        r.truncated,
        elapsed
    );
}

fn main() {
    println!("| protocol | bound | interleavings | complete | truncated | time |");
    println!("|---|---|---|---|---|---|");
    row("work-steal deque (2w/3t funnel)", "3 preemptions", || {
        fidelity_par::modelcheck::deque_exhaustive()
    });
    row(
        "work-steal deque (3w/6t funnel)",
        "300 random walks",
        || fidelity_par::modelcheck::deque_random_walk(0xF1DE_117F, 300),
    );
    row("ordered checkpoint commit", "unbounded", || {
        fidelity_core::modelcheck::ordered_commit_exhaustive()
    });
    row("supervisor dedup + worker", "unbounded", || {
        fidelity_serve::modelcheck::supervisor_dedup_exhaustive()
    });
    row("supervisor shed (cap 1)", "unbounded", || {
        fidelity_serve::modelcheck::supervisor_shed_exhaustive()
    });
    row("histogram record/snapshot", "3 preemptions", || {
        fidelity_obs::modelcheck::histogram_exhaustive()
    });
}
