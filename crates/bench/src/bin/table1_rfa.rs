//! E1 — Table I / Fig. 2: Reuse Factor Analysis summary.
//!
//! Regenerates the paper's hand-derived reuse factors for every worked
//! example of Fig. 2 (NVDLA-like targets a1–a4, Eyeriss-like b1–b3) by
//! running Algorithm 1 on the dataflow-generated inputs, and prints the
//! Table-I summary for the NVDLA configuration.

use fidelity_accel::dataflow::{EyerissDataflow, NvdlaDataflow};
use fidelity_core::rfa::reuse_factor_analysis;

fn main() {
    let nvdla = NvdlaDataflow::paper_config();
    let eyeriss = EyerissDataflow {
        k: 12,
        channel_reuse: 16,
    };

    println!("Table I / Fig. 2 — Reuse Factor Analysis (Algorithm 1)");
    fidelity_bench::rule(78);
    println!(
        "{:<52} {:>8} {:>12}",
        "target flip-flop", "RF", "paper value"
    );
    fidelity_bench::rule(78);

    let rows: Vec<(String, usize, String)> = vec![
        row(&nvdla.example_a1(), format!("t = {}", nvdla.weight_hold)),
        row(&nvdla.example_a2(), format!("t = {}", nvdla.weight_hold)),
        row(&nvdla.example_a3(), "1".into()),
        row(&nvdla.example_a4(), format!("k² = {}", nvdla.lanes)),
        row(&eyeriss.example_b1(), format!("k = {}", eyeriss.k)),
        row(
            &eyeriss.example_b2(),
            format!("k·t = {}", eyeriss.k * eyeriss.channel_reuse),
        ),
        row(&eyeriss.example_b3(), "1".into()),
    ];
    for (target, rf, paper) in rows {
        println!("{target:<52} {rf:>8} {paper:>12}");
    }

    fidelity_bench::rule(78);
    println!("\nTable I summary for the NVDLA-like configuration:");
    println!("  before on-chip memory ........ RF = all neurons using the value (scheduling)");
    println!(
        "  buffer-to-MAC input .......... RF = {} (broadcast lanes)",
        reuse_factor_analysis(&nvdla.input_operand_rfa())
            .expect("well-formed inputs")
            .rf()
    );
    println!(
        "  buffer-to-MAC weight ......... RF = {} (weight-stationary hold)",
        reuse_factor_analysis(&nvdla.weight_operand_rfa())
            .expect("well-formed inputs")
            .rf()
    );
    println!(
        "  output / partial sum ......... RF = {}",
        reuse_factor_analysis(&nvdla.output_rfa())
            .expect("well-formed inputs")
            .rf()
    );
}

fn row(inputs: &fidelity_accel::dataflow::RfaInputs, paper: String) -> (String, usize, String) {
    let result = reuse_factor_analysis(inputs).expect("well-formed inputs");
    (inputs.target.clone(), result.rf(), paper)
}
