//! E10 — Sec. VI: naive software fault injection underestimates the FIT
//! rate.
//!
//! The naive technique models every hardware transient error as a single
//! bit flip in a single architectural state — no reuse factors, no control
//! faults, no FF census. The paper found it underestimates NVDLA's
//! Accelerator_FIT_rate by up to 25×.

use fidelity_core::analysis::analyze;
use fidelity_core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity_core::naive::naive_fit_rate;
use fidelity_core::outcome::CorrectnessMetric;
use fidelity_core::outcome::TopOneMatch;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::metrics::DetectionThreshold;
use fidelity_workloads::{classification_suite, yolo_workload};

fn main() {
    let cfg = fidelity_accel::presets::nvdla_like();
    let naive_samples = fidelity_bench::samples_per_cell() * 10;

    println!(
        "Sec. VI — FIdelity vs. naive single-architectural-bit-flip FI (FP16, {} naive samples)",
        naive_samples
    );
    fidelity_bench::rule(72);
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "network", "FIdelity FIT", "naive FIT", "underestimate"
    );
    fidelity_bench::rule(72);

    let mut workloads = classification_suite(42);
    workloads.push(yolo_workload(42));
    let mut worst = 0.0f64;
    for workload in workloads {
        let name = workload.name.clone();
        let metric: Box<dyn CorrectnessMetric> = if name == "yolo" {
            Box::new(DetectionThreshold::ten_percent())
        } else {
            Box::new(TopOneMatch)
        };
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        let analysis = analyze(
            &engine,
            &trace,
            &cfg,
            metric.as_ref(),
            PAPER_RAW_FIT_PER_MB,
            &fidelity_bench::campaign_spec(0xF16A, false),
        )
        .expect("analysis over fixed workloads");
        let naive = naive_fit_rate(
            &engine,
            &trace,
            metric.as_ref(),
            &cfg,
            PAPER_RAW_FIT_PER_MB,
            naive_samples,
            0x000B_ADF1,
        )
        .expect("naive campaign over fixed workloads");
        let ratio = if naive.fit_estimate > 0.0 {
            analysis.fit.total / naive.fit_estimate
        } else {
            f64::INFINITY
        };
        worst = worst.max(ratio);
        println!(
            "{:<12} {:>14} {:>14} {:>15}",
            name,
            fidelity_bench::fit(analysis.fit.total),
            fidelity_bench::fit(naive.fit_estimate),
            if ratio.is_finite() {
                format!("{ratio:.1}x")
            } else {
                "inf".into()
            }
        );
    }
    fidelity_bench::rule(72);
    println!(
        "Worst-case underestimation: {:.1}x (paper: up to 25x across workloads).",
        worst
    );
    println!("The naive technique misses reuse (one FF corrupting up to 16 neurons),");
    println!("control-FF behaviour, and the FF census weighting — hence the gap.");
}
