//! E5/E6 — Fig. 5: Accelerator FIT rates for the Transformer (BLEU-score
//! difference metrics) and Yolo (detection-score difference metrics) at
//! FP16, for both the 10% and 20% thresholds (Key result 3: the correctness
//! metric strongly influences the FIT rate).

use fidelity_core::analysis::analyze;
use fidelity_core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity_core::outcome::CorrectnessMetric;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::metrics::{BleuThreshold, DetectionThreshold};
use fidelity_workloads::{transformer_workload, yolo_workload, Workload};

type Case = (fn(u64) -> Workload, Box<dyn CorrectnessMetric>);

fn main() {
    fidelity_bench::init_telemetry();
    let cfg = fidelity_accel::presets::nvdla_like();
    println!(
        "Fig. 5 — Accelerator_FIT_rate for Transformer & Yolo (FP16, raw {} FIT/MB, {} samples/cell)",
        PAPER_RAW_FIT_PER_MB,
        fidelity_bench::samples_per_cell()
    );
    fidelity_bench::rule(92);
    println!(
        "{:<12} {:<34} {:>10} {:>10} {:>10} {:>10}",
        "network", "correctness metric", "datapath", "local", "global", "TOTAL"
    );
    fidelity_bench::rule(92);

    let cases: Vec<Case> = vec![
        (
            transformer_workload as fn(u64) -> Workload,
            Box::new(BleuThreshold::ten_percent()),
        ),
        (
            transformer_workload,
            Box::new(BleuThreshold::twenty_percent()),
        ),
        (yolo_workload, Box::new(DetectionThreshold::ten_percent())),
        (
            yolo_workload,
            Box::new(DetectionThreshold::twenty_percent()),
        ),
    ];

    let mut totals = Vec::new();
    for (case, (build, metric)) in cases.into_iter().enumerate() {
        let workload = build(42);
        let name = workload.name.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        let analysis = analyze(
            &engine,
            &trace,
            &cfg,
            metric.as_ref(),
            PAPER_RAW_FIT_PER_MB,
            &fidelity_bench::resilient_spec(&format!("fig5_{name}_{case}"), 0xF165, false),
        )
        .expect("analysis over fixed workloads");
        let f = &analysis.fit;
        println!(
            "{:<12} {:<34} {:>10} {:>10} {:>10} {:>10}",
            name,
            metric.name(),
            fidelity_bench::fit(f.datapath),
            fidelity_bench::fit(f.local),
            fidelity_bench::fit(f.global),
            fidelity_bench::fit(f.total)
        );
        totals.push((
            name,
            metric.name().to_owned(),
            f.total,
            f.datapath + f.local,
        ));
    }

    fidelity_bench::rule(92);
    println!("Expected shapes (paper key results 1 and 3):");
    println!("  - Yolo @10% far exceeds the 0.2 ASIL-D FF budget (paper reports 9.5 FIT);");
    println!("  - the 20% thresholds give lower datapath/local FIT than the 10% thresholds,");
    println!("    showing the correctness metric's large impact (Key result 3).");
    for pair in totals.chunks(2) {
        if let [a, b] = pair {
            println!(
                "  - {}: datapath+local {} @ \"{}\" vs {} @ \"{}\"",
                a.0,
                fidelity_bench::fit(a.3),
                a.1,
                fidelity_bench::fit(b.3),
                b.1
            );
        }
    }
    fidelity_bench::finish_telemetry();
}
