//! E3 — Sec. IV validation: software fault models vs. the register-level
//! golden reference.
//!
//! For each representative workload layer (the Table III set: convolutions
//! from Inception/ResNet/Yolo, an FC and an attention MatMul from the
//! Transformer, an FC inside the LSTM), random fault sites are injected into
//! the register-level engine and the same sites are used to instantiate the
//! software fault models. The paper's criteria:
//!
//! * datapath faults must match **exactly** (neurons and values),
//! * local-control faults must have RF ≤ 1 with the same neuron,
//! * global-control faults are modeled as always failing; the RTL-masked
//!   fraction is reported (the paper measured ~9.5%).

use fidelity_core::validate::{random_sites, rtl_layer_for, validate_many, ValidationReport};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::precision::Precision;
use fidelity_rtl::RtlEngine;
use fidelity_workloads::{
    classification_suite, lstm_workload, transformer_workload, yolo_workload, Workload,
};

struct Case {
    name: &'static str,
    workload: Workload,
    layer: &'static str,
}

fn main() {
    let sites_per_case = fidelity_bench::validation_sites();
    let mut classification = classification_suite(42);
    let cases = vec![
        Case {
            name: "inception 3x3 conv",
            workload: classification.remove(0),
            layer: "m0_b1b",
        },
        Case {
            name: "resnet 3x3 conv",
            workload: classification.remove(0),
            layer: "r1_c1",
        },
        Case {
            name: "yolo 3x3 conv",
            workload: yolo_workload(42),
            layer: "c2",
        },
        Case {
            name: "transformer FC (FFN)",
            workload: transformer_workload(42),
            layer: "enc_ffn1",
        },
        Case {
            name: "transformer MatMul (attention)",
            workload: transformer_workload(42),
            layer: "enc_sa_h0_scores",
        },
        Case {
            name: "LSTM FC (gate projection)",
            workload: lstm_workload(42),
            layer: "t1_xg",
        },
    ];

    println!(
        "Sec. IV validation — {} random FF fault sites per workload layer (FP16, 16 lanes, 16-cycle weight hold)",
        sites_per_case
    );
    fidelity_bench::rule(118);
    println!(
        "{:<32} {:>7} {:>7} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9}",
        "workload layer",
        "sites",
        "masked",
        "dp cases",
        "dp exact",
        "local",
        "match",
        "global",
        "fail",
        "masked",
        "timeouts"
    );
    fidelity_bench::rule(118);

    let mut total = ValidationReport::default();
    let mut rng = SplitMix64::new(0x005E_C41D);
    for case in cases {
        let (engine, trace) = fidelity_bench::deploy(case.workload, Precision::Fp16);
        let node = engine
            .network()
            .node_index(case.layer)
            .unwrap_or_else(|| panic!("layer {} not found", case.layer));
        let layer = rtl_layer_for(&engine, &trace, node).expect("MAC layer lifts to RTL");
        let rtl = RtlEngine::new(layer, 16, 16);
        let sites = random_sites(&rtl, sites_per_case, &mut rng);
        let report = validate_many(&rtl, &sites);
        print_row(case.name, &report);
        merge(&mut total, &report);
    }

    fidelity_bench::rule(118);
    print_row("TOTAL", &total);
    fidelity_bench::rule(118);

    // Portability check: the same methodology against the Eyeriss-like
    // row-stationary engine (a structurally different dataflow).
    println!("\nEyeriss-like systolic engine (4 PE rows, 3-channel reuse):");
    {
        use fidelity_core::validate_systolic::{random_systolic_sites, validate_systolic_many};
        use fidelity_rtl::SystolicEngine;
        let w = classification_suite(42).remove(1);
        let (engine, trace) = fidelity_bench::deploy(w, Precision::Fp16);
        let node = engine.network().node_index("r1_c1").expect("resnet conv");
        let layer = rtl_layer_for(&engine, &trace, node).expect("conv lifts");
        let sys = SystolicEngine::new(layer, 4, 3);
        let sites = random_systolic_sites(&sys, sites_per_case, &mut rng);
        let report = validate_systolic_many(&sys, &sites);
        print_row("resnet conv (systolic)", &report);
        merge(&mut total, &report);
        if !report.mismatches.is_empty() {
            println!("  SYSTOLIC MISMATCHES: {}", report.mismatches.len());
        }
    }

    let global_masked_pct = if total.global_cases > 0 {
        100.0 * total.global_masked as f64 / total.global_cases as f64
    } else {
        0.0
    };
    println!("\nSummary vs. the paper's Sec. IV-C:");
    println!(
        "  datapath software models matched RTL exactly in {}/{} non-masked cases (paper: all 8262)",
        total.datapath_exact, total.datapath_cases
    );
    println!(
        "  local-control faults had RF<=1 with the predicted neuron in {}/{} cases (paper: all 138; values non-deterministic)",
        total.local_match, total.local_cases
    );
    println!(
        "  global-control faults: {:.1}% masked in RTL (paper: ~9.5%); FIdelity conservatively models them as failures",
        global_masked_pct
    );
    println!(
        "  time-outs observed: {} (paper: 72, all global control)",
        total.timeouts
    );
    if total.mismatches.is_empty() {
        println!("  NO MISMATCHES — software fault models fully validated");
    } else {
        println!("  MISMATCHES: {}", total.mismatches.len());
        for m in total.mismatches.iter().take(10) {
            println!("    {m}");
        }
        std::process::exit(1);
    }
}

fn print_row(name: &str, r: &ValidationReport) {
    println!(
        "{:<32} {:>7} {:>7} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9}",
        name,
        r.total,
        r.masked_agreed,
        r.datapath_cases,
        r.datapath_exact,
        r.local_cases,
        r.local_match,
        r.global_cases,
        r.global_failure,
        r.global_masked,
        r.timeouts
    );
}

fn merge(total: &mut ValidationReport, r: &ValidationReport) {
    total.total += r.total;
    total.masked_agreed += r.masked_agreed;
    total.datapath_cases += r.datapath_cases;
    total.datapath_exact += r.datapath_exact;
    total.local_cases += r.local_cases;
    total.local_match += r.local_match;
    total.global_cases += r.global_cases;
    total.global_failure += r.global_failure;
    total.global_masked += r.global_masked;
    total.timeouts += r.timeouts;
    total.mismatches.extend(r.mismatches.iter().cloned());
}
