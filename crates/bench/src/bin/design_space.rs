//! E15 (extension) — early design-space exploration, the paper's stated
//! motivation for an RTL-free framework: compare FIT rates across three
//! NVDLA-like design points *before any RTL exists*. The fault models
//! themselves change with the geometry (reuse factors scale with lanes and
//! weight-hold), the exposure changes with the FF census, and Eq. 2 folds
//! both into one number per design.

use fidelity_core::analysis::analyze;
use fidelity_core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity_core::outcome::TopOneMatch;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn main() {
    let designs = [
        fidelity_accel::presets::nvdla_small_like(),
        fidelity_accel::presets::nvdla_like(),
        fidelity_accel::presets::nvdla_large_like(),
    ];
    println!(
        "Design-space exploration (FP16, top-1, {} samples/cell)",
        fidelity_bench::samples_per_cell()
    );
    fidelity_bench::rule(96);
    println!(
        "{:<20} {:>6} {:>6} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "design", "lanes", "hold", "FF bits", "datapath", "local", "global", "TOTAL"
    );
    fidelity_bench::rule(96);

    for cfg in designs {
        cfg.validate().expect("presets validate");
        let (lanes, hold) = match cfg.dataflow {
            fidelity_accel::DataflowKind::Nvdla(d) => (d.lanes, d.weight_hold),
            fidelity_accel::DataflowKind::Eyeriss(d) => (d.k * d.k, d.channel_reuse),
        };
        // Average across the CNN suite for a design-level number.
        let mut totals = fidelity_core::fit::FitBreakdown::default();
        let mut n = 0.0;
        for workload in classification_suite(42) {
            let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
            let analysis = analyze(
                &engine,
                &trace,
                &cfg,
                &TopOneMatch,
                PAPER_RAW_FIT_PER_MB,
                &fidelity_bench::campaign_spec(0xF16D, false),
            )
            .expect("analysis over fixed workloads");
            totals.datapath += analysis.fit.datapath;
            totals.local += analysis.fit.local;
            totals.global += analysis.fit.global;
            totals.total += analysis.fit.total;
            n += 1.0;
        }
        println!(
            "{:<20} {:>6} {:>6} {:>9} {:>10} {:>10} {:>10} {:>10}",
            cfg.name,
            lanes,
            hold,
            cfg.total_ff_bits,
            fidelity_bench::fit(totals.datapath / n),
            fidelity_bench::fit(totals.local / n),
            fidelity_bench::fit(totals.global / n),
            fidelity_bench::fit(totals.total / n)
        );
    }
    fidelity_bench::rule(96);
    println!("FIT scales with the FF census (global control is proportional to it), while");
    println!("the datapath contribution additionally reflects the geometry: more lanes and a");
    println!("longer weight hold mean larger reuse factors — more faulty neurons per flip —");
    println!("partly offset by the shorter execution (less exposure per inference).");
}
