//! E4 — Fig. 4: Accelerator FIT rates for Inception, ResNet, MobileNet at
//! FP16 / INT16 / INT8, stacked by datapath / local-control / global-control
//! contributions (top-1 correctness metric, raw FF FIT = 600/MB).

use fidelity_core::analysis::analyze;
use fidelity_core::fit::{
    ff_fit_budget, ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION, PAPER_RAW_FIT_PER_MB,
};
use fidelity_core::outcome::TopOneMatch;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn main() {
    fidelity_bench::init_telemetry();
    let cfg = fidelity_accel::presets::nvdla_like();
    let spec_seed = 0xF164;
    let budget = ff_fit_budget(ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION);

    println!(
        "Fig. 4 — Accelerator_FIT_rate (raw {} FIT/MB, {} samples/cell, top-1 metric)",
        PAPER_RAW_FIT_PER_MB,
        fidelity_bench::samples_per_cell()
    );
    fidelity_bench::rule(86);
    println!(
        "{:<12} {:<8} {:>10} {:>10} {:>10} {:>10}   vs ASIL-D budget",
        "network", "precision", "datapath", "local", "global", "TOTAL"
    );
    fidelity_bench::rule(86);

    for precision in [Precision::Fp16, Precision::Int16, Precision::Int8] {
        for workload in classification_suite(42) {
            let name = workload.name.clone();
            let (engine, trace) = fidelity_bench::deploy(workload, precision);
            let analysis = analyze(
                &engine,
                &trace,
                &cfg,
                &TopOneMatch,
                PAPER_RAW_FIT_PER_MB,
                &fidelity_bench::resilient_spec(
                    &format!("fig4_{name}_{precision}"),
                    spec_seed,
                    false,
                ),
            )
            .expect("analysis over fixed workloads");
            let f = &analysis.fit;
            println!(
                "{:<12} {:<8} {:>10} {:>10} {:>10} {:>10}   {}",
                name,
                precision.to_string(),
                fidelity_bench::fit(f.datapath),
                fidelity_bench::fit(f.local),
                fidelity_bench::fit(f.global),
                fidelity_bench::fit(f.total),
                if f.total > budget {
                    format!("{}x OVER the 0.2 budget", (f.total / budget).round())
                } else {
                    "within budget".into()
                }
            );
        }
        println!();
    }
    fidelity_bench::rule(86);
    println!("Expected shapes (paper key results 1, 2, 4):");
    println!("  - every total far exceeds the 0.2 ASIL-D FF budget (Key result 1);");
    println!(
        "  - global control dominates, but datapath+local alone still exceed 0.2 (Key result 2);"
    );
    println!("  - FP16 networks generally have higher FIT than INT16/INT8; INT8 >= INT16 (Key result 4).");
    fidelity_bench::finish_telemetry();
}
