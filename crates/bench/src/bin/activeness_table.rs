//! Eq. 1 made visible: the per-layer, per-category FF activeness breakdown
//! (Fig. 3, step 1) for one workload — which fraction of each category's
//! FFs is inactive due to Class 1 (component not used), Class 2 (signal not
//! used for the deployed precision), and Class 3 (temporally idle, from the
//! performance model's fetch/compute balance).

use fidelity_accel::perf::{extract_work, LayerTiming};
use fidelity_core::activeness::prob_inactive;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn main() {
    let cfg = fidelity_accel::presets::nvdla_like();
    let precision = Precision::Fp16;
    let workload = classification_suite(42).remove(1); // resnet
    let name = workload.name.clone();
    let (engine, trace) = fidelity_bench::deploy(workload, precision);
    let work = extract_work(&engine, &trace);

    println!(
        "FF activeness (Eq. 1) — {name} at {precision} on {}",
        cfg.name
    );
    fidelity_bench::rule(104);
    println!(
        "{:<14} {:>9} {:>9} {:>9}   Prob_inactive per category",
        "layer", "total cyc", "fetch cyc", "MAC cyc"
    );
    fidelity_bench::rule(104);
    for (idx, w) in work.iter().enumerate() {
        if engine.mac_spec(idx, &trace).is_none() {
            continue;
        }
        let timing = LayerTiming::analyze(&cfg, w);
        let probs: Vec<String> = cfg
            .census
            .iter()
            .map(|(cat, _)| {
                format!(
                    "{}={:.2}",
                    short(cat.to_string()),
                    prob_inactive(&cfg, cat, &timing, precision)
                )
            })
            .collect();
        println!(
            "{:<14} {:>9} {:>9} {:>9}   {}",
            w.name,
            timing.total_cycles,
            timing.fetch_cycles,
            timing.mac_cycles,
            probs.join(" ")
        );
    }
    fidelity_bench::rule(104);
    println!("Legend: dp-i/w = datapath input/weight (bb = before buffer, bm = buffer-to-MAC),");
    println!("dp-o = output/psum, lc/gc = local/global control. Fetch-bound layers idle their");
    println!("MAC-path FFs (high Class 3); global control never idles; Class 1/2 fractions");
    println!("come from the accelerator's InactiveModel (decompression unit, INT-only logic).");
}

fn short(cat: String) -> String {
    cat.replace("datapath input (before buffer)", "dp-i-bb")
        .replace("datapath weight (before buffer)", "dp-w-bb")
        .replace("datapath input (buffer-to-MAC)", "dp-i-bm")
        .replace("datapath weight (buffer-to-MAC)", "dp-w-bm")
        .replace("datapath output (after MAC)", "dp-o")
        .replace("local control", "lc")
        .replace("global control", "gc")
}
