//! E2 — Table II: NVDLA software fault models.
//!
//! Prints, for every FF category of the NVDLA-like census, the derived
//! software fault model and the reuse-factor / faulty-neuron description the
//! paper tabulates for convolution, fully-connected, and matmul layers.

use fidelity_accel::presets;
use fidelity_core::models::{model_for, SoftwareFaultModel};
use fidelity_dnn::macspec::OperandKind;

fn main() {
    let cfg = presets::nvdla_like();
    println!(
        "Table II — software fault models for {} (lanes = {}, weight hold = {})",
        cfg.name,
        cfg.dataflow.lanes(),
        match cfg.dataflow {
            fidelity_accel::DataflowKind::Nvdla(d) => d.weight_hold,
            fidelity_accel::DataflowKind::Eyeriss(d) => d.k,
        }
    );
    fidelity_bench::rule(100);
    println!(
        "{:<34} {:>6}  {:<10} software fault model",
        "FF category", "%FF", "RF"
    );
    fidelity_bench::rule(100);
    for (category, frac) in cfg.census.iter() {
        let model = model_for(category, &cfg).expect("census categories all have models");
        let (rf, description) = describe(model);
        println!(
            "{:<34} {:>5.1}%  {:<10} {}",
            category.to_string(),
            frac * 100.0,
            rf,
            description
        );
    }
    fidelity_bench::rule(100);
    println!("\nPer-layer faulty-neuron geometry:");
    println!("  conv:   before-buffer weight → whole output channel; buffer-to-MAC input →");
    println!("          16 consecutive channels at one (h, w); buffer-to-MAC weight → ≤16");
    println!("          consecutive positions in one channel; output/psum → 1 neuron.");
    println!("  FC:     before-buffer input → all neurons; weight → one neuron per batch;");
    println!("          buffer-to-MAC input → 16 consecutive features.");
    println!("  matmul: input → output row window; weight → output column window.");
}

fn describe(model: SoftwareFaultModel) -> (String, String) {
    match model {
        SoftwareFaultModel::BeforeBuffer { kind } => (
            "use count".into(),
            format!(
                "one bit flip in one stored {} value; all users faulty",
                operand(kind)
            ),
        ),
        SoftwareFaultModel::Operand {
            kind,
            window,
            random_suffix,
        } => (
            format!("{}", window.positions * window.channels),
            format!(
                "one bit flip in one {} operand; window {}pos × {}ch{}",
                operand(kind),
                window.positions,
                window.channels,
                if random_suffix { ", random suffix" } else { "" }
            ),
        ),
        SoftwareFaultModel::OutputValue => (
            "1".into(),
            "one bit flip at one output neuron / partial sum".into(),
        ),
        SoftwareFaultModel::LocalControl => {
            ("1".into(), "random value at one output neuron".into())
        }
        SoftwareFaultModel::GlobalControl => ("ALL".into(), "system failure".into()),
    }
}

fn operand(kind: OperandKind) -> &'static str {
    match kind {
        OperandKind::Input => "input",
        OperandKind::Weight => "weight",
    }
}
