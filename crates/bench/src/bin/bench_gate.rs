//! The bench regression gate binary.
//!
//! ```text
//! bench_gate [BASELINE] [CURRENT] [--tolerance FRACTION]
//! ```
//!
//! Compares `CURRENT` (default `BENCH_injection.json`, the file the quick
//! bench just rewrote) against `BASELINE` (default `BENCH_baseline.json`,
//! the committed reference) and exits nonzero when any tracked
//! mean-per-injection metric regressed beyond the tolerance (default 15%,
//! overridable with `--tolerance` or `FIDELITY_BENCH_GATE_TOLERANCE`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fidelity_bench::gate;
use fidelity_obs::json::{self, Json};

fn workspace_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tolerance = std::env::var("FIDELITY_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(gate::DEFAULT_TOLERANCE);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("error: --tolerance requires a fraction (e.g. 0.15)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    let baseline_path = paths
        .first()
        .cloned()
        .unwrap_or_else(|| workspace_file("BENCH_baseline.json"));
    let current_path = paths
        .get(1)
        .cloned()
        .unwrap_or_else(|| workspace_file("BENCH_injection.json"));

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let deltas = gate::compare(&baseline, &current, tolerance);
    print!("{}", gate::render(&deltas, tolerance));
    if deltas.iter().any(|d| d.regressed) {
        eprintln!("bench gate: FAIL — per-injection cost regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("bench gate: PASS");
        ExitCode::SUCCESS
    }
}
