//! E9 — Sec. VI speed comparison: register-level simulation vs. mixed-mode
//! vs. FIdelity software fault injection, per injection experiment.
//!
//! The paper reports >10000× speedup over RTL and 40×–2200× over mixed-mode
//! for NVDLA-scale designs. Our register-level engine is far smaller and
//! faster than Synopsys-VCS RTL, so the absolute ratios are compressed; the
//! shape to check is software ≪ mixed-mode ≪ register-level.

use std::time::Instant;

/// Estimated wall-clock per simulated cycle for event-driven RTL simulation
/// (Synopsys-VCS class) of an NVDLA-scale design: ~1000 cycles/second is a
/// generous figure for a multi-million-gate netlist. Used only to translate
/// our compact simulator's cycle counts into what the paper's RTL baseline
/// would cost; the measured columns are from the compact simulator itself.
const RTL_SECONDS_PER_CYCLE: f64 = 1e-3;

use fidelity_bench::report;
use fidelity_core::inject::inject_once;
use fidelity_core::models::SoftwareFaultModel;
use fidelity_core::outcome::TopOneMatch;
use fidelity_core::validate::{random_sites, rtl_layer_for};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::precision::Precision;
use fidelity_obs::json::Json;
use fidelity_rtl::{Disturbance, RtlEngine};
use fidelity_workloads::classification_suite;

fn main() {
    let reps: usize = std::env::var("FIDELITY_SPEEDUP_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mut rows: Vec<Json> = Vec::new();

    println!("Sec. VI — per-injection wall-clock comparison ({reps} injections each)");
    fidelity_bench::rule(112);
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>10} {:>12} {:>14} {:>14}",
        "network",
        "compact-sim",
        "mixed-mode",
        "FIdelity (sw)",
        "cycles",
        "est. VCS",
        "est. rtl/sw",
        "est. mixed/sw"
    );
    fidelity_bench::rule(112);

    for workload in classification_suite(42) {
        let name = workload.name.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        // The largest conv layer is the representative injection target.
        let node = (0..engine.network().node_count())
            .filter(|&i| engine.mac_spec(i, &trace).is_some())
            .max_by_key(|&i| trace.node_outputs[i].len())
            .expect("workloads have MAC layers");
        let layer = rtl_layer_for(&engine, &trace, node).expect("MAC layer lifts to RTL");
        let rtl = RtlEngine::new(layer, 16, 16);
        let mut rng = SplitMix64::new(0xF169);
        let sites = random_sites(&rtl, reps, &mut rng);

        // Register-level: full cycle-driven run per injection.
        let t0 = Instant::now();
        for &site in &sites {
            std::hint::black_box(rtl.run(Disturbance::Ff(site)));
        }
        let rtl_time = t0.elapsed().as_secs_f64() / reps as f64;

        // Mixed-mode: register-level for the target layer, software resume
        // for the rest of the network.
        let t0 = Instant::now();
        for &site in &sites {
            let run = rtl.run(Disturbance::Ff(site));
            let out = engine
                .resume(&trace, node, run.output)
                .expect("resume over fixed workloads");
            std::hint::black_box(out);
        }
        let mixed_time = t0.elapsed().as_secs_f64() / reps as f64;

        // FIdelity software fault injection.
        let t0 = Instant::now();
        for _ in 0..reps {
            let inj = inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("injection over fixed workloads");
            std::hint::black_box(inj);
        }
        let sw_time = t0.elapsed().as_secs_f64() / reps as f64;

        // What the same cycle counts would cost on event-driven RTL: the
        // target layer simulated at RTL speed, plus (for mixed mode) the
        // cheap software remainder.
        let est_rtl = rtl.clean_cycles() as f64 * RTL_SECONDS_PER_CYCLE;
        let est_mixed = est_rtl + (mixed_time - rtl_time).max(0.0);
        rows.push(report::obj([
            ("network", Json::Str(name.clone())),
            ("reps", Json::Num(reps as f64)),
            ("register_level_ns", Json::Num(rtl_time * 1e9)),
            ("mixed_mode_ns", Json::Num(mixed_time * 1e9)),
            ("software_ns", Json::Num(sw_time * 1e9)),
            ("est_rtl_over_sw", Json::Num(est_rtl / sw_time)),
            ("est_mixed_over_sw", Json::Num(est_mixed / sw_time)),
        ]));
        println!(
            "{:<12} {:>12.1}us {:>12.1}us {:>12.1}us {:>10} {:>11.0}s {:>13.0}x {:>13.0}x",
            name,
            rtl_time * 1e6,
            mixed_time * 1e6,
            sw_time * 1e6,
            rtl.clean_cycles(),
            est_rtl,
            est_rtl / sw_time,
            est_mixed / sw_time
        );
    }
    report::update("speedup", Json::Arr(rows));
    fidelity_bench::rule(112);
    println!("The compact golden simulator models registers, not gates, so its measured");
    println!("wall-clock understates true RTL cost by orders of magnitude. Scaling its cycle");
    println!("counts by an event-driven simulator's throughput (~1k cycles/s for an");
    println!("NVDLA-class netlist) reproduces the paper's shape: FIdelity software injection");
    println!("is >10^4–10^5x faster than RTL simulation and far faster than mixed mode.");
}
