//! E12 (extension) — the paper's "Architectural Insights" as experiments:
//!
//! 1. **Selective protection**: greedily protect the FF categories with the
//!    best FIT-per-cost until the ASIL-D FF budget (0.2) is met.
//! 2. **Adaptive protection**: the resilience-critical categories are
//!    workload dependent — compare the top unprotected-FIT category across
//!    workloads.
//! 3. **Value bounding (Key result 5 co-design)**: clamp each layer's
//!    outputs to its calibrated fault-free range and re-measure the FIT
//!    rate; large perturbations (the dangerous ones) are clipped.

use fidelity_core::analysis::analyze;
use fidelity_core::fit::{
    ff_fit_budget, ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION, PAPER_RAW_FIT_PER_MB,
};
use fidelity_core::outcome::TopOneMatch;
use fidelity_core::protect::{default_costs, plan_selective_protection};
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn main() {
    let cfg = fidelity_accel::presets::nvdla_like();
    let budget = ff_fit_budget(ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION);
    let spec = fidelity_bench::campaign_spec(0xF16C, false);

    println!(
        "Architectural insights ({} samples/cell)\n",
        spec.samples_per_cell
    );

    // ---------- 1 & 2: selective / adaptive protection ----------
    println!("1) Selective protection to reach the {budget} FIT budget:");
    for workload in classification_suite(42) {
        let name = workload.name.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        let analysis = analyze(
            &engine,
            &trace,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &spec,
        )
        .expect("analysis over fixed workloads");
        let costs = default_costs(cfg.census.iter().map(|(c, _)| c));
        let plan =
            plan_selective_protection(&analysis.fit, &costs, |c| cfg.census.fraction(c), budget);
        println!(
            "  {:<12} FIT {:>6} -> {:>6}  (met: {}, area cost {:.1}% of FF area)",
            name,
            fidelity_bench::fit(analysis.fit.total),
            fidelity_bench::fit(plan.final_fit),
            plan.met_target,
            plan.total_cost * 100.0
        );
        for step in &plan.steps {
            println!(
                "      protect {:<34} -{:>7} FIT  (cost {:.2}%)",
                step.category.to_string(),
                fidelity_bench::fit(step.fit_removed),
                step.cost * 100.0
            );
        }
    }

    // ---------- 3: value-bounding co-design ----------
    println!("\n2) Value-bounding mitigation (writeback clamp at 1.5x the fault-free range):");
    println!(
        "   {:<12} {:>22} {:>22} {:>12}",
        "network", "datapath+local FIT", "with bounding", "reduction"
    );
    for workload in classification_suite(42) {
        let name = workload.name.clone();
        let inputs = workload.inputs.clone();
        let (mut engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        let base = analyze(
            &engine,
            &trace,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &spec,
        )
        .expect("analysis over fixed workloads");

        engine
            .enable_range_bounding(&inputs, 1.5)
            .expect("slack >= 1");
        let trace_b = engine.trace(&inputs).expect("bounded trace");
        let bounded = analyze(
            &engine,
            &trace_b,
            &cfg,
            &TopOneMatch,
            PAPER_RAW_FIT_PER_MB,
            &spec,
        )
        .expect("bounded analysis");

        let b0 = base.fit.datapath + base.fit.local;
        let b1 = bounded.fit.datapath + bounded.fit.local;
        println!(
            "   {:<12} {:>22} {:>22} {:>11.0}%",
            name,
            fidelity_bench::fit(b0),
            fidelity_bench::fit(b1),
            (1.0 - b1 / b0.max(1e-12)) * 100.0
        );
    }
    println!("\nExpected shapes: global control is always the first (best FIT/cost)");
    println!("protection pick; bounding removes a large share of the datapath+local FIT");
    println!("because it clips exactly the large perturbations Key result 5 identifies.");
}
