//! Criterion bench: Reuse Factor Analysis (Algorithm 1) cost as dataflow
//! geometry scales — the analysis is meant to be cheap enough for early
//! design-space exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fidelity_accel::dataflow::{EyerissDataflow, NvdlaDataflow};
use fidelity_core::rfa::reuse_factor_analysis;

fn bench_rfa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rfa");
    for lanes in [16usize, 64, 256] {
        let df = NvdlaDataflow {
            lanes,
            weight_hold: 16,
        };
        let inputs = df.example_a4();
        group.bench_with_input(BenchmarkId::new("nvdla_input", lanes), &inputs, |b, i| {
            b.iter(|| reuse_factor_analysis(i).expect("well-formed"));
        });
    }
    for k in [12usize, 32, 64] {
        let df = EyerissDataflow {
            k,
            channel_reuse: 16,
        };
        let inputs = df.example_b2();
        group.bench_with_input(BenchmarkId::new("eyeriss_input", k), &inputs, |b, i| {
            b.iter(|| reuse_factor_analysis(i).expect("well-formed"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rfa);
criterion_main!(benches);
