//! Criterion bench: substrate inference cost — full forward vs. the
//! trace/resume partial re-execution that makes campaigns fast.

use criterion::{criterion_group, criterion_main, Criterion};
use fidelity_dnn::precision::Precision;
use fidelity_workloads::{classification_suite, transformer_workload};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");

    for (label, workload) in [
        ("resnet", classification_suite(42).remove(1)),
        ("transformer", transformer_workload(42)),
    ] {
        let inputs = workload.inputs.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        group.bench_function(format!("{label}_forward"), |b| {
            b.iter(|| engine.forward(&inputs).expect("fixed workload"));
        });
        // Resume from the last MAC layer: the common injection case.
        let node = (0..engine.network().node_count())
            .rfind(|&i| engine.mac_spec(i, &trace).is_some())
            .expect("has MAC layers");
        let replacement = trace.node_outputs[node].clone();
        group.bench_function(format!("{label}_resume_last_mac"), |b| {
            b.iter(|| {
                engine
                    .resume(&trace, node, replacement.clone())
                    .expect("fixed workload")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
