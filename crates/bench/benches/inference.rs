//! Criterion bench: substrate inference cost — full forward vs. the
//! trace/resume partial re-execution that makes campaigns fast.
//!
//! Alongside the Criterion output, a manual timing pass merges an
//! `inference` section (mean/best ns for forward and last-MAC resume per
//! workload) into `BENCH_injection.json`. `FIDELITY_BENCH_QUICK=1` writes
//! the section from a short run and skips the Criterion sweep.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use fidelity_bench::report;
use fidelity_dnn::precision::Precision;
use fidelity_obs::json::Json;
use fidelity_workloads::{classification_suite, transformer_workload, Workload};

fn suite() -> Vec<(&'static str, Workload)> {
    vec![
        ("resnet", classification_suite(42).remove(1)),
        ("transformer", transformer_workload(42)),
    ]
}

/// Times forward and last-MAC resume for each workload; returns the
/// `inference` report section.
fn measure_inference(reps: usize) -> Json {
    let mut rows = Vec::new();
    for (label, workload) in suite() {
        let inputs = workload.inputs.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        let node = (0..engine.network().node_count())
            .rfind(|&i| engine.mac_spec(i, &trace).is_some())
            .expect("has MAC layers");
        let replacement = trace.node_outputs[node].clone();

        let mut fwd = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            black_box(engine.forward(&inputs).expect("fixed workload"));
            fwd.push(t.elapsed().as_nanos() as f64);
        }
        let (fwd_mean, fwd_best) = report::mean_best(&fwd);

        let mut res = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            black_box(
                engine
                    .resume(&trace, node, replacement.clone())
                    .expect("fixed workload"),
            );
            res.push(t.elapsed().as_nanos() as f64);
        }
        let (res_mean, res_best) = report::mean_best(&res);

        rows.push(report::obj([
            ("network", Json::Str(label.to_owned())),
            ("reps", Json::Num(reps as f64)),
            (
                "forward",
                report::obj([
                    ("mean_ns", Json::Num(fwd_mean)),
                    ("best_ns", Json::Num(fwd_best)),
                ]),
            ),
            (
                "resume_last_mac",
                report::obj([
                    ("mean_ns", Json::Num(res_mean)),
                    ("best_ns", Json::Num(res_best)),
                ]),
            ),
        ]));
    }
    Json::Arr(rows)
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");

    for (label, workload) in suite() {
        let inputs = workload.inputs.clone();
        let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
        group.bench_function(format!("{label}_forward"), |b| {
            b.iter(|| engine.forward(&inputs).expect("fixed workload"));
        });
        // Resume from the last MAC layer: the common injection case.
        let node = (0..engine.network().node_count())
            .rfind(|&i| engine.mac_spec(i, &trace).is_some())
            .expect("has MAC layers");
        let replacement = trace.node_outputs[node].clone();
        group.bench_function(format!("{label}_resume_last_mac"), |b| {
            b.iter(|| {
                engine
                    .resume(&trace, node, replacement.clone())
                    .expect("fixed workload")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);

fn main() {
    if std::env::args().any(|a| a == "--test" || a == "--list") {
        return;
    }
    let quick = report::quick();
    let reps = if quick { 5 } else { 30 };
    report::update("inference", measure_inference(reps));
    if !quick {
        benches();
    }
}
