//! Criterion bench: serial vs. multi-worker campaign wall-clock.
//!
//! The parallel engine's contract is "bit-identical results for any worker
//! count" (see `tests/parallel_determinism.rs`), so the only thing worker
//! count may change is wall-clock. This bench times the same campaign at
//! 1, 2, and 4 workers; the determinism contract is re-checked on the bench
//! workload itself before timing starts. Injections/second follows from the
//! printed injection count divided by the Criterion mean.

use criterion::{criterion_group, criterion_main, Criterion};
use fidelity_core::campaign::{run_campaign, CampaignSpec, MacTier};
use fidelity_core::outcome::TopOneMatch;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn bench_campaign_parallel(c: &mut Criterion) {
    let workload = classification_suite(42).remove(2); // mobilenet: smallest
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
    let accel = fidelity_accel::presets::nvdla_like();

    let spec_at = |threads: usize| CampaignSpec {
        samples_per_cell: 300,
        seed: 1,
        threads,
        record_events: false,
        target_ci_halfwidth: None,
        resilience: Default::default(),
        progress: None,
        batch: 0,
        mac_tier: MacTier::Bitwise,
        adaptive: None,
    };

    // The contract the speedup is allowed to assume: worker count never
    // changes the result.
    let serial =
        run_campaign(&engine, &trace, &accel, &TopOneMatch, &spec_at(1)).expect("serial runs");
    let quad =
        run_campaign(&engine, &trace, &accel, &TopOneMatch, &spec_at(4)).expect("parallel runs");
    assert_eq!(serial.cells.len(), quad.cells.len());
    for (s, p) in serial.cells.iter().zip(&quad.cells) {
        assert_eq!(s.node, p.node);
        assert_eq!(
            (s.samples, s.masked, s.output_error, s.anomaly),
            (p.samples, p.masked, p.output_error, p.anomaly)
        );
        assert_eq!(s.prob_swmask().to_bits(), p.prob_swmask().to_bits());
    }
    println!(
        "campaign_parallel: {} injections per campaign ({} cells)",
        serial.total_samples(),
        serial.cells.len()
    );

    let mut group = c.benchmark_group("campaign_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let spec = spec_at(threads);
        group.bench_function(format!("jobs_{threads}"), |b| {
            b.iter(|| run_campaign(&engine, &trace, &accel, &TopOneMatch, &spec).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_parallel);
criterion_main!(benches);
