//! Criterion bench: per-injection cost of FIdelity software fault injection
//! vs. register-level simulation (the Sec. VI speed claim), plus the
//! telemetry overhead pair (instrumented vs. uninstrumented hot path).
//!
//! Before any timing, every MAC layer of the workload is self-checked: the
//! packed kernels must reproduce `compute_at` bit-for-bit, so a perf
//! regression can never silently buy speed with accuracy. The measured
//! numbers (mean/best ns per injection for the pooled and allocating paths,
//! per-layer kernel throughput, workspace pool hit rate) are merged into
//! `BENCH_injection.json` at the workspace root. `FIDELITY_BENCH_QUICK=1`
//! runs the self-check plus a short measurement and skips the Criterion
//! sweeps — the CI smoke mode.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use fidelity_bench::report;
use fidelity_core::inject::{inject_once, inject_once_pooled};
use fidelity_core::models::SoftwareFaultModel;
use fidelity_core::outcome::TopOneMatch;
use fidelity_core::validate::{random_sites, rtl_layer_for};
use fidelity_dnn::graph::{golden_key, Engine, Trace};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::macspec::{MacSpec, MacTier, Operands};
use fidelity_dnn::precision::Precision;
use fidelity_dnn::tensor::Tensor;
use fidelity_dnn::workspace::Workspace;
use fidelity_obs::json::Json;
use fidelity_rtl::{Disturbance, RtlEngine};
use fidelity_workloads::classification_suite;

/// The largest MAC layer: the representative injection target.
fn target_node(engine: &Engine, trace: &Trace) -> usize {
    (0..engine.network().node_count())
        .filter(|&i| engine.mac_spec(i, trace).is_some())
        .max_by_key(|&i| trace.node_outputs[i].len())
        .expect("has MAC layers")
}

/// The operand pair of a MAC node (MatMul takes both from the trace; Conv
/// and Dense keep their weight in the layer).
fn operands_for<'a>(engine: &'a Engine, trace: &'a Trace, node: usize) -> Operands<'a> {
    let spec = engine.mac_spec(node, trace).expect("MAC node");
    let input = engine.node_input_at(node, 0, trace);
    let weight: &Tensor = if matches!(spec, MacSpec::MatMul(_)) {
        engine.node_input_at(node, 1, trace)
    } else {
        engine
            .network()
            .layer(node)
            .weights()
            .into_iter()
            .next()
            .expect("MAC layer has a weight")
    };
    Operands { input, weight }
}

/// Asserts that the packed kernels reproduce the per-neuron reference path
/// bit-for-bit on every MAC layer. Returns the number of layers checked.
fn kernel_self_check(engine: &Engine, trace: &Trace) -> usize {
    let mut ws = Workspace::new();
    let mut checked = 0;
    for node in 0..engine.network().node_count() {
        let Some(spec) = engine.mac_spec(node, trace) else {
            continue;
        };
        let operands = operands_for(engine, trace, node);
        let mut out = vec![0.0f32; spec.out_len()];
        spec.forward_into_scratch(&operands, &mut out, ws.kernel_scratch());
        for (off, &v) in out.iter().enumerate() {
            let reference = spec.compute_at(&operands, off, None);
            assert_eq!(
                v.to_bits(),
                reference.to_bits(),
                "kernel/compute_at mismatch: node {node} ({}) offset {off}: \
                 {v} != {reference}",
                engine.network().layer(node).name(),
            );
        }
        // The lane-vectorized Bitwise tier must match the same oracle — a
        // SIMD-lane regression is an accuracy bug, not a perf trade.
        let mut tier = vec![0.0f32; spec.out_len()];
        spec.forward_tier_into_scratch(&operands, &mut tier, ws.kernel_scratch(), MacTier::Bitwise);
        for (off, (&a, &b)) in out.iter().zip(&tier).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "bitwise-tier mismatch: node {node} ({}) offset {off}: {a} != {b}",
                engine.network().layer(node).name(),
            );
        }
        checked += 1;
    }
    checked
}

/// Times `forward_into_scratch` on every MAC layer; returns the `kernels`
/// report section.
fn kernel_throughput(engine: &Engine, trace: &Trace, reps: usize) -> Json {
    let mut ws = Workspace::new();
    let mut rows = Vec::new();
    for node in 0..engine.network().node_count() {
        let Some(spec) = engine.mac_spec(node, trace) else {
            continue;
        };
        let operands = operands_for(engine, trace, node);
        let mut out = vec![0.0f32; spec.out_len()];
        spec.forward_into_scratch(&operands, &mut out, ws.kernel_scratch()); // warm
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            spec.forward_into_scratch(&operands, &mut out, ws.kernel_scratch());
            black_box(&mut out);
            samples.push(t.elapsed().as_nanos() as f64);
        }
        let (mean_ns, best_ns) = report::mean_best(&samples);
        rows.push(report::obj([
            (
                "layer",
                Json::Str(engine.network().layer(node).name().to_owned()),
            ),
            ("macs", Json::Num(spec.macs() as f64)),
            ("out_elems", Json::Num(spec.out_len() as f64)),
            ("mean_ns", Json::Num(mean_ns)),
            ("best_ns", Json::Num(best_ns)),
            ("gmac_per_s", Json::Num(spec.macs() as f64 / mean_ns)),
        ]));
    }
    Json::Arr(rows)
}

/// Times the pooled and allocating injection paths on the target node and
/// writes the `per_injection` + `workspace` report sections.
fn measure_injections(
    engine: &Engine,
    trace: &Trace,
    network: &str,
    node: usize,
    reps: usize,
) -> (f64, f64) {
    let shoot_pooled = |rng: &mut SplitMix64, ws: &mut Workspace| {
        inject_once_pooled(
            engine,
            trace,
            node,
            SoftwareFaultModel::OutputValue,
            &TopOneMatch,
            rng,
            None,
            ws,
        )
        .expect("fixed workload")
    };
    // The pooled path runs batched: a golden snapshot of the trace in the
    // workspace routes every injection through the sparse fault-cone delta
    // resume — exactly what a campaign with `batch > 0` does.
    let mut ws = Workspace::new();
    ws.install_golden(golden_key(trace), &trace.node_outputs);
    let mut ws_dense = Workspace::new();
    let mut rng_pooled = SplitMix64::new(2);
    let mut rng_dense = SplitMix64::new(2);
    for _ in 0..5 {
        black_box(shoot_pooled(&mut rng_pooled, &mut ws)); // warm the pool
        black_box(shoot_pooled(&mut rng_dense, &mut ws_dense));
    }
    ws.reset_counters();

    // The three paths are timed in alternating batches so a background-load
    // burst degrades all of them equally instead of skewing whichever block
    // it happened to land on.
    let mut rng_alloc = SplitMix64::new(2);
    let samples = reps.clamp(1, 20);
    let batch = (reps / samples).max(1);
    let mut pooled = Vec::with_capacity(samples);
    let mut dense = Vec::with_capacity(samples);
    let mut alloc = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(shoot_pooled(&mut rng_pooled, &mut ws));
        }
        pooled.push(t.elapsed().as_nanos() as f64 / batch as f64);
        let t = Instant::now();
        for _ in 0..batch {
            black_box(shoot_pooled(&mut rng_dense, &mut ws_dense));
        }
        dense.push(t.elapsed().as_nanos() as f64 / batch as f64);
        let t = Instant::now();
        for _ in 0..batch {
            black_box(
                inject_once(
                    engine,
                    trace,
                    node,
                    SoftwareFaultModel::OutputValue,
                    &TopOneMatch,
                    &mut rng_alloc,
                )
                .expect("fixed workload"),
            );
        }
        alloc.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    let (pooled_mean, pooled_best) = report::mean_best(&pooled);
    let (dense_mean, dense_best) = report::mean_best(&dense);
    let (alloc_mean, alloc_best) = report::mean_best(&alloc);

    report::update(
        "per_injection",
        report::obj([
            ("network", Json::Str(network.to_owned())),
            ("precision", Json::Str("Fp16".to_owned())),
            ("node", Json::Num(node as f64)),
            ("reps", Json::Num(reps as f64)),
            // Keyed by the Criterion benchmark names so the report reads
            // like the bench output: `fidelity_software` is the allocating
            // `inject_once` entry point, `_pooled` the workspace-backed
            // batched delta path (golden snapshot installed), and
            // `_pooled_dense` the workspace-backed full-resume path.
            (
                "fidelity_software",
                report::obj([
                    ("mean_ns", Json::Num(alloc_mean)),
                    ("best_ns", Json::Num(alloc_best)),
                ]),
            ),
            (
                "fidelity_software_pooled",
                report::obj([
                    ("mean_ns", Json::Num(pooled_mean)),
                    ("best_ns", Json::Num(pooled_best)),
                ]),
            ),
            (
                "fidelity_software_pooled_dense",
                report::obj([
                    ("mean_ns", Json::Num(dense_mean)),
                    ("best_ns", Json::Num(dense_best)),
                ]),
            ),
        ]),
    );
    report::update(
        "workspace",
        report::obj([
            ("hits", Json::Num(ws.hits() as f64)),
            ("misses", Json::Num(ws.misses() as f64)),
            ("hit_rate", Json::Num(ws.hit_rate())),
        ]),
    );
    (pooled_mean, alloc_mean)
}

fn bench_injection(c: &mut Criterion) {
    let workload = classification_suite(42).remove(0);
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
    let node = target_node(&engine, &trace);
    let rtl = RtlEngine::new(
        rtl_layer_for(&engine, &trace, node).expect("lifts to RTL"),
        16,
        16,
    );
    let mut rng = SplitMix64::new(1);
    let sites = random_sites(&rtl, 64, &mut rng);

    let mut group = c.benchmark_group("per_injection");
    group.bench_function("fidelity_software", |b| {
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("fixed workload")
        });
    });
    group.bench_function("fidelity_software_pooled", |b| {
        let mut rng = SplitMix64::new(2);
        let mut ws = Workspace::new();
        // Batched delta path: golden snapshot installed, sparse cone resume.
        ws.install_golden(golden_key(&trace), &trace.node_outputs);
        b.iter(|| {
            inject_once_pooled(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
                None,
                &mut ws,
            )
            .expect("fixed workload")
        });
    });
    group.bench_function("fidelity_software_pooled_dense", |b| {
        let mut rng = SplitMix64::new(2);
        let mut ws = Workspace::new();
        b.iter(|| {
            inject_once_pooled(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
                None,
                &mut ws,
            )
            .expect("fixed workload")
        });
    });
    group.bench_function("register_level", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let site = sites[i % sites.len()];
            i += 1;
            rtl.run(Disturbance::Ff(site))
        });
    });
    group.bench_function("mixed_mode", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let site = sites[i % sites.len()];
            i += 1;
            let run = rtl.run(Disturbance::Ff(site));
            engine
                .resume(&trace, node, run.output)
                .expect("fixed workload")
        });
    });
    group.finish();
}

/// Discards every event: isolates the facade/instrumentation cost from
/// sink I/O.
struct NullSink;

impl fidelity_obs::trace::TraceSink for NullSink {
    fn record(&self, _event: &fidelity_obs::trace::TraceEvent<'_>) {}
}

/// Measures the telemetry overhead on the per-injection hot path.
///
/// `uninstrumented` runs with the facade in its default disabled state (no
/// sink, timing off) — the configuration every figure regenerator uses unless
/// `--trace`/`--metrics` is passed, and the one the <2% overhead budget in
/// EXPERIMENTS.md applies to. `instrumented` installs a discarding sink and
/// enables timing, then performs the same per-injection bookkeeping the
/// campaign runner does (stopwatch read, histogram record, counter
/// increment), bounding the fully-enabled cost.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let workload = classification_suite(42).remove(0);
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
    let node = target_node(&engine, &trace);

    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("uninstrumented", |b| {
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("fixed workload")
        });
    });
    group.bench_function("instrumented", |b| {
        fidelity_obs::install_sink(Arc::new(NullSink));
        let injections = fidelity_obs::metrics::counter("bench.injections");
        let latency = fidelity_obs::metrics::histogram("bench.injection_ns");
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            let sw = fidelity_obs::clock::Stopwatch::start_if(fidelity_obs::timing_enabled());
            let out = inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("fixed workload");
            latency.record_opt(sw.elapsed_ns());
            injections.inc();
            out
        });
        fidelity_obs::clear_sink();
        fidelity_obs::set_timing(false);
    });
    group.finish();
}

criterion_group!(benches, bench_injection, bench_telemetry_overhead);

fn main() {
    // `cargo test` may invoke harness-less bench targets with libtest flags;
    // only measure under `cargo bench` (or a bare invocation).
    if std::env::args().any(|a| a == "--test" || a == "--list") {
        return;
    }
    let quick = report::quick();
    let workload = classification_suite(42).remove(0);
    let network = workload.name.clone();
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);

    // The bitwise gate comes first: nothing is timed until the packed
    // kernels are proven identical to the reference accumulation.
    let checked = kernel_self_check(&engine, &trace);
    eprintln!("kernel self-check: {checked} MAC layers bitwise-identical to compute_at");

    let node = target_node(&engine, &trace);
    let (inj_reps, kern_reps) = if quick { (20, 3) } else { (200, 20) };
    let (pooled_mean, alloc_mean) = measure_injections(&engine, &trace, &network, node, inj_reps);
    eprintln!(
        "per_injection ({network}): pooled mean {:.1}us, allocating mean {:.1}us",
        pooled_mean / 1e3,
        alloc_mean / 1e3
    );
    report::update("kernels", kernel_throughput(&engine, &trace, kern_reps));

    if !quick {
        benches();
    }
}
