//! Criterion bench: per-injection cost of FIdelity software fault injection
//! vs. register-level simulation (the Sec. VI speed claim), plus the
//! telemetry overhead pair (instrumented vs. uninstrumented hot path).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use fidelity_core::inject::inject_once;
use fidelity_core::models::SoftwareFaultModel;
use fidelity_core::outcome::TopOneMatch;
use fidelity_core::validate::{random_sites, rtl_layer_for};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::precision::Precision;
use fidelity_rtl::{Disturbance, RtlEngine};
use fidelity_workloads::classification_suite;

fn bench_injection(c: &mut Criterion) {
    let workload = classification_suite(42).remove(0);
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
    let node = (0..engine.network().node_count())
        .filter(|&i| engine.mac_spec(i, &trace).is_some())
        .max_by_key(|&i| trace.node_outputs[i].len())
        .expect("has MAC layers");
    let rtl = RtlEngine::new(
        rtl_layer_for(&engine, &trace, node).expect("lifts to RTL"),
        16,
        16,
    );
    let mut rng = SplitMix64::new(1);
    let sites = random_sites(&rtl, 64, &mut rng);

    let mut group = c.benchmark_group("per_injection");
    group.bench_function("fidelity_software", |b| {
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("fixed workload")
        });
    });
    group.bench_function("register_level", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let site = sites[i % sites.len()];
            i += 1;
            rtl.run(Disturbance::Ff(site))
        });
    });
    group.bench_function("mixed_mode", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let site = sites[i % sites.len()];
            i += 1;
            let run = rtl.run(Disturbance::Ff(site));
            engine
                .resume(&trace, node, run.output)
                .expect("fixed workload")
        });
    });
    group.finish();
}

/// Discards every event: isolates the facade/instrumentation cost from
/// sink I/O.
struct NullSink;

impl fidelity_obs::trace::TraceSink for NullSink {
    fn record(&self, _event: &fidelity_obs::trace::TraceEvent<'_>) {}
}

/// Measures the telemetry overhead on the per-injection hot path.
///
/// `uninstrumented` runs with the facade in its default disabled state (no
/// sink, timing off) — the configuration every figure regenerator uses unless
/// `--trace`/`--metrics` is passed, and the one the <2% overhead budget in
/// EXPERIMENTS.md applies to. `instrumented` installs a discarding sink and
/// enables timing, then performs the same per-injection bookkeeping the
/// campaign runner does (stopwatch read, histogram record, counter
/// increment), bounding the fully-enabled cost.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let workload = classification_suite(42).remove(0);
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
    let node = (0..engine.network().node_count())
        .filter(|&i| engine.mac_spec(i, &trace).is_some())
        .max_by_key(|&i| trace.node_outputs[i].len())
        .expect("has MAC layers");

    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("uninstrumented", |b| {
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("fixed workload")
        });
    });
    group.bench_function("instrumented", |b| {
        fidelity_obs::install_sink(Arc::new(NullSink));
        let injections = fidelity_obs::metrics::counter("bench.injections");
        let latency = fidelity_obs::metrics::histogram("bench.injection_ns");
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            let sw = fidelity_obs::clock::Stopwatch::start_if(fidelity_obs::timing_enabled());
            let out = inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("fixed workload");
            latency.record_opt(sw.elapsed_ns());
            injections.inc();
            out
        });
        fidelity_obs::clear_sink();
        fidelity_obs::set_timing(false);
    });
    group.finish();
}

criterion_group!(benches, bench_injection, bench_telemetry_overhead);
criterion_main!(benches);
