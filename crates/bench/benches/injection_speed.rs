//! Criterion bench: per-injection cost of FIdelity software fault injection
//! vs. register-level simulation (the Sec. VI speed claim).

use criterion::{criterion_group, criterion_main, Criterion};
use fidelity_core::inject::inject_once;
use fidelity_core::models::SoftwareFaultModel;
use fidelity_core::outcome::TopOneMatch;
use fidelity_core::validate::{random_sites, rtl_layer_for};
use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::precision::Precision;
use fidelity_rtl::{Disturbance, RtlEngine};
use fidelity_workloads::classification_suite;

fn bench_injection(c: &mut Criterion) {
    let workload = classification_suite(42).remove(0);
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
    let node = (0..engine.network().node_count())
        .filter(|&i| engine.mac_spec(i, &trace).is_some())
        .max_by_key(|&i| trace.node_outputs[i].len())
        .expect("has MAC layers");
    let rtl = RtlEngine::new(
        rtl_layer_for(&engine, &trace, node).expect("lifts to RTL"),
        16,
        16,
    );
    let mut rng = SplitMix64::new(1);
    let sites = random_sites(&rtl, 64, &mut rng);

    let mut group = c.benchmark_group("per_injection");
    group.bench_function("fidelity_software", |b| {
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            inject_once(
                &engine,
                &trace,
                node,
                SoftwareFaultModel::OutputValue,
                &TopOneMatch,
                &mut rng,
            )
            .expect("fixed workload")
        });
    });
    group.bench_function("register_level", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let site = sites[i % sites.len()];
            i += 1;
            rtl.run(Disturbance::Ff(site))
        });
    });
    group.bench_function("mixed_mode", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let site = sites[i % sites.len()];
            i += 1;
            let run = rtl.run(Disturbance::Ff(site));
            engine
                .resume(&trace, node, run.output)
                .expect("fixed workload")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_injection);
criterion_main!(benches);
