//! Criterion bench: whole-campaign throughput, fixed vs. adaptive sampling.
//!
//! Adaptive sampling (stop a cell once its 95% CI is tight) is the knob that
//! turns "statistically significant number of samples" from a guess into a
//! budget; this bench quantifies what it saves.

use criterion::{criterion_group, criterion_main, Criterion};
use fidelity_core::campaign::{run_campaign, CampaignSpec, MacTier};
use fidelity_core::outcome::TopOneMatch;
use fidelity_dnn::precision::Precision;
use fidelity_workloads::classification_suite;

fn bench_campaign(c: &mut Criterion) {
    let workload = classification_suite(42).remove(2); // mobilenet: smallest
    let (engine, trace) = fidelity_bench::deploy(workload, Precision::Fp16);
    let accel = fidelity_accel::presets::nvdla_like();

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);

    let fixed = CampaignSpec {
        samples_per_cell: 300,
        seed: 1,
        threads: 4,
        record_events: false,
        target_ci_halfwidth: None,
        resilience: Default::default(),
        progress: None,
        batch: 0,
        mac_tier: MacTier::Bitwise,
        adaptive: None,
    };
    group.bench_function("fixed_300_per_cell", |b| {
        b.iter(|| run_campaign(&engine, &trace, &accel, &TopOneMatch, &fixed).expect("runs"));
    });

    let adaptive = CampaignSpec {
        target_ci_halfwidth: Some(0.05),
        ..fixed.clone()
    };
    group.bench_function("adaptive_ci_0.05", |b| {
        b.iter(|| run_campaign(&engine, &trace, &accel, &TopOneMatch, &adaptive).expect("runs"));
    });

    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
