//! `fidelity-statcheck` — static analyses over the FIdelity framework.
//!
//! Three independent layers, all wired into CI:
//!
//! * [`verifier`] — the **model-level static verifier**: exhaustively checks
//!   the finite FF-category × MAC-layer-family × preset domain for
//!   inventory/census completeness, Table-II recipe ↔ Reuse-Factor-Analysis
//!   equivalence (with minimized neuron-set counterexamples), and Eq.-1 /
//!   Eq.-2 arithmetic invariants;
//! * [`lint`] — the **source-level determinism lint**: a token-level scanner
//!   over the campaign crates that flags wall-clock reads, ambient RNG,
//!   panicking shortcuts on campaign paths, and exact float comparison, with
//!   `// statcheck:allow(<rule>)` escape hatches;
//! * [`concheck`] — the **concurrency-discipline pass**: lock-order cycle
//!   detection over a per-function lock-acquisition graph, atomic-site
//!   classification with `Relaxed`-flag enforcement, poison-propagating
//!   `lock().unwrap()` detection, and blocking-under-lock detection, using
//!   the same lexer and suppression protocol as the lint.

#![warn(missing_docs)]

pub mod concheck;
pub mod lexer;
pub mod lint;
pub mod report;
pub mod verifier;
