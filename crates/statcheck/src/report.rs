//! Finding and report types shared by the model-level verifier.

use std::fmt;

use fidelity_accel::dataflow::NeuronOffset;
use fidelity_accel::ff::FfCategory;
use fidelity_dnn::layers::LayerKind;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong.
    Warning,
    /// A broken invariant; the verifier fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which verifier check produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckId {
    /// FF-inventory ↔ census coverage (check a).
    InventoryCensus,
    /// Census fraction domain / disjointness / sum (check a).
    CensusFractions,
    /// Table-II recipe ↔ Algorithm-1 derivation equivalence (check b).
    ModelVsRfa,
    /// Window realizability in each MAC layer family's coordinate
    /// arithmetic (check b, layer axis).
    LayerGeometry,
    /// Eq.-1 activeness domain and class partition (check c).
    Activeness,
    /// Eq.-2 FIT arithmetic unit consistency (check c).
    FitArithmetic,
}

impl CheckId {
    /// Stable identifier used in reports.
    pub fn id(self) -> &'static str {
        match self {
            CheckId::InventoryCensus => "inventory-census",
            CheckId::CensusFractions => "census-fractions",
            CheckId::ModelVsRfa => "model-vs-rfa",
            CheckId::LayerGeometry => "layer-geometry",
            CheckId::Activeness => "activeness",
            CheckId::FitArithmetic => "fit-arithmetic",
        }
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A minimized counterexample for a faulty-neuron-set divergence: the two
/// sets plus their symmetric difference, so the report pinpoints the exact
/// neurons the recipe and the Algorithm-1 derivation disagree on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeuronSetMismatch {
    /// The FF category whose recipe diverged.
    pub category: FfCategory,
    /// The MAC layer family the counterexample is instantiated for.
    pub layer_kind: LayerKind,
    /// Neuron set the Table-II recipe produces.
    pub recipe: Vec<NeuronOffset>,
    /// Neuron set Algorithm 1 derives.
    pub derived: Vec<NeuronOffset>,
    /// Derived neurons the recipe misses (minimization of the divergence).
    pub missing: Vec<NeuronOffset>,
    /// Recipe neurons Algorithm 1 never derives.
    pub extra: Vec<NeuronOffset>,
}

fn fmt_neurons(ns: &[NeuronOffset]) -> String {
    let body: Vec<String> = ns
        .iter()
        .take(8)
        .map(|n| format!("({},{},{},{})", n.batch, n.height, n.width, n.channel))
        .collect();
    let ellipsis = if ns.len() > 8 { ", …" } else { "" };
    format!("{{{}{}}}", body.join(", "), ellipsis)
}

impl fmt::Display for NeuronSetMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "category `{}` on {:?} layer: recipe {} ({} neurons) vs derived {} ({} neurons); missing {}, extra {}",
            self.category,
            self.layer_kind,
            fmt_neurons(&self.recipe),
            self.recipe.len(),
            fmt_neurons(&self.derived),
            self.derived.len(),
            fmt_neurons(&self.missing),
            fmt_neurons(&self.extra),
        )
    }
}

/// One verifier finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Severity (all current checks emit errors).
    pub severity: Severity,
    /// Which check fired.
    pub check: CheckId,
    /// What was being checked, e.g. `preset nvdla-like · datapath weight
    /// (buffer-to-MAC)`.
    pub subject: String,
    /// Human-readable statement of the broken invariant.
    pub message: String,
    /// Minimized neuron-set counterexample, when the finding is a recipe ↔
    /// derivation divergence.
    pub counterexample: Option<NeuronSetMismatch>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.check, self.subject, self.message
        )?;
        if let Some(cx) = &self.counterexample {
            write!(f, "\n    counterexample: {cx}")?;
        }
        Ok(())
    }
}

/// The outcome of a full verifier run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of elementary checks evaluated (for reporting coverage).
    pub checks_run: usize,
    /// Findings, in discovery order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the run found no errors.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.checks_run += other.checks_run;
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        write!(
            f,
            "{} checks, {} violations ({} errors)",
            self.checks_run,
            self.violations.len(),
            self.error_count()
        )
    }
}
