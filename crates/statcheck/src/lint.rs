//! The source-level determinism lint.
//!
//! FIdelity's statistical claims (Sec. V) assume campaigns are exactly
//! reproducible from a seed; wall-clock reads, ambient RNG, and panicking
//! shortcuts silently break that. These properties are all local token
//! patterns, so a scanner over the campaign crates catches them without a
//! full parse.
//!
//! Suppression: a `// statcheck:allow(rule-a, rule-b)` comment on the same
//! line as the finding, or on the line directly above it, silences those
//! rules for that line. Every allow should carry a justification in the
//! surrounding comment.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// A determinism lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `Instant::now()` / `SystemTime` — wall-clock reads make campaign
    /// traces irreproducible.
    WallClock,
    /// Ambient randomness (`thread_rng`, `OsRng`, `from_entropy`,
    /// `rand::random`, `getrandom`) — all campaign randomness must flow from
    /// an explicit seeded generator.
    AmbientRng,
    /// `.unwrap()` / `.expect()` / `panic!` / `todo!` / `unimplemented!` on
    /// campaign paths — a panic mid-campaign loses completed injections;
    /// campaign code must return errors.
    PanicPath,
    /// `==` / `!=` against a float literal — exact float comparison makes
    /// masking verdicts depend on rounding mode and optimization level.
    FloatEq,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 4] = [
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::PanicPath,
        Rule::FloatEq,
    ];

    /// The stable name used in reports and `statcheck:allow(...)` lists.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::PanicPath => "panic-path",
            Rule::FloatEq => "float-eq",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What was matched, e.g. `Instant::now`.
    pub matched: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.matched
        )
    }
}

/// Lint configuration.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Path substrings on which [`Rule::PanicPath`] applies (campaign
    /// execution paths; library construction code may still panic on
    /// programmer error).
    pub campaign_paths: Vec<String>,
    /// Whether to skip `#[cfg(test)]` modules (tests may use wall clocks and
    /// unwrap freely).
    pub skip_test_modules: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            campaign_paths: [
                "core/src/campaign.rs",
                "core/src/inject.rs",
                "core/src/resilience.rs",
                "core/src/analysis.rs",
                "core/src/models.rs",
                "par/src/pool.rs",
                "par/src/lib.rs",
                "serve/src/supervisor.rs",
                "serve/src/journal.rs",
                "rtl/src/engine.rs",
                "rtl/src/systolic.rs",
                "dnn/src/graph.rs",
            ]
            .map(str::to_owned)
            .to_vec(),
            skip_test_modules: true,
        }
    }
}

impl LintConfig {
    fn panic_rule_applies(&self, path: &Path) -> bool {
        let p = path.to_string_lossy().replace('\\', "/");
        self.campaign_paths.iter().any(|c| p.contains(c.as_str()))
    }
}

/// Lints one source file.
pub fn lint_source(path: &Path, src: &str, config: &LintConfig) -> Vec<Finding> {
    let tokens = lex(src);
    let allows = collect_allows(&tokens);
    let test_lines = if config.skip_test_modules {
        test_module_lines(&tokens)
    } else {
        Vec::new()
    };
    let panic_applies = config.panic_rule_applies(path);

    let mut findings = Vec::new();
    // Significant tokens only; comments participate via `allows`.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();

    let mut emit = |rule: Rule, line: usize, matched: &str| {
        if in_ranges(&test_lines, line) {
            return;
        }
        if allows
            .iter()
            .any(|(l, r)| *r == rule && (*l == line || *l + 1 == line))
        {
            return;
        }
        findings.push(Finding {
            path: path.to_owned(),
            line,
            rule,
            matched: matched.to_owned(),
        });
    };

    for (i, t) in sig.iter().enumerate() {
        let next = |k: usize| sig.get(i + k).copied();
        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                // -------------------------------------------- wall-clock --
                "Instant" | "SystemTime"
                    if next(1).is_some_and(|n| n.is_punct("::"))
                        && next(2).is_some_and(|n| n.is_ident("now")) =>
                {
                    emit(Rule::WallClock, t.line, &format!("{}::now", t.text));
                }
                "SystemTime" => emit(Rule::WallClock, t.line, "SystemTime"),
                // ------------------------------------------- ambient-rng --
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => {
                    emit(Rule::AmbientRng, t.line, &t.text);
                }
                "rand"
                    if next(1).is_some_and(|n| n.is_punct("::"))
                        && next(2).is_some_and(|n| n.is_ident("random")) =>
                {
                    emit(Rule::AmbientRng, t.line, "rand::random");
                }
                // -------------------------------------------- panic-path --
                "panic" | "todo" | "unimplemented"
                    if panic_applies && next(1).is_some_and(|n| n.is_punct("!")) =>
                {
                    emit(Rule::PanicPath, t.line, &format!("{}!", t.text));
                }
                "unwrap" | "expect"
                    if panic_applies
                        && i > 0
                        && sig[i - 1].is_punct(".")
                        && next(1).is_some_and(|n| n.is_punct("(")) =>
                {
                    emit(Rule::PanicPath, t.line, &format!(".{}()", t.text));
                }
                _ => {}
            },
            // ------------------------------------------------- float-eq --
            TokenKind::Punct if t.text == "==" || t.text == "!=" => {
                let float_neighbor = (i > 0 && sig[i - 1].kind == TokenKind::Float)
                    || next(1).is_some_and(|n| n.kind == TokenKind::Float);
                if float_neighbor {
                    emit(Rule::FloatEq, t.line, &format!("float {}", t.text));
                }
            }
            _ => {}
        }
    }
    findings
}

/// Extracts `(line, rule)` pairs from `statcheck:allow(...)` comments.
fn collect_allows(tokens: &[Token]) -> Vec<(usize, Rule)> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let Some(idx) = t.text.find("statcheck:allow(") else {
            continue;
        };
        let rest = &t.text[idx + "statcheck:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        for name in rest[..close].split(',') {
            let name = name.trim();
            if let Some(rule) = Rule::ALL.iter().find(|r| r.name() == name) {
                out.push((t.line, *rule));
            }
        }
    }
    out
}

/// Approximates `#[cfg(test)] mod … { … }` extents by brace matching from
/// the `mod` that follows the attribute. Shared with the concurrency pass.
pub(crate) fn test_module_lines(tokens: &[Token]) -> Vec<(usize, usize)> {
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = sig[i].is_punct("#")
            && sig.get(i + 1).is_some_and(|t| t.is_punct("["))
            && sig.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && sig.get(i + 3).is_some_and(|t| t.is_punct("("))
            && sig.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && sig.get(i + 5).is_some_and(|t| t.is_punct(")"))
            && sig.get(i + 6).is_some_and(|t| t.is_punct("]"));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the opening brace of the annotated item and match it.
        let mut j = i + 7;
        while j < sig.len() && !sig[j].is_punct("{") {
            j += 1;
        }
        if j == sig.len() {
            break;
        }
        let start_line = sig[i].line;
        let mut depth = 0isize;
        let mut end_line = sig[j].line;
        while j < sig.len() {
            if sig[j].is_punct("{") {
                depth += 1;
            } else if sig[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    end_line = sig[j].line;
                    break;
                }
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

pub(crate) fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|(a, b)| (*a..=*b).contains(&line))
}

/// Recursively lints every `.rs` file under `roots`, returning findings in
/// path order. Missing roots are skipped (the lint may run from an
/// unexpected working directory; the CLI validates roots separately).
pub fn lint_paths(roots: &[PathBuf], config: &LintConfig) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&file, &src, config));
    }
    Ok(findings)
}

pub(crate) fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_owned());
        }
        return Ok(());
    }
    if !root.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(root)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let config = LintConfig {
            campaign_paths: vec!["campaign".into()],
            skip_test_modules: true,
        };
        lint_source(Path::new("campaign/x.rs"), src, &config)
    }

    #[test]
    fn wall_clock_fires_and_allows_suppress() {
        let f = run("let t = Instant::now();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);

        let f = run("let t = Instant::now(); // statcheck:allow(wall-clock)");
        assert!(f.is_empty());

        let f = run("// statcheck:allow(wall-clock)\nlet t = Instant::now();");
        assert!(f.is_empty());
    }

    #[test]
    fn allow_only_suppresses_named_rules() {
        let f = run("let t = Instant::now(); // statcheck:allow(float-eq)");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn panic_rule_is_campaign_path_scoped() {
        let config = LintConfig::default();
        let src = "fn f() { x.unwrap(); }";
        assert!(lint_source(Path::new("crates/core/src/ff.rs"), src, &config).is_empty());
        assert_eq!(
            lint_source(Path::new("crates/core/src/campaign.rs"), src, &config).len(),
            1
        );
    }

    #[test]
    fn unreachable_is_not_flagged() {
        assert!(run("match x { _ => unreachable!() }").is_empty());
    }

    #[test]
    fn float_eq_needs_a_float_neighbor() {
        assert_eq!(run("if x == 1.0 {}").len(), 1);
        assert_eq!(run("if 0.5 != y {}").len(), 1);
        assert!(run("if x == 1 {}").is_empty());
        assert!(run("if a == b {}").is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); let t = Instant::now(); }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        assert!(run("// Instant::now() in prose\nlet s = \"thread_rng\";").is_empty());
    }
}
