//! Layer 1 — the model-level static verifier.
//!
//! The FF-category × MAC-layer-family × preset domain is finite, so the
//! equivalence the paper establishes between Table-II software fault models
//! and hardware faults can be checked exhaustively without running a single
//! injection:
//!
//! * **check a (inventory/census)** — every flip-flop of the register-level
//!   engines maps to exactly one Table-II category, every realized category
//!   is censused, and the `%FF` fractions are complete, disjoint, and sum
//!   to 1;
//! * **check b (model ↔ RFA)** — each Table-II recipe's faulty-neuron set
//!   (count, relative locations, production order, random-suffix
//!   truncation) equals the Reuse-Factor-Analysis (Algorithm 1) derivation
//!   for the same category, with a minimized counterexample on divergence,
//!   instantiated for every MAC layer family;
//! * **check c (Eq. 1 / Eq. 2)** — activeness fractions stay in `[0, 1]`
//!   with disjoint Class-1/2/3 partitions, and the FIT arithmetic is
//!   unit-consistent (decomposition, linearity, bounds, protection).

use std::collections::BTreeSet;

use fidelity_accel::arch::{AcceleratorConfig, DataflowKind};
use fidelity_accel::dataflow::{NeuronOffset, ReuseAxis};
use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};
use fidelity_accel::perf::{LayerTiming, LayerWork};
use fidelity_accel::presets;
use fidelity_core::activeness::{class_partition, prob_inactive};
use fidelity_core::fit::{accelerator_fit_rate, CategoryTerm, LayerTerm};
use fidelity_core::models::{model_for, SoftwareFaultModel};
use fidelity_core::rfa::{reuse_factor_analysis, RfaResult};
use fidelity_dnn::layers::LayerKind;
use fidelity_dnn::macspec::{ConvSpec, DenseSpec, MacSpec, MatMulSpec, OperandKind};
use fidelity_dnn::precision::Precision;
use fidelity_rtl::ffid::FfId;
use fidelity_rtl::systolic::SysFfId;

use crate::report::{CheckId, NeuronSetMismatch, Report, Severity, Violation};

/// A Table-II recipe source: maps a category to its software fault model
/// under a configuration. Injectable so tests can verify that a corrupted
/// recipe is caught.
pub type ModelProvider<'a> =
    dyn Fn(FfCategory, &AcceleratorConfig) -> Option<SoftwareFaultModel> + 'a;

/// The MAC layer families of Table II.
pub const MAC_LAYER_KINDS: [LayerKind; 3] = [LayerKind::Conv, LayerKind::Dense, LayerKind::MatMul];

/// Verifies every shipped preset against the framework's own recipes.
pub fn verify_all() -> Report {
    let mut report = Report::default();
    for cfg in presets::all() {
        report.merge(verify_preset(&cfg));
    }
    report
}

/// Verifies one preset against the framework's own recipes
/// ([`fidelity_core::models::model_for`]).
pub fn verify_preset(cfg: &AcceleratorConfig) -> Report {
    verify_preset_with(cfg, &|cat, cfg| model_for(cat, cfg))
}

/// Verifies one preset against an arbitrary recipe provider.
pub fn verify_preset_with(cfg: &AcceleratorConfig, models: &ModelProvider<'_>) -> Report {
    let mut r = Report::default();
    check_census_fractions(cfg, &mut r);
    check_inventory_census(cfg, &mut r);
    check_models_vs_rfa(cfg, models, &mut r);
    check_layer_geometry(cfg, models, &mut r);
    check_activeness(cfg, &mut r);
    check_fit_arithmetic(cfg, &mut r);
    r
}

fn violation(
    r: &mut Report,
    check: CheckId,
    subject: impl Into<String>,
    message: impl Into<String>,
) {
    r.violations.push(Violation {
        severity: Severity::Error,
        check,
        subject: subject.into(),
        message: message.into(),
        counterexample: None,
    });
}

// ---------------------------------------------------------------- check a --

fn check_census_fractions(cfg: &AcceleratorConfig, r: &mut Report) {
    let subject = format!("preset {}", cfg.name);
    let mut sum = 0.0;
    let mut rows: Vec<FfCategory> = Vec::new();
    for (cat, frac) in cfg.census.iter() {
        r.checks_run += 1;
        if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
            violation(
                r,
                CheckId::CensusFractions,
                format!("{subject} · {cat}"),
                format!("census fraction {frac} outside [0, 1]"),
            );
        }
        sum += frac;
        // Disjointness at Table-II granularity: two census entries that
        // collapse to the same Table-II row would double-count that row's
        // FFs in Eq. 2.
        let row = cat.census_category();
        if rows.contains(&row) {
            violation(
                r,
                CheckId::CensusFractions,
                format!("{subject} · {cat}"),
                format!("census rows are not disjoint: `{row}` is counted twice"),
            );
        }
        rows.push(row);
    }
    r.checks_run += 1;
    if (sum - 1.0).abs() > 1e-6 {
        violation(
            r,
            CheckId::CensusFractions,
            subject,
            format!("census fractions sum to {sum}, expected 1.0"),
        );
    }
}

/// Categories realized by the register-level inventory of the preset's
/// dataflow family, at census (Table-II row) granularity.
fn inventory_categories(cfg: &AcceleratorConfig) -> Vec<FfCategory> {
    let mut out: Vec<FfCategory> = Vec::new();
    let mut push = |cat: FfCategory| {
        let row = cat.census_category();
        if !out.contains(&row) {
            out.push(row);
        }
    };
    match cfg.dataflow {
        DataflowKind::Nvdla(d) => {
            for ff in FfId::inventory(d.lanes, d.weight_hold) {
                push(ff.category());
            }
        }
        DataflowKind::Eyeriss(d) => {
            for ff in SysFfId::inventory(d.k, d.channel_reuse) {
                push(ff.category());
            }
        }
    }
    out
}

fn check_inventory_census(cfg: &AcceleratorConfig, r: &mut Report) {
    let subject = format!("preset {}", cfg.name);
    let realized = inventory_categories(cfg);
    // Completeness: every category the engine instantiates has census mass.
    for row in &realized {
        r.checks_run += 1;
        if cfg.census.fraction(*row) <= 0.0 {
            violation(
                r,
                CheckId::InventoryCensus,
                format!("{subject} · {row}"),
                "register-level inventory realizes this category but the census gives it zero mass",
            );
        }
    }
    // Soundness: every censused row is realized by at least one FF.
    for (cat, frac) in cfg.census.iter() {
        r.checks_run += 1;
        if frac > 0.0 && !realized.contains(&cat.census_category()) {
            violation(
                r,
                CheckId::InventoryCensus,
                format!("{subject} · {cat}"),
                "census gives mass to a category no register-level FF realizes",
            );
        }
    }
}

// ---------------------------------------------------------------- check b --

/// The expected relative faulty-neuron lattice of an operand window:
/// `positions` consecutive reuse steps along the dataflow's reuse axis ×
/// `channels` consecutive channels, anchored at the reference neuron.
fn window_lattice(positions: usize, channels: usize, axis: ReuseAxis) -> Vec<NeuronOffset> {
    let mut out = Vec::with_capacity(positions * channels);
    for p in 0..positions {
        for c in 0..channels {
            out.push(match axis {
                ReuseAxis::Width => NeuronOffset::new(0, 0, p as i32, c as i32),
                ReuseAxis::Height => NeuronOffset::new(0, p as i32, 0, c as i32),
            });
        }
    }
    out
}

fn axis_coord(n: NeuronOffset, axis: ReuseAxis) -> i32 {
    match axis {
        ReuseAxis::Width => n.width,
        ReuseAxis::Height => n.height,
    }
}

fn neuron_set_mismatch(
    cat: FfCategory,
    kind: LayerKind,
    recipe: &[NeuronOffset],
    derived: &[NeuronOffset],
) -> Option<NeuronSetMismatch> {
    let recipe_set: BTreeSet<NeuronOffset> = recipe.iter().copied().collect();
    let derived_set: BTreeSet<NeuronOffset> = derived.iter().copied().collect();
    if recipe_set == derived_set {
        return None;
    }
    Some(NeuronSetMismatch {
        category: cat,
        layer_kind: kind,
        recipe: recipe.to_vec(),
        derived: derived.to_vec(),
        missing: derived_set.difference(&recipe_set).copied().collect(),
        extra: recipe_set.difference(&derived_set).copied().collect(),
    })
}

/// Canonical MAC geometry per layer family, sized so every shipped window
/// (≤ 32 positions × ≤ 32 channels) fits without clipping.
fn canonical_spec(kind: LayerKind) -> MacSpec {
    match kind {
        LayerKind::Conv => MacSpec::Conv(ConvSpec {
            batch: 1,
            in_c: 3,
            in_h: 34,
            in_w: 34,
            out_c: 48,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        }),
        LayerKind::Dense => MacSpec::Dense(DenseSpec {
            batch: 40,
            in_features: 24,
            out_features: 48,
        }),
        _ => MacSpec::MatMul(MatMulSpec {
            batch: 1,
            m: 40,
            k: 24,
            n: 48,
            transpose_b: false,
        }),
    }
}

fn expected_operand_kind(var: VarType) -> OperandKind {
    match var {
        VarType::Input => OperandKind::Input,
        _ => OperandKind::Weight,
    }
}

fn check_models_vs_rfa(cfg: &AcceleratorConfig, models: &ModelProvider<'_>, r: &mut Report) {
    for cat in FfCategory::enumerate() {
        let subject = format!("preset {} · {cat}", cfg.name);
        let model = models(cat, cfg);
        let censused = cfg.census.fraction(cat.census_category()) > 0.0;

        r.checks_run += 1;
        if censused && model.is_none() {
            violation(
                r,
                CheckId::ModelVsRfa,
                subject.clone(),
                "censused category has no software fault model recipe",
            );
            continue;
        }

        let Some(inputs) = cfg.dataflow.rfa_inputs_for(cat) else {
            // No fixed dataflow window: before-buffer and control categories
            // are covered by the recipe-shape checks below.
            check_unwindowed_shape(cfg, cat, model, r);
            continue;
        };
        let derived = match reuse_factor_analysis(&inputs) {
            Ok(d) => d,
            Err(e) => {
                violation(
                    r,
                    CheckId::ModelVsRfa,
                    subject,
                    format!("Algorithm-1 inputs are malformed: {e}"),
                );
                continue;
            }
        };
        match model {
            Some(SoftwareFaultModel::Operand {
                kind,
                window,
                random_suffix,
            }) => {
                check_operand_recipe(cfg, cat, kind, window, random_suffix, &derived, r);
            }
            Some(SoftwareFaultModel::OutputValue) => {
                check_output_recipe(cfg, cat, &derived, r);
            }
            Some(other) => {
                r.checks_run += 1;
                violation(
                    r,
                    CheckId::ModelVsRfa,
                    subject,
                    format!(
                        "category has a dataflow reuse window (RF = {}) but recipe {other:?} \
                         does not model one",
                        derived.rf()
                    ),
                );
            }
            None if censused => unreachable!("handled above"),
            None => {}
        }
    }
}

/// Shape checks for categories whose faulty-neuron set is not a fixed
/// window: the recipe family must still match the category semantics.
fn check_unwindowed_shape(
    cfg: &AcceleratorConfig,
    cat: FfCategory,
    model: Option<SoftwareFaultModel>,
    r: &mut Report,
) {
    let subject = format!("preset {} · {cat}", cfg.name);
    let Some(model) = model else { return };
    r.checks_run += 1;
    let ok = match cat {
        FfCategory::Datapath {
            stage: PipelineStage::BeforeBuffer,
            var,
        } => matches!(
            model,
            SoftwareFaultModel::BeforeBuffer { kind } if kind == expected_operand_kind(var)
        ),
        FfCategory::LocalControl => matches!(model, SoftwareFaultModel::LocalControl),
        FfCategory::GlobalControl => matches!(model, SoftwareFaultModel::GlobalControl),
        _ => true,
    };
    if !ok {
        violation(
            r,
            CheckId::ModelVsRfa,
            subject,
            format!("recipe {model:?} does not match the category's fault semantics"),
        );
    }
}

fn check_operand_recipe(
    cfg: &AcceleratorConfig,
    cat: FfCategory,
    kind: OperandKind,
    window: fidelity_core::models::OperandWindow,
    random_suffix: bool,
    derived: &RfaResult,
    r: &mut Report,
) {
    let axis = cfg.dataflow.reuse_axis();
    let subject = format!("preset {} · {cat}", cfg.name);

    // Operand identity: the recipe must corrupt the variable the FF holds.
    if let FfCategory::Datapath { var, .. } = cat {
        r.checks_run += 1;
        if kind != expected_operand_kind(var) {
            violation(
                r,
                CheckId::ModelVsRfa,
                subject.clone(),
                format!("recipe corrupts the {kind:?} operand but the FF holds a {var} value"),
            );
        }
    }

    let recipe_set = window_lattice(window.positions, window.channels, axis);
    let derived_set: Vec<NeuronOffset> = derived.faulty_neurons.iter().map(|t| t.neuron).collect();

    // Count: |window| must equal the reuse factor.
    r.checks_run += 1;
    if window.positions * window.channels != derived.rf() {
        emit_set_mismatch(
            r,
            &subject,
            cat,
            &recipe_set,
            &derived_set,
            format!(
                "recipe window {}×{} covers {} neurons but Algorithm 1 derives RF = {}",
                window.positions,
                window.channels,
                window.positions * window.channels,
                derived.rf()
            ),
        );
        return;
    }

    // Relative locations: the window lattice must equal the derived set.
    r.checks_run += 1;
    if neuron_set_mismatch(cat, LayerKind::Conv, &recipe_set, &derived_set).is_some() {
        emit_set_mismatch(
            r,
            &subject,
            cat,
            &recipe_set,
            &derived_set,
            "recipe faulty-neuron locations diverge from the Algorithm-1 derivation".to_owned(),
        );
        return;
    }

    // Production order: Algorithm 1 inserts neurons in computation order;
    // positions along the reuse axis must be produced in ascending loop
    // order so the random-suffix truncation keeps exactly the late loops.
    r.checks_run += 1;
    let mut last_loop = 0usize;
    let mut order_ok = true;
    for t in &derived.faulty_neurons {
        if t.loop_index < last_loop {
            order_ok = false;
            break;
        }
        last_loop = t.loop_index;
    }
    if !order_ok {
        violation(
            r,
            CheckId::ModelVsRfa,
            subject.clone(),
            "Algorithm-1 production order is not monotone in the loop timestamp",
        );
    }

    // Random-suffix ↔ FF_value_cycles consistency (the paper's random fault
    // cycle `p`): a truncating recipe must correspond to a multi-cycle FF
    // hold with one position per value cycle, and vice versa.
    r.checks_run += 1;
    if random_suffix {
        if derived.ff_value_cycles != window.positions {
            violation(
                r,
                CheckId::ModelVsRfa,
                subject.clone(),
                format!(
                    "recipe truncates a {}-position suffix but the FF holds its value for {} \
                     cycles — the truncation cannot model the random fault cycle",
                    window.positions, derived.ff_value_cycles
                ),
            );
        } else {
            let aligned = derived
                .faulty_neurons
                .iter()
                .all(|t| t.loop_index as i32 == axis_coord(t.neuron, axis));
            if !aligned {
                violation(
                    r,
                    CheckId::ModelVsRfa,
                    subject.clone(),
                    "suffix truncation keeps positions ≥ p but the derivation does not produce \
                     position i at value cycle i",
                );
            }
        }
    } else if derived.ff_value_cycles != 1 {
        violation(
            r,
            CheckId::ModelVsRfa,
            subject,
            format!(
                "FF holds its value for {} cycles but the recipe never truncates — a late \
                 fault cycle would corrupt fewer neurons than the recipe claims",
                derived.ff_value_cycles
            ),
        );
    }
}

fn check_output_recipe(
    cfg: &AcceleratorConfig,
    cat: FfCategory,
    derived: &RfaResult,
    r: &mut Report,
) {
    let subject = format!("preset {} · {cat}", cfg.name);
    r.checks_run += 1;
    let derived_set: Vec<NeuronOffset> = derived.faulty_neurons.iter().map(|t| t.neuron).collect();
    if derived.rf() != 1 || derived_set != [NeuronOffset::new(0, 0, 0, 0)] {
        emit_set_mismatch(
            r,
            &subject,
            cat,
            &[NeuronOffset::new(0, 0, 0, 0)],
            &derived_set,
            format!(
                "single-neuron recipe but Algorithm 1 derives RF = {}",
                derived.rf()
            ),
        );
    }
}

/// Emits one counterexample per MAC layer family, naming the family the
/// mismatch is instantiated for (Table-II recipes apply to all three).
fn emit_set_mismatch(
    r: &mut Report,
    subject: &str,
    cat: FfCategory,
    recipe: &[NeuronOffset],
    derived: &[NeuronOffset],
    message: String,
) {
    for kind in MAC_LAYER_KINDS {
        let cx = NeuronSetMismatch {
            category: cat,
            layer_kind: kind,
            recipe: recipe.to_vec(),
            derived: derived.to_vec(),
            missing: {
                let rs: BTreeSet<_> = recipe.iter().copied().collect();
                derived
                    .iter()
                    .copied()
                    .filter(|n| !rs.contains(n))
                    .collect()
            },
            extra: {
                let ds: BTreeSet<_> = derived.iter().copied().collect();
                recipe.iter().copied().filter(|n| !ds.contains(n)).collect()
            },
        };
        r.violations.push(Violation {
            severity: Severity::Error,
            check: CheckId::ModelVsRfa,
            subject: format!("{subject} · {kind:?}"),
            message: message.clone(),
            counterexample: Some(cx),
        });
    }
}

// ------------------------------------------------- check b (layer axis) ----

/// Verifies that every windowed recipe's lattice maps to distinct in-bounds
/// output neurons under each MAC layer family's position/channel coordinate
/// arithmetic ([`MacSpec::offset_of`] / [`MacSpec::coords_of`]).
fn check_layer_geometry(cfg: &AcceleratorConfig, models: &ModelProvider<'_>, r: &mut Report) {
    for cat in FfCategory::enumerate() {
        let Some(SoftwareFaultModel::Operand { window, .. }) = models(cat, cfg) else {
            continue;
        };
        for kind in MAC_LAYER_KINDS {
            r.checks_run += 1;
            let spec = canonical_spec(kind);
            let subject = format!("preset {} · {cat} · {kind:?}", cfg.name);
            if window.positions > spec.position_count() || window.channels > spec.channel_count() {
                violation(
                    r,
                    CheckId::LayerGeometry,
                    subject,
                    format!(
                        "window {}×{} does not fit the canonical {:?} geometry {}×{}",
                        window.positions,
                        window.channels,
                        kind,
                        spec.position_count(),
                        spec.channel_count()
                    ),
                );
                continue;
            }
            let mut seen = BTreeSet::new();
            let mut ok = true;
            for p in 0..window.positions {
                for c in 0..window.channels {
                    let off = spec.offset_of(p, c);
                    if off >= spec.out_len() || !seen.insert(off) || spec.coords_of(off) != (p, c) {
                        violation(
                            r,
                            CheckId::LayerGeometry,
                            subject.clone(),
                            format!(
                                "window neuron (position {p}, channel {c}) maps to offset {off} \
                                 which is out of bounds, duplicated, or does not round-trip"
                            ),
                        );
                        ok = false;
                    }
                }
            }
            if ok && seen.len() != window.positions * window.channels {
                violation(
                    r,
                    CheckId::LayerGeometry,
                    subject,
                    "window lattice collapsed to fewer distinct neurons than |window|",
                );
            }
        }
    }
}

// ---------------------------------------------------------------- check c --

fn canonical_work(kind: LayerKind) -> LayerWork {
    LayerWork {
        name: format!("{kind:?}"),
        kind,
        macs: 50_000,
        input_elems: 2_000,
        weight_elems: 1_000,
        output_elems: 4_000,
    }
}

fn check_activeness(cfg: &AcceleratorConfig, r: &mut Report) {
    for kind in MAC_LAYER_KINDS {
        let timing = LayerTiming::analyze(cfg, &canonical_work(kind));
        for (cat, _) in cfg.census.iter() {
            for precision in Precision::ALL {
                let subject = format!("preset {} · {cat} · {kind:?} · {precision:?}", cfg.name);
                r.checks_run += 1;
                let (c1, c2) = class_partition(cfg, cat, precision);
                if !(0.0..=1.0).contains(&c1) || !(0.0..=1.0).contains(&c2) {
                    violation(
                        r,
                        CheckId::Activeness,
                        subject.clone(),
                        format!("class fractions ({c1}, {c2}) outside [0, 1]"),
                    );
                }
                if c1 + c2 > 1.0 + 1e-12 {
                    violation(
                        r,
                        CheckId::Activeness,
                        subject.clone(),
                        format!(
                            "Class-1/2 populations overlap: {c1} + {c2} > 1 leaves no room \
                             for the Class-3 population"
                        ),
                    );
                }
                let c3 = timing.class3_inactive(cat);
                if !(0.0..=1.0).contains(&c3) {
                    violation(
                        r,
                        CheckId::Activeness,
                        subject.clone(),
                        format!("Class-3 inactive fraction {c3} outside [0, 1]"),
                    );
                }
                let p = prob_inactive(cfg, cat, &timing, precision);
                if !(0.0..=1.0).contains(&p) {
                    violation(
                        r,
                        CheckId::Activeness,
                        subject,
                        format!("Prob_inactive = {p} outside [0, 1]"),
                    );
                }
            }
        }
    }
}

/// Builds one Eq.-2 layer term over the preset's census with probe masking
/// probabilities.
fn probe_layer(cfg: &AcceleratorConfig, name: &str, cycles: u64, mask: f64) -> LayerTerm {
    LayerTerm {
        name: name.into(),
        exec_cycles: cycles,
        categories: cfg
            .census
            .iter()
            .map(|(category, _)| CategoryTerm {
                category,
                prob_inactive: 0.25,
                prob_swmask: if category == FfCategory::GlobalControl {
                    0.0
                } else {
                    mask
                },
            })
            .collect(),
    }
}

fn check_fit_arithmetic(cfg: &AcceleratorConfig, r: &mut Report) {
    let subject = format!("preset {}", cfg.name);
    let raw = fidelity_core::fit::PAPER_RAW_FIT_PER_MB;
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);

    // Unit consistency of the MB conversion feeding `FIT/MB × MB`.
    r.checks_run += 1;
    let mb = cfg.total_ff_bits as f64 / 8.0 / (1024.0 * 1024.0);
    if rel(cfg.ff_megabytes(), mb) > 1e-12 {
        violation(
            r,
            CheckId::FitArithmetic,
            subject.clone(),
            format!(
                "ff_megabytes() = {} but total_ff_bits implies {mb} MB",
                cfg.ff_megabytes()
            ),
        );
    }

    let layers = [
        probe_layer(cfg, "conv", 900, 0.5),
        probe_layer(cfg, "fc", 100, 0.125),
    ];
    let b = accelerator_fit_rate(cfg, raw, &layers, &[]);

    // Decomposition: the breakdown must partition the total.
    r.checks_run += 1;
    if rel(b.total, b.datapath + b.local + b.global) > 1e-9 {
        violation(
            r,
            CheckId::FitArithmetic,
            subject.clone(),
            format!(
                "total {} ≠ datapath {} + local {} + global {}",
                b.total, b.datapath, b.local, b.global
            ),
        );
    }
    r.checks_run += 1;
    let per_cat: f64 = b.per_category.iter().map(|(_, v)| v).sum();
    if rel(b.total, per_cat) > 1e-9 {
        violation(
            r,
            CheckId::FitArithmetic,
            subject.clone(),
            format!("total {} ≠ Σ per-category {per_cat}", b.total),
        );
    }

    // Linearity in the raw FIT rate (unit consistency of Eq. 2's prefactor).
    r.checks_run += 1;
    let b2 = accelerator_fit_rate(cfg, 2.0 * raw, &layers, &[]);
    if rel(b2.total, 2.0 * b.total) > 1e-9 {
        violation(
            r,
            CheckId::FitArithmetic,
            subject.clone(),
            format!(
                "doubling the raw FIT rate scales the total by {} instead of 2",
                b2.total / b.total
            ),
        );
    }

    // Bound: masking can only remove FIT, never add it.
    r.checks_run += 1;
    let ceiling = raw * cfg.ff_megabytes();
    if b.total > ceiling * (1.0 + 1e-9) || b.total < 0.0 {
        violation(
            r,
            CheckId::FitArithmetic,
            subject.clone(),
            format!("total {} outside [0, raw ceiling {ceiling}]", b.total),
        );
    }

    // Protection: zeroing a category removes exactly its contribution.
    r.checks_run += 1;
    let prot = accelerator_fit_rate(cfg, raw, &layers, &[FfCategory::GlobalControl]);
    if prot.global != 0.0 || rel(prot.total, b.total - b.global) > 1e-9 {
        violation(
            r,
            CheckId::FitArithmetic,
            subject,
            format!(
                "protecting global control left {} global FIT (total {} vs expected {})",
                prot.global,
                prot.total,
                b.total - b.global
            ),
        );
    }
}
