//! A minimal token-level Rust scanner for the determinism lint.
//!
//! The build environment is offline, so the lint cannot lean on `syn` or a
//! rustc driver; a hand-rolled lexer is enough because every lint rule is a
//! local token-pattern property. The lexer understands exactly the parts of
//! the grammar that would otherwise cause false positives: line/block/doc
//! comments (nesting included), string/char/byte literals with escapes, raw
//! strings with arbitrary `#` fences, lifetimes vs. char literals, and
//! numeric literals with float detection.

/// What a token is, at the granularity the lint rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// Any numeric literal that is *not* a float.
    Int,
    /// A float literal (`1.0`, `1e3`, `2f64`, `3.`, …).
    Float,
    /// A string / char / byte-string literal (contents are opaque).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Punctuation; multi-char operators the rules care about are combined
    /// (`==`, `!=`, `::`).
    Punct,
    /// A line or block comment (doc comments included), text preserved.
    Comment,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Verbatim source text (for `Literal`, delimiters included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is the exact identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the exact punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<char> {
        // The lint rules only dispatch on ASCII structure; non-ASCII bytes
        // ride along inside identifiers/comments/strings untouched.
        self.src.get(self.pos + ahead).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Lexes `src` into tokens. Never fails: unterminated constructs swallow the
/// rest of the file as a single token, which is the conservative behaviour
/// for a linter (rustc will reject such a file anyway).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
                continue;
            }
            '/' if cur.peek(1) == Some('/') => {
                cur.eat_while(|c| c != '\n');
                push(&mut out, &cur, start, line, TokenKind::Comment, src);
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(&mut out, &cur, start, line, TokenKind::Comment, src);
            }
            '"' => {
                lex_string(&mut cur);
                push(&mut out, &cur, start, line, TokenKind::Literal, src);
            }
            'b' if cur.peek(1) == Some('"') => {
                cur.bump();
                lex_string(&mut cur);
                push(&mut out, &cur, start, line, TokenKind::Literal, src);
            }
            'r' | 'b' if is_raw_string_start(&cur) => {
                lex_raw_string(&mut cur);
                push(&mut out, &cur, start, line, TokenKind::Literal, src);
            }
            '\'' => {
                // Disambiguate char literal from lifetime: a lifetime is `'`
                // followed by an identifier *not* closed by another `'`.
                let is_lifetime = cur.peek(1).is_some_and(is_ident_start)
                    && cur.peek(2).is_some_and(|c| c != '\'')
                    && cur.peek(1) != Some('\\');
                if is_lifetime {
                    cur.bump();
                    cur.eat_while(is_ident_continue);
                    push(&mut out, &cur, start, line, TokenKind::Lifetime, src);
                } else {
                    cur.bump();
                    if cur.peek(0) == Some('\\') {
                        cur.bump();
                        cur.bump();
                        cur.eat_while(|c| c != '\'');
                    } else {
                        cur.bump();
                    }
                    if cur.peek(0) == Some('\'') {
                        cur.bump();
                    }
                    push(&mut out, &cur, start, line, TokenKind::Literal, src);
                }
            }
            _ if c.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                push(&mut out, &cur, start, line, kind, src);
            }
            _ if is_ident_start(c) => {
                cur.eat_while(is_ident_continue);
                push(&mut out, &cur, start, line, TokenKind::Ident, src);
            }
            _ => {
                cur.bump();
                // Combine the two-char operators the rules dispatch on.
                let combined = matches!(
                    (c, cur.peek(0)),
                    ('=', Some('=')) | ('!', Some('=')) | (':', Some(':'))
                );
                if combined {
                    cur.bump();
                }
                push(&mut out, &cur, start, line, TokenKind::Punct, src);
            }
        }
    }
    out
}

fn push(
    out: &mut Vec<Token>,
    cur: &Cursor<'_>,
    start: usize,
    line: usize,
    kind: TokenKind,
    src: &str,
) {
    out.push(Token {
        kind,
        text: src[start..cur.pos].to_owned(),
        line,
    });
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

fn is_raw_string_start(cur: &Cursor<'_>) -> bool {
    // `r"`, `r#"`, `br"`, `br#"` (any number of fences).
    let mut i = 1;
    if cur.peek(0) == Some('b') {
        if cur.peek(1) != Some('r') {
            return false;
        }
        i = 2;
    }
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    cur.peek(i) == Some('"')
}

fn lex_raw_string(cur: &mut Cursor<'_>) {
    if cur.peek(0) == Some('b') {
        cur.bump();
    }
    cur.bump(); // `r`
    let mut fences = 0usize;
    while cur.peek(0) == Some('#') {
        cur.bump();
        fences += 1;
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some('"') => {
                let mut closed = 0usize;
                while closed < fences && cur.peek(0) == Some('#') {
                    cur.bump();
                    closed += 1;
                }
                if closed == fences {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    // Hex / octal / binary literals are never floats.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return TokenKind::Int;
    }
    let mut float = false;
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    // A `.` makes it a float unless it starts a method call (`1.max(2)`) or
    // a range (`0..n`).
    if cur.peek(0) == Some('.') && cur.peek(1) != Some('.') {
        let after = cur.peek(1);
        let method_call = after.is_some_and(is_ident_start);
        if !method_call {
            float = true;
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    if matches!(cur.peek(0), Some('e' | 'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some('+' | '-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        if matches!(cur.peek(0), Some('+' | '-')) {
            cur.bump();
        }
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Type suffix: `1f64` is a float, `1u32` is not.
    if cur.peek(0) == Some('f')
        && (cur.peek(1) == Some('3') && cur.peek(2) == Some('2')
            || cur.peek(1) == Some('6') && cur.peek(2) == Some('4'))
    {
        float = true;
    }
    cur.eat_while(is_ident_continue);
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_raw_strings_are_opaque() {
        let toks = kinds(r##"let s = r#"Instant::now()"#; // Instant::now()"##);
        assert!(toks
            .iter()
            .all(|(k, t)| !(*k == TokenKind::Ident && t == "Instant")));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Comment)
                .count(),
            1
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'b'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn float_detection() {
        for (src, kind) in [
            ("1.0", TokenKind::Float),
            ("1e3", TokenKind::Float),
            ("1.5e-3", TokenKind::Float),
            ("2f64", TokenKind::Float),
            ("3.", TokenKind::Float),
            ("7", TokenKind::Int),
            ("0xff", TokenKind::Int),
            ("1_000u64", TokenKind::Int),
        ] {
            assert_eq!(lex(src)[0].kind, kind, "{src}");
        }
        // `1.max(2)` and `0..n` must not produce floats.
        assert!(lex("1.max(2)").iter().all(|t| t.kind != TokenKind::Float));
        assert!(lex("0..n").iter().all(|t| t.kind != TokenKind::Float));
    }

    #[test]
    fn two_char_operators_combine() {
        let toks = kinds("a == b != c :: d = e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "="]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }
}
