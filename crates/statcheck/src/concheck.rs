//! The concurrency-discipline pass (`fidelity concheck`).
//!
//! The campaign engine's concurrency substrate — the `fidelity-par`
//! work-stealing pool, the serve supervisor/queue, and the `obs` metrics
//! registry — is hand-rolled, and a single lost or duplicated injection
//! silently corrupts FIT rates. This pass statically enforces the lock and
//! atomics discipline those protocols rely on; its dynamic complement is
//! the vendored loom-style model checker (`crates/compat/loom`).
//!
//! Rules:
//! - `lock-cycle` — a lock-acquisition-order cycle across the analyzed
//!   files (including acquiring a lock while already holding a lock of the
//!   same name). Lock identity is the last field/binding name of the
//!   receiver path (`self.jobs.lock()` and `lock(&self.jobs)` are both
//!   lock `jobs`), so a cycle here means "some instances of these locks
//!   can deadlock".
//! - `relaxed-flag` — a `Relaxed` atomic load driving a control-flow
//!   decision (`if`/`while` condition). Cross-thread control flow must use
//!   `Acquire`/`Release` (or justify the relaxation with an allow).
//! - `poison-unwrap` — `.lock().unwrap()` / `.lock().expect(...)`
//!   propagates poison: one panicked holder permanently wedges every
//!   later caller. Use `unwrap_or_else(PoisonError::into_inner)`.
//! - `block-under-lock` — blocking I/O, `join()`, `recv()`, or `sleep`
//!   while a `MutexGuard` is held, stalling every contender.
//!
//! The pass also classifies every atomic call site as counter
//! (`fetch_add`/`fetch_sub`), flag (`load`/`store`), or handoff
//! (`swap`/`compare_exchange`/`fetch_or`) for the report summary.
//!
//! Suppression follows the lint protocol: `// statcheck:allow(<rule>)` on
//! the finding's line or the line directly above, with a justification.
//! An allowed `lock-cycle` edge is removed from the order graph entirely
//! (the ordering exception is justified, so its partner edges stay clean).
//!
//! Like the lint, the analysis is token-level and intraprocedural: lock
//! guards are tracked from acquisition to scope end / `drop` / statement
//! end, and blocking calls hidden behind helper functions (e.g. journal
//! writes inside a method) are not seen at the call site.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};
use crate::lint::{collect_rs_files, in_ranges, test_module_lines};

/// A concurrency-discipline rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConRule {
    /// Lock-acquisition-order cycle (potential deadlock).
    LockCycle,
    /// `Relaxed` load in a branch condition (cross-thread control flow).
    RelaxedFlag,
    /// `.lock().unwrap()` — poison propagation wedges the process.
    PoisonUnwrap,
    /// Blocking operation while holding a `MutexGuard`.
    BlockUnderLock,
}

impl ConRule {
    /// All rules, in reporting order.
    pub const ALL: [ConRule; 4] = [
        ConRule::LockCycle,
        ConRule::RelaxedFlag,
        ConRule::PoisonUnwrap,
        ConRule::BlockUnderLock,
    ];

    /// The stable name used in reports and `statcheck:allow(...)` lists.
    pub fn name(self) -> &'static str {
        match self {
            ConRule::LockCycle => "lock-cycle",
            ConRule::RelaxedFlag => "relaxed-flag",
            ConRule::PoisonUnwrap => "poison-unwrap",
            ConRule::BlockUnderLock => "block-under-lock",
        }
    }
}

impl fmt::Display for ConRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One concurrency finding.
#[derive(Clone, Debug)]
pub struct ConFinding {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: ConRule,
    /// What was matched, including the held lock-set where relevant.
    pub matched: String,
}

impl fmt::Display for ConFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.matched
        )
    }
}

/// One lock-order edge: lock `from` was held while `to` was acquired.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Held lock.
    pub from: String,
    /// Acquired lock.
    pub to: String,
    /// Witness site.
    pub path: PathBuf,
    /// Witness line (the acquisition of `to`).
    pub line: usize,
    /// Enclosing function name.
    pub function: String,
    /// Whether a `statcheck:allow(lock-cycle)` covers the witness.
    pub allowed: bool,
}

/// Atomic call sites by classification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AtomicSites {
    /// `fetch_add` / `fetch_sub` — statistics and refcounts.
    pub counters: usize,
    /// `load` / `store` — cross-thread flags and published values.
    pub flags: usize,
    /// `swap` / `compare_exchange*` / `fetch_or` — ownership handoff.
    pub handoffs: usize,
}

impl AtomicSites {
    fn add(&mut self, other: AtomicSites) {
        self.counters += other.counters;
        self.flags += other.flags;
        self.handoffs += other.handoffs;
    }

    /// Total classified sites.
    pub fn total(&self) -> usize {
        self.counters + self.flags + self.handoffs
    }
}

/// Per-file analysis result; aggregated by [`concheck_paths`].
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Local findings (everything except `lock-cycle`), allows applied.
    pub findings: Vec<ConFinding>,
    /// Lock-order edges observed in this file.
    pub edges: Vec<LockEdge>,
    /// Atomic site classification counts.
    pub atomics: AtomicSites,
    /// Functions analyzed.
    pub functions: usize,
}

/// Workspace-level report of [`concheck_paths`].
#[derive(Clone, Debug, Default)]
pub struct ConcheckReport {
    /// All findings (lock-cycle included), in path order.
    pub findings: Vec<ConFinding>,
    /// Atomic site classification counts.
    pub atomics: AtomicSites,
    /// Functions analyzed.
    pub functions: usize,
    /// Distinct lock names seen.
    pub locks: usize,
    /// Distinct lock-order edges (allowed ones excluded).
    pub edges: usize,
}

/// Concheck configuration.
#[derive(Clone, Debug)]
pub struct ConcheckConfig {
    /// Whether to skip `#[cfg(test)]` modules (tests may hold locks across
    /// blocking asserts freely).
    pub skip_test_modules: bool,
}

impl Default for ConcheckConfig {
    fn default() -> Self {
        ConcheckConfig {
            skip_test_modules: true,
        }
    }
}

/// How long an acquired lock stays held in the intraprocedural model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Until {
    /// Let-bound guard: until the enclosing block (opened at depth `d`)
    /// closes, i.e. while `depth >= d`.
    Scope(usize),
    /// Statement temporary: until the next `;` at the acquisition depth.
    Semi(usize),
    /// `if`/`while` condition temporary: until the block `{` opens.
    CondEnd,
}

#[derive(Clone, Debug)]
struct Held {
    name: String,
    binding: Option<String>,
    until: Until,
}

/// Extracts `(line, rule)` pairs from `statcheck:allow(...)` comments for
/// the concurrency rules (same comment syntax as the lint).
fn collect_allows(tokens: &[Token]) -> Vec<(usize, ConRule)> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let Some(idx) = t.text.find("statcheck:allow(") else {
            continue;
        };
        let rest = &t.text[idx + "statcheck:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        for name in rest[..close].split(',') {
            let name = name.trim();
            if let Some(rule) = ConRule::ALL.iter().find(|r| r.name() == name) {
                out.push((t.line, *rule));
            }
        }
    }
    out
}

fn allowed(allows: &[(usize, ConRule)], rule: ConRule, line: usize) -> bool {
    allows
        .iter()
        .any(|(l, r)| *r == rule && (*l == line || *l + 1 == line))
}

/// Function body extents over the significant-token stream:
/// `(name, open_brace_idx, close_brace_idx)`.
fn function_bodies(sig: &[&Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if !(sig[i].is_ident("fn") && sig.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)) {
            i += 1;
            continue;
        }
        let name = sig[i + 1].text.clone();
        // Find the body `{` (or `;` for a trait method declaration).
        let mut j = i + 2;
        let mut body = None;
        while j < sig.len() {
            if sig[j].is_punct(";") {
                break;
            }
            if sig[j].is_punct("{") {
                body = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        let mut depth = 0isize;
        let mut close = open;
        while close < sig.len() {
            if sig[close].is_punct("{") {
                depth += 1;
            } else if sig[close].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        out.push((name, open, close.min(sig.len().saturating_sub(1))));
        // Nested fns are analyzed as part of the enclosing body.
        i = close + 1;
    }
    out
}

/// The lock identity of an acquisition ending at `sig[dot]` (the `.` of
/// `.lock()`): the last field name of the receiver path, or the callee name
/// for `f().lock()` receivers. Returns `None` for std stream locks.
fn receiver_lock_name(sig: &[&Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = sig[dot - 1];
    if prev.kind == TokenKind::Ident {
        if matches!(prev.text.as_str(), "self") {
            return Some("self".to_string());
        }
        return Some(prev.text.clone());
    }
    if prev.is_punct(")") {
        // `f(...).lock()` — match back to the `(` and take the callee.
        let mut depth = 0isize;
        let mut k = dot - 1;
        loop {
            if sig[k].is_punct(")") {
                depth += 1;
            } else if sig[k].is_punct("(") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        let callee = sig.get(k.wrapping_sub(1))?;
        if matches!(callee.text.as_str(), "stderr" | "stdout" | "stdin") {
            return None;
        }
        if callee.kind == TokenKind::Ident {
            return Some(callee.text.clone());
        }
    }
    None
}

/// The lock identity of a `lock(&...)` / `lock_inner(&...)` helper call:
/// the last identifier of the argument path. `lock_registry()` is the
/// registry lock.
fn helper_lock_name(sig: &[&Token], callee: usize) -> Option<String> {
    if sig[callee].is_ident("lock_registry") {
        return Some("registry".to_string());
    }
    let mut k = callee + 2; // past the `(`
    let mut last = None;
    let mut depth = 1isize;
    while k < sig.len() {
        if sig[k].is_punct("(") {
            depth += 1;
        } else if sig[k].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if sig[k].kind == TokenKind::Ident && depth == 1 {
            last = Some(sig[k].text.clone());
        }
        k += 1;
    }
    last
}

/// The token index starting the statement containing `sig[at]`: the token
/// after the closest preceding `;`, `{`, or `}` (bounded below by `floor`).
fn statement_start(sig: &[&Token], at: usize, floor: usize) -> usize {
    let mut k = at;
    while k > floor {
        let t = sig[k - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return k;
        }
        k -= 1;
    }
    floor
}

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Whether the call whose `(` is at `sig[open]` mentions an atomic
/// `Ordering` before its matching `)`; returns the orderings seen.
fn call_orderings(sig: &[&Token], open: usize) -> Vec<String> {
    let mut depth = 0isize;
    let mut k = open;
    let mut found = Vec::new();
    while k < sig.len() {
        if sig[k].is_punct("(") {
            depth += 1;
        } else if sig[k].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if sig[k].kind == TokenKind::Ident && ORDERINGS.contains(&sig[k].text.as_str()) {
            found.push(sig[k].text.clone());
        }
        k += 1;
    }
    found
}

fn lock_set(held: &[Held]) -> String {
    let names: Vec<&str> = held.iter().map(|h| h.name.as_str()).collect();
    format!("{{{}}}", names.join(", "))
}

/// Analyzes one source file; `lock-cycle` edges are returned for the
/// caller to aggregate across files.
pub fn concheck_source(path: &Path, src: &str, config: &ConcheckConfig) -> FileAnalysis {
    let tokens = lex(src);
    let allows = collect_allows(&tokens);
    let test_lines = if config.skip_test_modules {
        test_module_lines(&tokens)
    } else {
        Vec::new()
    };
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();

    let mut analysis = FileAnalysis::default();
    let bodies = function_bodies(&sig);
    analysis.functions = bodies.len();

    for (function, open, close) in bodies {
        analyze_body(
            path,
            &sig,
            &function,
            open,
            close,
            &allows,
            &test_lines,
            &mut analysis,
        );
    }
    analysis
}

/// Walks one function body tracking held guards, emitting local findings
/// and lock-order edges.
#[allow(clippy::too_many_arguments)]
fn analyze_body(
    path: &Path,
    sig: &[&Token],
    function: &str,
    open: usize,
    close: usize,
    allows: &[(usize, ConRule)],
    test_lines: &[(usize, usize)],
    analysis: &mut FileAnalysis,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth: usize = 1; // inside the body `{`
    let mut in_condition = false;

    let emit = |findings: &mut Vec<ConFinding>, rule: ConRule, line: usize, matched: String| {
        if in_ranges(test_lines, line) || allowed(allows, rule, line) {
            return;
        }
        findings.push(ConFinding {
            path: path.to_owned(),
            line,
            rule,
            matched,
        });
    };

    let mut i = open + 1;
    while i < close {
        let t = sig[i];
        if t.is_punct("{") {
            depth += 1;
            in_condition = false;
            held.retain(|h| h.until != Until::CondEnd);
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            held.retain(|h| match h.until {
                Until::Scope(d) => depth >= d,
                Until::Semi(d) => depth >= d,
                Until::CondEnd => true,
            });
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            held.retain(|h| h.until != Until::Semi(depth));
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }

        match t.text.as_str() {
            "if" | "while" => {
                in_condition = true;
            }
            // `drop(g)` / `drop((ga, gb))` releases the named guards.
            "drop" if sig.get(i + 1).is_some_and(|n| n.is_punct("(")) => {
                let mut k = i + 2;
                let mut d = 1isize;
                while k < close && d > 0 {
                    if sig[k].is_punct("(") {
                        d += 1;
                    } else if sig[k].is_punct(")") {
                        d -= 1;
                    } else if sig[k].kind == TokenKind::Ident {
                        let name = &sig[k].text;
                        held.retain(|h| h.binding.as_ref() != Some(name));
                    }
                    k += 1;
                }
            }
            // Acquisitions: `recv.lock()` method form.
            "lock"
                if i > 0
                    && sig[i - 1].is_punct(".")
                    && sig.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && sig.get(i + 2).is_some_and(|n| n.is_punct(")")) =>
            {
                // Poison propagation: `.lock().unwrap()` / `.expect(...)`.
                if sig.get(i + 3).is_some_and(|n| n.is_punct("."))
                    && sig
                        .get(i + 4)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                    && receiver_lock_name(sig, i - 1).is_some()
                {
                    emit(
                        &mut analysis.findings,
                        ConRule::PoisonUnwrap,
                        t.line,
                        format!(".lock().{}()", sig[i + 4].text),
                    );
                }
                if let Some(name) = receiver_lock_name(sig, i - 1) {
                    acquire(
                        path,
                        sig,
                        function,
                        i,
                        t.line,
                        name,
                        depth,
                        &mut held,
                        allows,
                        test_lines,
                        in_condition,
                        analysis,
                    );
                }
            }
            // Acquisitions: `lock(&x)` / `lock_inner(&x)` / `lock_registry()`
            // helper form (not a method call).
            "lock" | "lock_inner" | "lock_registry"
                if (i == 0 || !sig[i - 1].is_punct("."))
                    && sig.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                if let Some(name) = helper_lock_name(sig, i) {
                    acquire(
                        path,
                        sig,
                        function,
                        i,
                        t.line,
                        name,
                        depth,
                        &mut held,
                        allows,
                        test_lines,
                        in_condition,
                        analysis,
                    );
                }
            }
            // Atomic classification + relaxed-flag.
            "load"
            | "store"
            | "swap"
            | "fetch_add"
            | "fetch_sub"
            | "fetch_or"
            | "fetch_and"
            | "compare_exchange"
            | "compare_exchange_weak"
                if i > 0
                    && sig[i - 1].is_punct(".")
                    && sig.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                let orderings = call_orderings(sig, i + 1);
                if !orderings.is_empty() {
                    match t.text.as_str() {
                        "fetch_add" | "fetch_sub" => analysis.atomics.counters += 1,
                        "load" | "store" => analysis.atomics.flags += 1,
                        _ => analysis.atomics.handoffs += 1,
                    }
                    if t.text == "load" && in_condition && orderings.iter().any(|o| o == "Relaxed")
                    {
                        emit(
                            &mut analysis.findings,
                            ConRule::RelaxedFlag,
                            t.line,
                            "Relaxed load in branch condition".to_string(),
                        );
                    }
                }
            }
            // Blocking while holding a guard: macro I/O.
            "write" | "writeln" | "print" | "println" | "eprint" | "eprintln"
                if !held.is_empty() && sig.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                emit(
                    &mut analysis.findings,
                    ConRule::BlockUnderLock,
                    t.line,
                    format!("{}! while holding {}", t.text, lock_set(&held)),
                );
            }
            // Blocking while holding a guard: method calls.
            "flush" | "write_all" | "read_to_string" | "sync_all" | "recv" | "recv_timeout"
                if !held.is_empty()
                    && i > 0
                    && sig[i - 1].is_punct(".")
                    && sig.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                emit(
                    &mut analysis.findings,
                    ConRule::BlockUnderLock,
                    t.line,
                    format!(".{}() while holding {}", t.text, lock_set(&held)),
                );
            }
            // `.join()` with no arguments is a thread join; `.join(sep)` is
            // a slice join and harmless.
            "join"
                if !held.is_empty()
                    && i > 0
                    && sig[i - 1].is_punct(".")
                    && sig.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && sig.get(i + 2).is_some_and(|n| n.is_punct(")")) =>
            {
                emit(
                    &mut analysis.findings,
                    ConRule::BlockUnderLock,
                    t.line,
                    format!(".join() while holding {}", lock_set(&held)),
                );
            }
            "sleep" if !held.is_empty() && i > 0 && sig[i - 1].is_punct("::") => {
                emit(
                    &mut analysis.findings,
                    ConRule::BlockUnderLock,
                    t.line,
                    format!("thread::sleep while holding {}", lock_set(&held)),
                );
            }
            _ => {}
        }
        i += 1;
    }
}

/// Records a lock acquisition at `sig[at]`: emits order edges against every
/// held lock and pushes the new guard with its lifetime model.
#[allow(clippy::too_many_arguments)]
fn acquire(
    path: &Path,
    sig: &[&Token],
    function: &str,
    at: usize,
    line: usize,
    name: String,
    depth: usize,
    held: &mut Vec<Held>,
    allows: &[(usize, ConRule)],
    test_lines: &[(usize, usize)],
    in_condition: bool,
    analysis: &mut FileAnalysis,
) {
    if in_ranges(test_lines, line) {
        return;
    }
    for h in held.iter() {
        analysis.edges.push(LockEdge {
            from: h.name.clone(),
            to: name.clone(),
            path: path.to_owned(),
            line,
            function: function.to_string(),
            allowed: allowed(allows, ConRule::LockCycle, line),
        });
    }

    // Guard lifetime: `let [mut] g = <acquisition>;` binds the guard and
    // holds it to scope end — but only when the lock expression (plus
    // `.unwrap`-family adapters) is the *whole* initializer; in
    // `let v = lock(&q).pop_front();` the binding is the popped value and
    // the guard is a statement temporary. A `for`-head temporary lives
    // across the loop body; an `if`/`while` condition temporary dies at
    // the block `{`; anything else dies at the statement's `;`.
    let start = statement_start(sig, at, 0);
    let (binding, until) = if sig[start].is_ident("let") && binds_guard(sig, at) {
        let mut k = start + 1;
        if sig.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let binding = sig
            .get(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
        (binding, Until::Scope(depth))
    } else if sig[start].is_ident("for") {
        (None, Until::Scope(depth + 1))
    } else if in_condition {
        (None, Until::CondEnd)
    } else {
        (None, Until::Semi(depth))
    };
    held.push(Held {
        name,
        binding,
        until,
    });
}

/// Index just past the matching `)` of the call whose `(` is at `open`.
fn skip_call(sig: &[&Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut k = open;
    while k < sig.len() {
        if sig[k].is_punct("(") {
            depth += 1;
        } else if sig[k].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Whether a `let` statement binds the *guard* of the acquisition at
/// `sig[at]`: the lock call, plus any `.unwrap()` / `.expect(...)` /
/// `.unwrap_or_else(...)` adapters, must be the entire initializer
/// (terminated by `;`). Further method calls mean the guard is a
/// statement temporary and only the call's result is bound.
fn binds_guard(sig: &[&Token], at: usize) -> bool {
    let mut k = skip_call(sig, at + 1);
    while sig.get(k).is_some_and(|t| t.is_punct("."))
        && sig.get(k + 1).is_some_and(|t| {
            t.is_ident("unwrap") || t.is_ident("expect") || t.is_ident("unwrap_or_else")
        })
        && sig.get(k + 2).is_some_and(|t| t.is_punct("("))
    {
        k = skip_call(sig, k + 2);
    }
    sig.get(k).is_some_and(|t| t.is_punct(";"))
}

/// Detects lock-order cycles over the non-allowed edges and emits one
/// `lock-cycle` finding per participating edge witness.
fn cycle_findings(edges: &[LockEdge]) -> Vec<ConFinding> {
    // Distinct direction pairs (self-edges are cycles of length 1).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges.iter().filter(|e| !e.allowed) {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };

    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, String, PathBuf, usize)> = BTreeSet::new();
    for e in edges.iter().filter(|e| !e.allowed) {
        // The edge is on a cycle iff its target reaches back to its source.
        if reaches(&e.to, &e.from)
            && reported.insert((e.from.clone(), e.to.clone(), e.path.clone(), e.line))
        {
            out.push(ConFinding {
                path: e.path.clone(),
                line: e.line,
                rule: ConRule::LockCycle,
                matched: format!(
                    "lock order {} -> {} in {}() closes a cycle",
                    e.from, e.to, e.function
                ),
            });
        }
    }
    out
}

/// Runs the concurrency pass over every `.rs` file under `roots`.
pub fn concheck_paths(
    roots: &[PathBuf],
    config: &ConcheckConfig,
) -> std::io::Result<ConcheckReport> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();

    let mut report = ConcheckReport::default();
    let mut edges: Vec<LockEdge> = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let analysis = concheck_source(&file, &src, config);
        report.findings.extend(analysis.findings);
        report.atomics.add(analysis.atomics);
        report.functions += analysis.functions;
        edges.extend(analysis.edges);
    }

    let mut locks: BTreeSet<&str> = BTreeSet::new();
    let mut pairs: BTreeSet<(&str, &str)> = BTreeSet::new();
    for e in edges.iter().filter(|e| !e.allowed) {
        locks.insert(e.from.as_str());
        locks.insert(e.to.as_str());
        pairs.insert((e.from.as_str(), e.to.as_str()));
    }
    report.locks = locks.len();
    report.edges = pairs.len();

    report.findings.extend(cycle_findings(&edges));
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> ConcheckReport {
        let analysis = concheck_source(Path::new("x.rs"), src, &ConcheckConfig::default());
        let mut report = ConcheckReport {
            findings: analysis.findings,
            atomics: analysis.atomics,
            functions: analysis.functions,
            ..Default::default()
        };
        report.findings.extend(cycle_findings(&analysis.edges));
        report
    }

    #[test]
    fn poison_unwrap_fires_and_recovery_does_not() {
        let r = run("fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, ConRule::PoisonUnwrap);

        let r = run(
            "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }",
        );
        assert!(r.findings.is_empty());
    }

    #[test]
    fn std_stream_locks_are_ignored() {
        let r = run("fn f() { let g = std::io::stderr().lock(); writeln!(g, \"x\").ok(); }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn ab_ba_ordering_is_a_cycle() {
        let src = "
            fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }
            fn g(&self) { let b = lock(&self.beta); let a = lock(&self.alpha); }
        ";
        let r = run(src);
        let cycles: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == ConRule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 2, "{:?}", r.findings);
    }

    #[test]
    fn consistent_ordering_is_not_a_cycle() {
        let src = "
            fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }
            fn g(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }
        ";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn drop_releases_the_guard_before_the_second_acquisition() {
        let src = "
            fn f(&self) { let a = lock(&self.alpha); drop(a); let b = lock(&self.beta); }
            fn g(&self) { let b = lock(&self.beta); drop(b); let a = lock(&self.alpha); }
        ";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn statement_temporary_is_released_at_semicolon() {
        let src = "
            fn f(&self) { self.alpha.lock().unwrap_or_else(E::into_inner).push(1); let b = lock(&self.beta); }
            fn g(&self) { self.beta.lock().unwrap_or_else(E::into_inner).push(1); let a = lock(&self.alpha); }
        ";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn for_head_lock_is_held_across_the_body() {
        let src = "
            fn f(&self) { for x in lock(&self.jobs).values() { let c = lock(&x.cancel); } }
            fn g(&self) { let c = lock(&self.cancel); let j = lock(&self.jobs); }
        ";
        let r = run(src);
        let cycles: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == ConRule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 2, "{:?}", r.findings);
    }

    #[test]
    fn relaxed_load_in_condition_fires_acquire_does_not() {
        let r = run("fn f(&self) { if self.stop.load(Ordering::Relaxed) { return; } }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, ConRule::RelaxedFlag);

        let r = run("fn f(&self) { if self.stop.load(Ordering::Acquire) { return; } }");
        assert!(r.findings.is_empty());

        // A Relaxed load outside control flow (stat counter read) is fine.
        let r = run("fn f(&self) { let n = self.hits.load(Ordering::Relaxed); }");
        assert!(r.findings.is_empty());
    }

    #[test]
    fn blocking_under_lock_fires_and_after_release_does_not() {
        let r = run("fn f(&self) { let g = lock(&self.writer); g.flush().ok(); }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, ConRule::BlockUnderLock);
        assert!(r.findings[0].matched.contains("{writer}"));

        let r = run("fn f(&self) { { let g = lock(&self.writer); } self.out.flush().ok(); }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn slice_join_is_not_a_thread_join() {
        let r = run("fn f(&self) { let g = lock(&self.names); let s = g.join(\", \"); }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        let r = run("fn f(&self) { let g = lock(&self.jobs); handle.join(); }");
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn condition_temporary_is_released_inside_the_block() {
        let r = run("fn f(&self) { if lock(&self.q).is_empty() { self.out.flush().ok(); } }");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn allows_suppress_and_remove_edges() {
        let src = "
            fn f(&self) { let a = lock(&self.alpha); let b = lock(&self.beta); }
            fn g(&self) {
                let b = lock(&self.beta);
                // statcheck:allow(lock-cycle) shutdown-only path, alpha uncontended here
                let a = lock(&self.alpha);
            }
        ";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        let r = run(
            "fn f(&self) { let g = lock(&self.writer); g.flush().ok(); // statcheck:allow(block-under-lock) lock serializes the sink\n }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn atomic_sites_are_classified() {
        let src = "
            fn f(&self) {
                self.count.fetch_add(1, Ordering::Relaxed);
                self.done.store(true, Ordering::Release);
                let t = self.slot.swap(0, Ordering::AcqRel);
                let n = self.count.load(Ordering::Relaxed);
            }
        ";
        let r = run(src);
        assert_eq!(r.atomics.counters, 1);
        assert_eq!(r.atomics.flags, 2);
        assert_eq!(r.atomics.handoffs, 1);
        assert_eq!(r.atomics.total(), 4);
    }

    #[test]
    fn test_modules_are_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }\n}";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn let_of_a_method_result_is_a_temporary_not_a_guard() {
        // The binding holds the popped value; the guard dies at the `;`,
        // so the second acquisition is not nested inside the first.
        let src = "
            fn f(&self) {
                let own = lock(&self.queue).pop_front();
                let q = lock(&self.queue);
            }
        ";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        // Adapter chains still bind the guard.
        let src = "
            fn f(&self) {
                let g = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                let h = lock(&self.other);
            }
            fn g(&self) { let h = lock(&self.other); let g = lock(&self.queue); }
        ";
        let r = run(src);
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.rule == ConRule::LockCycle)
                .count(),
            2,
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn self_relock_is_a_cycle_of_length_one() {
        let r = run("fn f(&self) { let a = lock(&self.jobs); let b = lock(&self.jobs); }");
        let cycles: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == ConRule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", r.findings);
    }
}
