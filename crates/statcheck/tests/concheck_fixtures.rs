//! Fixture-based tests for the concurrency pass: every rule fires on its
//! fixture, every `statcheck:allow` suppresses, and idiomatic concurrency
//! stays clean (with its atomic census intact).

use std::path::{Path, PathBuf};

use fidelity_statcheck::concheck::{concheck_paths, ConRule, ConcheckConfig, ConcheckReport};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> ConcheckReport {
    concheck_paths(&[fixture(name)], &ConcheckConfig::default()).expect("fixture readable")
}

fn rules(report: &ConcheckReport) -> Vec<ConRule> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn poison_unwrap_fixture_fires() {
    let r = run("con_poison_unwrap.rs");
    // One for `.unwrap()`, one for `.expect(...)`.
    assert_eq!(rules(&r), [ConRule::PoisonUnwrap; 2], "{:?}", r.findings);
}

#[test]
fn relaxed_flag_fixture_fires() {
    let r = run("con_relaxed_flag.rs");
    // The `if` and the `while` conditions both count.
    assert_eq!(rules(&r), [ConRule::RelaxedFlag; 2], "{:?}", r.findings);
}

#[test]
fn block_under_lock_fixture_fires() {
    let r = run("con_block_under_lock.rs");
    // writeln!, .flush(), .join(), thread::sleep — all under a live guard.
    assert_eq!(rules(&r), [ConRule::BlockUnderLock; 4], "{:?}", r.findings);
    assert!(
        r.findings.iter().all(|f| f.matched.contains("{m}")),
        "findings must name the held lock-set: {:?}",
        r.findings
    );
}

#[test]
fn lock_cycle_fixture_fires() {
    let r = run("con_lock_cycle.rs");
    // One finding per witness edge on the alpha<->beta cycle.
    assert_eq!(rules(&r), [ConRule::LockCycle; 2], "{:?}", r.findings);
    assert_eq!(r.locks, 2);
    assert_eq!(r.edges, 2);
}

#[test]
fn allow_comments_suppress_every_rule() {
    let r = run("con_allowed.rs");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    // Suppressed edges also leave the order graph.
    assert_eq!(r.edges, 0, "allowed edges must not count");
}

#[test]
fn clean_fixture_stays_clean() {
    let r = run("con_clean.rs");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    // The atomic census still sees the classified sites.
    assert_eq!(r.atomics.counters, 1, "{:?}", r.atomics);
    assert_eq!(r.atomics.flags, 3, "{:?}", r.atomics);
    assert_eq!(r.atomics.handoffs, 1, "{:?}", r.atomics);
    // alpha -> beta is an edge, but acyclic: no findings.
    assert_eq!(r.edges, 1);
}

/// The two cycle fixtures analyzed together still agree with the per-file
/// runs: the aggregation does not double-report witnesses.
#[test]
fn aggregated_run_reports_each_witness_once() {
    let roots = vec![fixture("con_lock_cycle.rs"), fixture("con_clean.rs")];
    let r = concheck_paths(&roots, &ConcheckConfig::default()).expect("fixtures readable");
    let cycles = r
        .findings
        .iter()
        .filter(|f| f.rule == ConRule::LockCycle)
        .count();
    // con_clean's alpha->beta edge joins the cycle component, adding its
    // own witness to the two from con_lock_cycle.
    assert_eq!(cycles, 3, "{:?}", r.findings);
}
