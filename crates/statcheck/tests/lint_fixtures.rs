//! Fixture-based tests for the determinism lint: every rule fires on its
//! fixture, every `statcheck:allow` suppresses, and clean code stays clean.

use std::path::{Path, PathBuf};

use fidelity_statcheck::lint::{lint_source, LintConfig, Rule};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    (path, src)
}

fn config() -> LintConfig {
    LintConfig {
        // The panic rule is path-scoped; opt the relevant fixtures in.
        campaign_paths: vec!["panic_path".into(), "allowed".into()],
        skip_test_modules: true,
    }
}

fn run(name: &str) -> Vec<(Rule, usize)> {
    let (path, src) = fixture(name);
    lint_source(&path, &src, &config())
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn wall_clock_fixture_fires() {
    let findings = run("wall_clock.rs");
    assert!(!findings.is_empty());
    assert!(findings.iter().all(|(r, _)| *r == Rule::WallClock));
    // Both the Instant::now() and the SystemTime reads are caught.
    assert!(findings.len() >= 2, "{findings:?}");
}

#[test]
fn ambient_rng_fixture_fires() {
    let findings = run("ambient_rng.rs");
    let rng: Vec<_> = findings
        .iter()
        .filter(|(r, _)| *r == Rule::AmbientRng)
        .collect();
    // thread_rng, from_entropy, OsRng, rand::random, getrandom.
    assert_eq!(rng.len(), 5, "{findings:?}");
}

#[test]
fn panic_path_fixture_fires() {
    let findings = run("panic_path.rs");
    let panics: Vec<_> = findings
        .iter()
        .filter(|(r, _)| *r == Rule::PanicPath)
        .collect();
    // unwrap, expect, panic!, todo!, unimplemented! — but not unreachable!.
    assert_eq!(panics.len(), 5, "{findings:?}");
}

#[test]
fn panic_rule_needs_a_campaign_path() {
    let (path, src) = fixture("panic_path.rs");
    let off_path = LintConfig {
        campaign_paths: vec!["somewhere-else".into()],
        skip_test_modules: true,
    };
    assert!(lint_source(&path, &src, &off_path).is_empty());
}

#[test]
fn float_eq_fixture_fires() {
    let findings = run("float_eq.rs");
    let eqs: Vec<_> = findings
        .iter()
        .filter(|(r, _)| *r == Rule::FloatEq)
        .collect();
    // `x == 1.0` and `0.5 != y`; `x == y` and `3 == 3` stay silent.
    assert_eq!(eqs.len(), 2, "{findings:?}");
}

#[test]
fn allow_annotations_suppress_every_rule() {
    let findings = run("allowed.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn clean_fixture_is_clean() {
    let findings = run("clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}
