// Fixture: deterministic campaign code; the lint must stay silent.
fn campaign(seed: u64, tolerance: f64, xs: &[f64]) -> Result<usize, String> {
    let mut state = seed;
    let mut hits = 0usize;
    for &x in xs {
        state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        if (x - 1.0).abs() < tolerance {
            hits += 1;
        }
    }
    // Strings and comments mentioning Instant::now() or thread_rng are prose.
    let _label = "Instant::now() is forbidden here";
    Ok(hits + (state % 2) as usize)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_use_clocks_and_unwrap() {
        let t = Instant::now();
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        assert!(t.elapsed().as_secs() < 60);
    }
}
