// Fixture: every wall-clock read pattern the lint must flag.
use std::time::{Instant, SystemTime};

fn timestamps() -> u64 {
    let started = Instant::now();
    let epoch = SystemTime::now();
    let _ = (started, epoch);
    0
}
