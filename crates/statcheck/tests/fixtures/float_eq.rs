// Fixture: exact float comparisons.
fn verdicts(x: f64, y: f64) -> bool {
    let a = x == 1.0;
    let b = 0.5 != y;
    let c = x == y; // no literal: needs value-flow analysis, not flagged
    let d = 3 == 3; // integers compare exactly, not flagged
    a && b && c && d
}
