//! Fixture: blocking operations while a `MutexGuard` is live.
use std::io::Write;
use std::sync::{Mutex, PoisonError};

pub fn writes_under_lock(m: &Mutex<Vec<u8>>, out: &mut impl Write) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    writeln!(out, "{}", g.len()).ok();
}

pub fn flushes_under_lock(m: &Mutex<u32>, out: &mut impl Write) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    out.flush().ok();
    drop(g);
}

pub fn joins_under_lock(m: &Mutex<u32>, t: std::thread::JoinHandle<()>) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    t.join().ok();
    drop(g);
}

pub fn sleeps_under_lock(m: &Mutex<u32>) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    std::thread::sleep(std::time::Duration::from_millis(*g as u64));
}
