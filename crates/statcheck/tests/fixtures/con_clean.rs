//! Fixture: idiomatic concurrency that must stay finding-free — poison
//! recovery, ordered flags, guards dropped before I/O, consistent lock
//! order, and one of each atomic class for the census.
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

pub fn recovers_from_poison(m: &Mutex<u32>) -> u32 {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    *g
}

pub fn branches_on_acquire(stop: &AtomicBool) -> bool {
    if stop.load(Ordering::Acquire) {
        return true;
    }
    false
}

pub fn drops_guard_before_io(m: &Mutex<Vec<u8>>, out: &mut impl Write) {
    let len = {
        let g = m.lock().unwrap_or_else(PoisonError::into_inner);
        g.len()
    };
    writeln!(out, "{len}").ok();
}

pub fn consistent_order_ab(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let a = alpha.lock().unwrap_or_else(PoisonError::into_inner);
    let b = beta.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

pub fn one_of_each_atomic_class(n: &AtomicU64, flag: &AtomicBool) -> u64 {
    n.fetch_add(1, Ordering::Relaxed);
    flag.store(true, Ordering::Release);
    flag.compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
        .ok();
    n.load(Ordering::Acquire)
}
