//! Fixture: `.lock().unwrap()` poison propagation — both findings fire.
use std::sync::Mutex;

pub fn unwraps_the_guard(m: &Mutex<u32>) -> u32 {
    let g = m.lock().unwrap();
    *g
}

pub fn expects_the_guard(m: &Mutex<u32>) -> u32 {
    let g = m.lock().expect("poisoned");
    *g
}
