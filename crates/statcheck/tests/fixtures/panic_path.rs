// Fixture: panicking shortcuts on a campaign path.
fn run(results: Option<Vec<u32>>) -> u32 {
    let rs = results.unwrap();
    let first = rs.first().expect("at least one result");
    if rs.len() > 1 {
        panic!("too many results");
    }
    if rs.is_empty() {
        todo!();
    }
    match first {
        0 => unimplemented!(),
        // `unreachable!` documents an invariant, it is not flagged.
        _ => unreachable!("guarded above"),
    }
}
