//! Fixture: `Relaxed` load steering a branch — cross-thread control flow
//! on an unordered read.
use std::sync::atomic::{AtomicBool, Ordering};

pub fn branches_on_relaxed(stop: &AtomicBool) -> bool {
    if stop.load(Ordering::Relaxed) {
        return true;
    }
    false
}

pub fn loops_on_relaxed(stop: &AtomicBool) {
    while stop.load(Ordering::Relaxed) {
        std::hint::spin_loop();
    }
}
