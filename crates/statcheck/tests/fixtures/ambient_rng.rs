// Fixture: every ambient-randomness pattern the lint must flag.
fn entropy() -> u64 {
    let mut rng = thread_rng();
    let seeded = SmallRng::from_entropy();
    let os = OsRng;
    let x: u64 = rand::random();
    let mut buf = [0u8; 8];
    getrandom(&mut buf).unwrap();
    let _ = (rng, seeded, os, x);
    0
}
