//! Fixture: every concheck rule suppressed by a justified
//! `statcheck:allow` on the line above (or the line itself).
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

pub fn allowed_poison_unwrap(m: &Mutex<u32>) -> u32 {
    // statcheck:allow(poison-unwrap) single-threaded setup path
    let g = m.lock().unwrap();
    *g
}

pub fn allowed_relaxed_flag(stop: &AtomicBool) -> bool {
    // statcheck:allow(relaxed-flag) advisory hint, never a correctness gate
    if stop.load(Ordering::Relaxed) {
        return true;
    }
    false
}

pub fn allowed_block_under_lock(m: &Mutex<u32>, out: &mut impl Write) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    // statcheck:allow(block-under-lock) the lock serializes this sink
    writeln!(out, "{}", *g).ok();
}

pub fn allowed_cycle_ab(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let a = alpha.lock().unwrap_or_else(PoisonError::into_inner);
    // statcheck:allow(lock-cycle) try-lock protocol, cannot deadlock
    let b = beta.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

pub fn allowed_cycle_ba(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let b = beta.lock().unwrap_or_else(PoisonError::into_inner);
    // statcheck:allow(lock-cycle) try-lock protocol, cannot deadlock
    let a = alpha.lock().unwrap_or_else(PoisonError::into_inner);
    *a - *b
}
