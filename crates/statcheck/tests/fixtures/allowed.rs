// Fixture: every rule suppressed by a statcheck:allow annotation.
use std::time::Instant;

fn watchdog(deadline: Instant, x: f64, v: Option<u32>) -> bool {
    // The watchdog deadline is monotonic-clock arithmetic, not a campaign
    // input. statcheck:allow(wall-clock)
    let late = Instant::now() >= deadline;
    // statcheck:allow(ambient-rng) — documented escape hatch
    let salt: u64 = rand::random();
    let n = v.unwrap(); // statcheck:allow(panic-path)
    // statcheck:allow(float-eq)
    let exact = x == 1.0;
    late && exact && salt == 0 && n == 0
}
