//! Fixture: AB-BA lock ordering — both witness edges sit on a cycle.
use std::sync::{Mutex, PoisonError};

pub fn takes_alpha_then_beta(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let a = alpha.lock().unwrap_or_else(PoisonError::into_inner);
    let b = beta.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

pub fn takes_beta_then_alpha(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let b = beta.lock().unwrap_or_else(PoisonError::into_inner);
    let a = alpha.lock().unwrap_or_else(PoisonError::into_inner);
    *a - *b
}
