//! Integration tests for the model-level static verifier: the shipped
//! presets must verify clean, and a deliberately corrupted fault model must
//! be caught with a counterexample naming the category, the layer family,
//! and the mismatched neuron sets.

use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};
use fidelity_accel::presets;
use fidelity_core::models::{model_for, OperandWindow, SoftwareFaultModel};
use fidelity_statcheck::report::CheckId;
use fidelity_statcheck::verifier::{verify_all, verify_preset_with, MAC_LAYER_KINDS};

#[test]
fn all_shipped_presets_verify_clean() {
    let report = verify_all();
    assert!(
        report.is_clean(),
        "shipped presets must pass the static verifier:\n{report}"
    );
    // The domain is finite but non-trivial; make sure the verifier actually
    // enumerated it rather than short-circuiting.
    assert!(
        report.checks_run > 400,
        "suspiciously few checks ran: {}",
        report.checks_run
    );
}

#[test]
fn corrupted_weight_reuse_factor_is_caught_with_counterexample() {
    let cfg = presets::nvdla_like();
    let weight_cat = FfCategory::Datapath {
        stage: PipelineStage::BufferToMac,
        var: VarType::Weight,
    };

    // Corrupt exactly one Table-II recipe: halve the weight-stationary hold
    // window, as if the recipe author had mistaken the reuse factor.
    let report = verify_preset_with(&cfg, &|cat, cfg| {
        let model = model_for(cat, cfg)?;
        if cat == weight_cat {
            if let SoftwareFaultModel::Operand {
                kind,
                window,
                random_suffix,
            } = model
            {
                return Some(SoftwareFaultModel::Operand {
                    kind,
                    window: OperandWindow {
                        positions: window.positions / 2,
                        channels: window.channels,
                    },
                    random_suffix,
                });
            }
        }
        Some(model)
    });

    assert!(!report.is_clean(), "the corruption must be detected");
    let mismatches: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.check == CheckId::ModelVsRfa && v.counterexample.is_some())
        .collect();
    assert!(
        !mismatches.is_empty(),
        "divergence must carry a neuron-set counterexample:\n{report}"
    );

    // The counterexample names the corrupted category, is instantiated for
    // every MAC layer family, and pinpoints the missing neurons.
    for kind in MAC_LAYER_KINDS {
        let cx = mismatches
            .iter()
            .filter_map(|v| v.counterexample.as_ref())
            .find(|cx| cx.layer_kind == kind)
            .unwrap_or_else(|| panic!("no counterexample for {kind:?}:\n{report}"));
        assert_eq!(cx.category, weight_cat);
        // Recipe covers 8 of the 16 derived positions: 8 missing, 0 extra.
        assert_eq!(cx.recipe.len(), 8);
        assert_eq!(cx.derived.len(), 16);
        assert_eq!(cx.missing.len(), 8);
        assert!(cx.extra.is_empty());
        // The rendered counterexample names everything a human needs.
        let text = cx.to_string();
        assert!(text.contains("buffer-to-MAC"), "{text}");
        assert!(text.contains(&format!("{kind:?}")), "{text}");
    }

    // No other category is implicated.
    for v in &report.violations {
        assert!(v.subject.contains("weight"), "unexpected violation: {v}");
    }
}

#[test]
fn missing_recipe_for_censused_category_is_caught() {
    let cfg = presets::eyeriss_like();
    let report = verify_preset_with(&cfg, &|cat, cfg| {
        if cat == FfCategory::LocalControl {
            return None;
        }
        model_for(cat, cfg)
    });
    assert!(report
        .violations
        .iter()
        .any(|v| v.check == CheckId::ModelVsRfa && v.message.contains("no software fault model")));
}

#[test]
fn swapped_operand_kind_is_caught() {
    let cfg = presets::nvdla_like();
    let report = verify_preset_with(&cfg, &|cat, cfg| {
        let model = model_for(cat, cfg)?;
        if let SoftwareFaultModel::Operand {
            kind,
            window,
            random_suffix,
        } = model
        {
            // Swap which operand every windowed recipe corrupts.
            let swapped = match kind {
                fidelity_dnn::macspec::OperandKind::Input => {
                    fidelity_dnn::macspec::OperandKind::Weight
                }
                fidelity_dnn::macspec::OperandKind::Weight => {
                    fidelity_dnn::macspec::OperandKind::Input
                }
            };
            return Some(SoftwareFaultModel::Operand {
                kind: swapped,
                window,
                random_suffix,
            });
        }
        Some(model)
    });
    assert!(report
        .violations
        .iter()
        .any(|v| v.message.contains("operand") && v.check == CheckId::ModelVsRfa));
}

#[test]
fn dropped_random_suffix_is_caught() {
    let cfg = presets::nvdla_like();
    let report = verify_preset_with(&cfg, &|cat, cfg| {
        let model = model_for(cat, cfg)?;
        if let SoftwareFaultModel::Operand {
            kind,
            window,
            random_suffix: true,
        } = model
        {
            // Pretend the multi-cycle weight hold never truncates.
            return Some(SoftwareFaultModel::Operand {
                kind,
                window,
                random_suffix: false,
            });
        }
        Some(model)
    });
    assert!(report
        .violations
        .iter()
        .any(|v| v.message.contains("never truncates")));
}
