//! Analytical performance model.
//!
//! The paper's Class-3 ("temporally not used") activeness analysis relies on
//! NVDLA's open-source performance tool, which breaks a layer's execution
//! into data-fetch and compute phases using only the scheduling algorithm
//! and hardware parameters. This module is the equivalent analytical model:
//! given a layer's work volume and the accelerator's bandwidths, it produces
//! the per-phase cycle counts, from which the inactive fraction of each FF
//! category follows.

use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::layers::LayerKind;

use crate::arch::AcceleratorConfig;
use crate::ff::{FfCategory, PipelineStage};

/// Work volume of one layer: everything the performance model needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerWork {
    /// Layer name.
    pub name: String,
    /// Layer family.
    pub kind: LayerKind,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Activation values fetched.
    pub input_elems: u64,
    /// Weight values fetched.
    pub weight_elems: u64,
    /// Output values produced.
    pub output_elems: u64,
}

/// Extracts the work volume of every node of an engine's network, using the
/// shapes recorded in a fault-free trace.
pub fn extract_work(engine: &Engine, trace: &Trace) -> Vec<LayerWork> {
    let net = engine.network();
    (0..net.node_count())
        .map(|idx| {
            let layer = net.layer(idx);
            let inputs = engine.node_inputs(idx, trace);
            let input_elems: u64 = inputs.iter().map(|t| t.len() as u64).sum();
            let weight_elems: u64 = layer.weights().iter().map(|t| t.len() as u64).sum();
            let shapes: Vec<&[usize]> = inputs.iter().map(|t| t.shape()).collect();
            LayerWork {
                name: layer.name().to_owned(),
                kind: layer.kind(),
                macs: layer.macs(&shapes),
                input_elems,
                weight_elems,
                output_elems: trace.node_outputs[idx].len() as u64,
            }
        })
        .collect()
}

/// Cycle breakdown of one layer's execution on the accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerTiming {
    /// Cycles spent filling the on-chip buffer.
    pub fetch_cycles: u64,
    /// Cycles the MAC array is busy.
    pub mac_cycles: u64,
    /// Cycles of post-processing (bias / activation / pooling / writeback).
    pub post_cycles: u64,
    /// End-to-end cycles: fetch and MAC overlap (double buffering), then
    /// post-processing drains.
    pub total_cycles: u64,
}

impl LayerTiming {
    /// Computes the timing of one layer under a configuration.
    pub fn analyze(cfg: &AcceleratorConfig, work: &LayerWork) -> LayerTiming {
        let lanes = cfg.dataflow.lanes() as u64;
        let mac_cycles = work.macs.div_ceil(lanes.max(1));
        let fetch = (work.input_elems + work.weight_elems) as f64 / cfg.fetch_values_per_cycle;
        let fetch_cycles = fetch.ceil() as u64;
        let post = work.output_elems as f64 / cfg.post_values_per_cycle;
        let post_cycles = post.ceil() as u64;
        let total_cycles = fetch_cycles.max(mac_cycles) + post_cycles;
        LayerTiming {
            fetch_cycles,
            mac_cycles,
            post_cycles,
            total_cycles: total_cycles.max(1),
        }
    }

    /// Fraction of the layer's execution during which FFs of `cat` are idle
    /// because their component has no work — the Class-3
    /// `Perc_inactive(cat, Class 3, r)` term of Eq. 1.
    ///
    /// Fetch-path FFs (before the buffer) are busy during the fetch phase;
    /// MAC-path and local-control FFs during the MAC phase; global-control
    /// FFs hold live state for the whole layer.
    pub fn class3_inactive(&self, cat: FfCategory) -> f64 {
        let total = self.total_cycles as f64;
        let busy = match cat {
            FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                ..
            } => self.fetch_cycles as f64,
            FfCategory::Datapath { .. } | FfCategory::LocalControl => self.mac_cycles as f64,
            FfCategory::GlobalControl => total,
        };
        (1.0 - busy / total).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ff::VarType;
    use crate::presets;

    fn conv_work() -> LayerWork {
        LayerWork {
            name: "conv".into(),
            kind: LayerKind::Conv,
            macs: 16_000,
            input_elems: 1_000,
            weight_elems: 500,
            output_elems: 2_000,
        }
    }

    #[test]
    fn mac_bound_layer_keeps_macs_busy() {
        let cfg = presets::nvdla_like();
        let t = LayerTiming::analyze(&cfg, &conv_work());
        assert_eq!(t.mac_cycles, 1_000); // 16k MACs / 16 lanes
        assert!(t.mac_cycles >= t.fetch_cycles);
        let mac_cat = FfCategory::Datapath {
            stage: PipelineStage::BufferToMac,
            var: VarType::Weight,
        };
        // MAC path is the bottleneck: small idle fraction (only post drain).
        assert!(t.class3_inactive(mac_cat) < 0.5);
        // Global control is never temporally idle.
        assert_eq!(t.class3_inactive(FfCategory::GlobalControl), 0.0);
    }

    #[test]
    fn fetch_bound_layer_idles_macs() {
        let cfg = presets::nvdla_like();
        let work = LayerWork {
            macs: 100,
            input_elems: 100_000,
            ..conv_work()
        };
        let t = LayerTiming::analyze(&cfg, &work);
        assert!(t.fetch_cycles > t.mac_cycles);
        let mac_cat = FfCategory::Datapath {
            stage: PipelineStage::BufferToMac,
            var: VarType::Input,
        };
        let fetch_cat = FfCategory::Datapath {
            stage: PipelineStage::BeforeBuffer,
            var: VarType::Input,
        };
        assert!(t.class3_inactive(mac_cat) > 0.9);
        assert!(t.class3_inactive(fetch_cat) < t.class3_inactive(mac_cat));
    }

    #[test]
    fn timing_never_zero_total() {
        let cfg = presets::nvdla_like();
        let work = LayerWork {
            macs: 0,
            input_elems: 0,
            weight_elems: 0,
            output_elems: 0,
            ..conv_work()
        };
        let t = LayerTiming::analyze(&cfg, &work);
        assert!(t.total_cycles >= 1);
        let frac = t.class3_inactive(FfCategory::LocalControl);
        assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn extract_work_counts_macs() {
        use fidelity_dnn::graph::{Engine, NetworkBuilder};
        use fidelity_dnn::layers::Dense;
        use fidelity_dnn::precision::Precision;
        use fidelity_dnn::tensor::Tensor;

        let net = NetworkBuilder::new("t")
            .input("x")
            .layer(
                Dense::new("fc", Tensor::full(vec![4, 8], 0.1)).unwrap(),
                &["x"],
            )
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let trace = engine.trace(&[Tensor::full(vec![2, 8], 1.0)]).unwrap();
        let work = extract_work(&engine, &trace);
        assert_eq!(work.len(), 1);
        assert_eq!(work[0].macs, 2 * 4 * 8);
        assert_eq!(work[0].input_elems, 16);
        assert_eq!(work[0].weight_elems, 32);
        assert_eq!(work[0].output_elems, 8);
    }
}
