//! # fidelity-accel
//!
//! High-level accelerator architecture models for the FIdelity
//! resilience-analysis framework: the flip-flop taxonomy and census of the
//! paper's Table II ([`ff`]), dataflow descriptions that generate the inputs
//! of Reuse Factor Analysis ([`dataflow`]), whole-design configuration
//! ([`arch`]), the analytical performance model behind Class-3 activeness
//! ([`perf`]), and ready-made NVDLA-like / Eyeriss-like presets
//! ([`presets`]).
//!
//! Everything here is deliberately *RTL-free*: the paper's point is that
//! these few facts — obtainable from block diagrams and architectural
//! descriptions — suffice for accurate fault models.
//!
//! ## Example
//!
//! ```
//! use fidelity_accel::presets;
//!
//! let cfg = presets::nvdla_like();
//! cfg.validate().unwrap();
//! assert_eq!(cfg.dataflow.lanes(), 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod dataflow;
pub mod ff;
pub mod perf;
pub mod presets;

pub use arch::{AcceleratorConfig, DataflowKind, InactiveModel};
pub use dataflow::{EyerissDataflow, NeuronOffset, NvdlaDataflow, RfaInputs, UnitUse};
pub use ff::{FfCategory, FfCensus, PipelineStage, VarType};
pub use perf::{extract_work, LayerTiming, LayerWork};
