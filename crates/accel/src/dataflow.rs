//! Scheduling/reuse dataflow descriptions and Algorithm-1 input generators.
//!
//! Reuse Factor Analysis (Algorithm 1 of the paper, implemented in
//! `fidelity-core`) consumes a handful of microarchitectural facts about a
//! target FF: how many cycles it holds a value, which compute units consume
//! the value on each of those cycles, for how long, and which output neurons
//! (in relative coordinates) each consuming unit produces. This module
//! defines that input vocabulary and generates it for two dataflow families:
//!
//! * [`NvdlaDataflow`] — the paper's Fig. 2(a): `lanes` parallel MAC units
//!   sharing a broadcast input, each holding its weight for
//!   `weight_hold` cycles (NVDLA-like; the validation target), and
//! * [`EyerissDataflow`] — Fig. 2(b): a `k×k` row-stationary systolic array.
//!
//! The worked examples a1–a4 and b1–b3 from Fig. 2 are provided verbatim so
//! the Algorithm-1 implementation can be checked against every reuse factor
//! the paper derives by hand (t, 1..t, 1, k², k, k·t, 1).

use crate::ff::{FfCategory, PipelineStage, VarType};

/// Which [`NeuronOffset`] axis a dataflow's *temporal* operand reuse walks:
/// the position dimension of an operand-register fault window maps to
/// consecutive offsets along this axis (the channel dimension always maps to
/// the channel axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReuseAxis {
    /// Row-major scan positions (NVDLA-like weight-stationary holds).
    Width,
    /// PE rows of a systolic column (Eyeriss-like arrays).
    Height,
}

/// Relative output-neuron coordinate `(batch, height, width, channel)`, as
/// used by Algorithm 1. The reference neuron is `(0, 0, 0, 0)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NeuronOffset {
    /// Batch offset.
    pub batch: i32,
    /// Height offset.
    pub height: i32,
    /// Width offset (also used as "position in row-major scan" for 1-D
    /// windows).
    pub width: i32,
    /// Channel offset.
    pub channel: i32,
}

impl NeuronOffset {
    /// Convenience constructor.
    pub const fn new(batch: i32, height: i32, width: i32, channel: i32) -> Self {
        NeuronOffset {
            batch,
            height,
            width,
            channel,
        }
    }
}

/// One compute unit's consumption of the target FF's value at a given loop:
/// Algorithm 1's `in_effect_cycles(m)` and `neurons(m)_{y,l}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitUse {
    /// Compute-unit identifier `m` (a label; uniqueness matters only for
    /// documentation).
    pub unit: usize,
    /// Number of cycles the single-cycle faulty value stays in effect at
    /// this unit.
    pub in_effect_cycles: usize,
    /// `neurons[y]` — the relative neuron indices computed in the `y`-th
    /// effect cycle. Must have `in_effect_cycles` entries.
    pub neurons: Vec<Vec<NeuronOffset>>,
}

/// The complete input bundle of Algorithm 1 for one target FF.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RfaInputs {
    /// Human-readable description of the target FF (for reports).
    pub target: String,
    /// `FF_value_cycles` — maximum cycles the FF holds one value.
    pub ff_value_cycles: usize,
    /// `loops[l]` — the compute units `M_l` using the value at loop `l`.
    /// Must have `ff_value_cycles` entries.
    pub loops: Vec<Vec<UnitUse>>,
}

impl RfaInputs {
    /// Checks the structural invariants (loop count, per-unit cycle counts).
    pub fn is_well_formed(&self) -> bool {
        self.ff_value_cycles > 0
            && self.loops.len() == self.ff_value_cycles
            && self.loops.iter().all(|units| {
                units
                    .iter()
                    .all(|u| u.neurons.len() == u.in_effect_cycles && u.in_effect_cycles > 0)
            })
    }
}

/// The NVDLA-like dataflow of Fig. 2(a): `lanes` MAC units compute the same
/// spatial position of `lanes` consecutive output channels in parallel; a
/// broadcast input feeds all of them each cycle; each MAC holds its weight
/// for `weight_hold` consecutive operations (row-major over the output
/// plane).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvdlaDataflow {
    /// Number of parallel MAC units (`k²` in the paper's example; 16 for the
    /// validated NVDLA configuration).
    pub lanes: usize,
    /// Weight-stationary hold length in operations (`t`; 16 for NVDLA).
    pub weight_hold: usize,
}

impl NvdlaDataflow {
    /// The configuration the paper validates (`k = 4`, `t = 16`).
    pub fn paper_config() -> Self {
        NvdlaDataflow {
            lanes: 16,
            weight_hold: 16,
        }
    }

    /// Fig. 2(a) target `a1`: a weight FF one stage upstream of the operand
    /// register. Its value reaches one multiplier and stays in effect for
    /// `weight_hold` cycles. Expected RF = `weight_hold`.
    pub fn example_a1(&self) -> RfaInputs {
        RfaInputs {
            target: "a1: weight FF upstream of operand register".into(),
            ff_value_cycles: 1,
            loops: vec![vec![UnitUse {
                unit: 0,
                in_effect_cycles: self.weight_hold,
                neurons: (0..self.weight_hold)
                    .map(|y| vec![NeuronOffset::new(0, 0, y as i32, 0)])
                    .collect(),
            }]],
        }
    }

    /// Fig. 2(a) target `a2`: the weight operand register itself, holding
    /// its value for `weight_hold` cycles, feeding one multiplier per cycle.
    /// Expected RF = `weight_hold`, with a random fault cycle truncating the
    /// affected window (1..=weight_hold faulty neurons).
    pub fn example_a2(&self) -> RfaInputs {
        RfaInputs {
            target: "a2: weight operand register (weight-stationary)".into(),
            ff_value_cycles: self.weight_hold,
            loops: (0..self.weight_hold)
                .map(|l| {
                    vec![UnitUse {
                        unit: 0,
                        in_effect_cycles: 1,
                        neurons: vec![vec![NeuronOffset::new(0, 0, l as i32, 0)]],
                    }]
                })
                .collect(),
        }
    }

    /// Fig. 2(a) target `a3`: a single-cycle weight pipeline register.
    /// Expected RF = 1.
    pub fn example_a3(&self) -> RfaInputs {
        RfaInputs {
            target: "a3: single-cycle weight pipeline register".into(),
            ff_value_cycles: 1,
            loops: vec![vec![UnitUse {
                unit: 0,
                in_effect_cycles: 1,
                neurons: vec![vec![NeuronOffset::new(0, 0, 0, 0)]],
            }]],
        }
    }

    /// Fig. 2(a) target `a4`: the broadcast input register feeding all
    /// `lanes` multipliers in one cycle. Expected RF = `lanes`, spanning
    /// `lanes` consecutive output channels at the same spatial position.
    pub fn example_a4(&self) -> RfaInputs {
        RfaInputs {
            target: "a4: broadcast input operand register".into(),
            ff_value_cycles: 1,
            loops: vec![(0..self.lanes)
                .map(|m| UnitUse {
                    unit: m,
                    in_effect_cycles: 1,
                    neurons: vec![vec![NeuronOffset::new(0, 0, 0, m as i32)]],
                })
                .collect()],
        }
    }

    /// RFA inputs for the buffer-to-MAC *input* FF category of Table II
    /// (same shape as `a4`).
    pub fn input_operand_rfa(&self) -> RfaInputs {
        let mut r = self.example_a4();
        r.target = "buffer-to-MAC input FF".into();
        r
    }

    /// RFA inputs for the buffer-to-MAC *weight* FF category of Table II
    /// (same shape as `a2`).
    pub fn weight_operand_rfa(&self) -> RfaInputs {
        let mut r = self.example_a2();
        r.target = "buffer-to-MAC weight FF".into();
        r
    }

    /// RFA inputs for output / partial-sum FFs (Table I row 3: RF = 1).
    pub fn output_rfa(&self) -> RfaInputs {
        let mut r = self.example_a3();
        r.target = "output / partial-sum FF".into();
        r
    }

    /// The canonical Algorithm-1 input bundle for a Table-II FF category, or
    /// `None` when the category's faulty-neuron set is not a fixed dataflow
    /// window (before-buffer faults corrupt a stored value whose use set is
    /// data-dependent; control faults couple to whole datapath groups).
    ///
    /// This is the hook the static fault-model verifier uses to re-derive
    /// each Table-II recipe independently of `model_for`.
    pub fn rfa_inputs_for(&self, cat: FfCategory) -> Option<RfaInputs> {
        match cat {
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Input,
            } => Some(self.input_operand_rfa()),
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight | VarType::Bias,
            } => Some(self.weight_operand_rfa()),
            FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::Output | VarType::PartialSum | VarType::Bias,
            } => Some(self.output_rfa()),
            _ => None,
        }
    }
}

/// The Eyeriss-like row-stationary systolic dataflow of Fig. 2(b): a `k×k`
/// MAC array where weights travel across columns, inputs travel diagonally,
/// and each MAC additionally reuses an input across `channel_reuse`
/// consecutive output channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EyerissDataflow {
    /// Array dimension.
    pub k: usize,
    /// Temporal input reuse across output channels (`t` in Fig. 2(b)).
    pub channel_reuse: usize,
}

impl EyerissDataflow {
    /// Fig. 2(b) target `b1`: a weight FF whose value is passed to the
    /// neighbouring column each cycle, reaching `k` MAC units. Expected
    /// RF = `k`; faulty neurons occupy `k` consecutive rows of one column.
    pub fn example_b1(&self) -> RfaInputs {
        RfaInputs {
            target: "b1: systolic weight FF (column-travelling)".into(),
            ff_value_cycles: 1,
            loops: vec![(0..self.k)
                .map(|m| UnitUse {
                    unit: m,
                    in_effect_cycles: 1,
                    neurons: vec![vec![NeuronOffset::new(0, m as i32, 0, 0)]],
                })
                .collect()],
        }
    }

    /// Fig. 2(b) target `b2`: an input FF reused diagonally by `k` MAC
    /// units, each of which reuses it across `channel_reuse` output
    /// channels. Expected RF = `k · channel_reuse`.
    pub fn example_b2(&self) -> RfaInputs {
        RfaInputs {
            target: "b2: systolic input FF (diagonal + channel reuse)".into(),
            ff_value_cycles: 1,
            loops: vec![(0..self.k)
                .map(|m| UnitUse {
                    unit: m,
                    in_effect_cycles: self.channel_reuse,
                    neurons: (0..self.channel_reuse)
                        .map(|y| vec![NeuronOffset::new(0, m as i32, 0, y as i32)])
                        .collect(),
                })
                .collect()],
        }
    }

    /// RFA inputs for the *private-input* row-stationary variant realized by
    /// `fidelity-rtl`'s systolic engine: each PE holds its input operand for
    /// `channel_reuse` consecutive output channels but does not forward it
    /// diagonally. Expected RF = `channel_reuse`.
    pub fn private_input_rfa(&self) -> RfaInputs {
        RfaInputs {
            target: "systolic input operand (private, channel-reused)".into(),
            ff_value_cycles: self.channel_reuse,
            loops: (0..self.channel_reuse)
                .map(|l| {
                    vec![UnitUse {
                        unit: 0,
                        in_effect_cycles: 1,
                        neurons: vec![vec![NeuronOffset::new(0, 0, 0, l as i32)]],
                    }]
                })
                .collect(),
        }
    }

    /// RFA inputs for the broadcast weight operand register of the systolic
    /// engine: one value reaches all `k` PE rows in a single cycle.
    /// Expected RF = `k`.
    pub fn weight_broadcast_rfa(&self) -> RfaInputs {
        RfaInputs {
            target: "systolic weight operand (broadcast across PE rows)".into(),
            ff_value_cycles: 1,
            loops: vec![(0..self.k)
                .map(|m| UnitUse {
                    unit: m,
                    in_effect_cycles: 1,
                    neurons: vec![vec![NeuronOffset::new(0, m as i32, 0, 0)]],
                })
                .collect()],
        }
    }

    /// Fig. 2(b) target `b3`: a bias FF connected to a single bias adder
    /// with no temporal reuse. Expected RF = 1.
    pub fn example_b3(&self) -> RfaInputs {
        RfaInputs {
            target: "b3: bias FF at bias adder".into(),
            ff_value_cycles: 1,
            loops: vec![vec![UnitUse {
                unit: 0,
                in_effect_cycles: 1,
                neurons: vec![vec![NeuronOffset::new(0, 0, 0, 0)]],
            }]],
        }
    }

    /// The time-resolved Algorithm-1 view of the column-travelling weight of
    /// `b1`: the value hops one PE row per cycle, so value cycle `l` is in
    /// effect exactly at row `l`. RF is still `k`, but a random fault cycle
    /// `p` now truncates the affected rows to the suffix `p..k` — the chain
    /// stage hit by the flip and everything downstream of it. This is the
    /// per-category derivation the Table-II weight-operand recipe (with its
    /// random position suffix) must match.
    pub fn weight_chain_rfa(&self) -> RfaInputs {
        RfaInputs {
            target: "buffer-to-MAC weight FF (column-travelling chain)".into(),
            ff_value_cycles: self.k,
            loops: (0..self.k)
                .map(|l| {
                    vec![UnitUse {
                        unit: l,
                        in_effect_cycles: 1,
                        neurons: vec![vec![NeuronOffset::new(0, l as i32, 0, 0)]],
                    }]
                })
                .collect(),
        }
    }

    /// RFA inputs for output / partial-sum FFs (RF = 1, same shape as `b3`).
    pub fn output_rfa(&self) -> RfaInputs {
        let mut r = self.example_b3();
        r.target = "output / partial-sum FF".into();
        r
    }

    /// The canonical Algorithm-1 input bundle for a Table-II FF category
    /// under the Fig. 2(b) row-stationary dataflow (see
    /// [`NvdlaDataflow::rfa_inputs_for`] for the contract).
    pub fn rfa_inputs_for(&self, cat: FfCategory) -> Option<RfaInputs> {
        match cat {
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Input,
            } => Some(self.example_b2()),
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight | VarType::Bias,
            } => Some(self.weight_chain_rfa()),
            FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::Output | VarType::PartialSum | VarType::Bias,
            } => Some(self.output_rfa()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvdla_examples_are_well_formed() {
        let df = NvdlaDataflow::paper_config();
        for inputs in [
            df.example_a1(),
            df.example_a2(),
            df.example_a3(),
            df.example_a4(),
            df.input_operand_rfa(),
            df.weight_operand_rfa(),
            df.output_rfa(),
        ] {
            assert!(inputs.is_well_formed(), "{} malformed", inputs.target);
        }
    }

    #[test]
    fn eyeriss_examples_are_well_formed() {
        let df = EyerissDataflow {
            k: 5,
            channel_reuse: 3,
        };
        for inputs in [df.example_b1(), df.example_b2(), df.example_b3()] {
            assert!(inputs.is_well_formed(), "{} malformed", inputs.target);
        }
    }

    #[test]
    fn a4_spans_lanes_channels() {
        let df = NvdlaDataflow {
            lanes: 4,
            weight_hold: 8,
        };
        let inputs = df.example_a4();
        assert_eq!(inputs.loops[0].len(), 4);
        let chans: Vec<i32> = inputs.loops[0]
            .iter()
            .map(|u| u.neurons[0][0].channel)
            .collect();
        assert_eq!(chans, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_category_hooks_cover_windowed_categories() {
        use crate::ff::{FfCategory, PipelineStage, VarType};
        let nv = NvdlaDataflow::paper_config();
        let ey = EyerissDataflow {
            k: 6,
            channel_reuse: 4,
        };
        for cat in FfCategory::enumerate() {
            let windowed = matches!(
                cat,
                FfCategory::Datapath {
                    stage: PipelineStage::BufferToMac,
                    var: VarType::Input | VarType::Weight | VarType::Bias,
                } | FfCategory::Datapath {
                    stage: PipelineStage::AfterMac,
                    var: VarType::Output | VarType::PartialSum | VarType::Bias,
                }
            );
            assert_eq!(nv.rfa_inputs_for(cat).is_some(), windowed, "nvdla {cat}");
            assert_eq!(ey.rfa_inputs_for(cat).is_some(), windowed, "eyeriss {cat}");
            if let Some(inputs) = nv.rfa_inputs_for(cat) {
                assert!(inputs.is_well_formed(), "nvdla {cat} malformed");
            }
            if let Some(inputs) = ey.rfa_inputs_for(cat) {
                assert!(inputs.is_well_formed(), "eyeriss {cat} malformed");
            }
        }
    }

    #[test]
    fn weight_chain_is_time_resolved_b1() {
        let df = EyerissDataflow {
            k: 5,
            channel_reuse: 3,
        };
        let chain = df.weight_chain_rfa();
        assert!(chain.is_well_formed());
        assert_eq!(chain.ff_value_cycles, 5);
        // One PE row per value cycle, same total footprint as b1.
        for (l, units) in chain.loops.iter().enumerate() {
            assert_eq!(units.len(), 1);
            assert_eq!(units[0].neurons[0][0].height, l as i32);
        }
    }

    #[test]
    fn malformed_inputs_detected() {
        let bad = RfaInputs {
            target: "bad".into(),
            ff_value_cycles: 2,
            loops: vec![vec![]], // only one loop entry
        };
        assert!(!bad.is_well_formed());
        let bad2 = RfaInputs {
            target: "bad2".into(),
            ff_value_cycles: 1,
            loops: vec![vec![UnitUse {
                unit: 0,
                in_effect_cycles: 2,
                neurons: vec![vec![]], // 1 != 2
            }]],
        };
        assert!(!bad2.is_well_formed());
    }
}
