//! Flip-flop taxonomy and census.
//!
//! The paper partitions an accelerator's FFs by *pipeline position* and
//! *variable type* (Sec. III-B), plus the two control classes (Sec. III-B3).
//! A census records what fraction of all FFs falls in each category — the
//! `%FF` column of Table II — which Eq. 2 weighs the per-category masking
//! probabilities with.

use std::fmt;

/// Pipeline position of a datapath FF (Table I rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PipelineStage {
    /// Before the (first-level) on-chip buffer; a fault manifests as one
    /// incorrect value stored in memory.
    BeforeBuffer,
    /// Between the L1 buffer and the MAC units, or inside the MAC units.
    BufferToMac,
    /// Inside or after the MAC units (accumulators, output registers).
    AfterMac,
}

/// Variable type a datapath FF holds (Accelerator Property 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarType {
    /// Activation / feature-map values.
    Input,
    /// Weight values.
    Weight,
    /// Bias values.
    Bias,
    /// Partial accumulations.
    PartialSum,
    /// Completed output neuron values.
    Output,
}

impl fmt::Display for VarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VarType::Input => "input",
            VarType::Weight => "weight",
            VarType::Bias => "bias",
            VarType::PartialSum => "partial sum",
            VarType::Output => "output",
        };
        f.write_str(s)
    }
}

/// Full FF category: the rows of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FfCategory {
    /// A datapath FF at `stage` holding a `var` value.
    Datapath {
        /// Pipeline position.
        stage: PipelineStage,
        /// Variable type held.
        var: VarType,
    },
    /// Control coupled to a deterministic set of datapath FFs (valid bits,
    /// mux selects).
    LocalControl,
    /// Layer-wide configuration and sequencing control (sizes, base
    /// addresses, precision selectors, address counters).
    GlobalControl,
}

impl fmt::Display for FfCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfCategory::Datapath { stage, var } => {
                let stage_s = match stage {
                    PipelineStage::BeforeBuffer => "before buffer",
                    PipelineStage::BufferToMac => "buffer-to-MAC",
                    PipelineStage::AfterMac => "after MAC",
                };
                write!(f, "datapath {var} ({stage_s})")
            }
            FfCategory::LocalControl => f.write_str("local control"),
            FfCategory::GlobalControl => f.write_str("global control"),
        }
    }
}

/// Error for an inconsistent FF census.
#[derive(Debug, Clone, PartialEq)]
pub struct CensusError {
    message: String,
}

impl fmt::Display for CensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ff census: {}", self.message)
    }
}

impl std::error::Error for CensusError {}

/// Fraction of an accelerator's FFs falling in each category (`%FF` of
/// Table II). Fractions must be non-negative and sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FfCensus {
    entries: Vec<(FfCategory, f64)>,
}

impl FfCensus {
    /// Builds a census, validating the fractions.
    ///
    /// # Errors
    ///
    /// Returns [`CensusError`] when a fraction is negative/non-finite, a
    /// category repeats, or the sum deviates from 1 by more than `1e-6`.
    pub fn new(entries: Vec<(FfCategory, f64)>) -> Result<Self, CensusError> {
        let mut sum = 0.0;
        for (i, (cat, frac)) in entries.iter().enumerate() {
            if !frac.is_finite() || *frac < 0.0 {
                return Err(CensusError {
                    message: format!("fraction for {cat} is {frac}"),
                });
            }
            if entries[..i].iter().any(|(c, _)| c == cat) {
                return Err(CensusError {
                    message: format!("category {cat} appears twice"),
                });
            }
            sum += frac;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(CensusError {
                message: format!("fractions sum to {sum}, expected 1.0"),
            });
        }
        Ok(FfCensus { entries })
    }

    /// Iterates over `(category, fraction)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (FfCategory, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Fraction of FFs in `cat` (0.0 when absent).
    pub fn fraction(&self, cat: FfCategory) -> f64 {
        self.entries
            .iter()
            .find(|(c, _)| *c == cat)
            .map_or(0.0, |(_, f)| *f)
    }

    /// Number of distinct categories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the census is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(stage: PipelineStage, var: VarType) -> FfCategory {
        FfCategory::Datapath { stage, var }
    }

    #[test]
    fn census_validates_sum() {
        assert!(FfCensus::new(vec![
            (FfCategory::LocalControl, 0.5),
            (FfCategory::GlobalControl, 0.4),
        ])
        .is_err());
        assert!(FfCensus::new(vec![
            (FfCategory::LocalControl, 0.5),
            (FfCategory::GlobalControl, 0.5),
        ])
        .is_ok());
    }

    #[test]
    fn census_rejects_duplicates_and_negatives() {
        assert!(FfCensus::new(vec![
            (FfCategory::LocalControl, 1.5),
            (FfCategory::LocalControl, -0.5),
        ])
        .is_err());
        assert!(FfCensus::new(vec![(FfCategory::GlobalControl, -1.0)]).is_err());
    }

    #[test]
    fn fraction_lookup() {
        let census = FfCensus::new(vec![
            (dp(PipelineStage::BeforeBuffer, VarType::Input), 0.3),
            (FfCategory::GlobalControl, 0.7),
        ])
        .unwrap();
        assert_eq!(
            census.fraction(dp(PipelineStage::BeforeBuffer, VarType::Input)),
            0.3
        );
        assert_eq!(census.fraction(FfCategory::LocalControl), 0.0);
    }

    #[test]
    fn display_is_readable() {
        let cat = dp(PipelineStage::BufferToMac, VarType::Weight);
        assert_eq!(cat.to_string(), "datapath weight (buffer-to-MAC)");
    }
}
