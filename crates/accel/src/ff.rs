//! Flip-flop taxonomy and census.
//!
//! The paper partitions an accelerator's FFs by *pipeline position* and
//! *variable type* (Sec. III-B), plus the two control classes (Sec. III-B3).
//! A census records what fraction of all FFs falls in each category — the
//! `%FF` column of Table II — which Eq. 2 weighs the per-category masking
//! probabilities with.

use std::fmt;

/// Pipeline position of a datapath FF (Table I rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PipelineStage {
    /// Before the (first-level) on-chip buffer; a fault manifests as one
    /// incorrect value stored in memory.
    BeforeBuffer,
    /// Between the L1 buffer and the MAC units, or inside the MAC units.
    BufferToMac,
    /// Inside or after the MAC units (accumulators, output registers).
    AfterMac,
}

impl PipelineStage {
    /// Every pipeline stage, in dataflow order.
    pub const ALL: [PipelineStage; 3] = [
        PipelineStage::BeforeBuffer,
        PipelineStage::BufferToMac,
        PipelineStage::AfterMac,
    ];
}

/// Variable type a datapath FF holds (Accelerator Property 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarType {
    /// Activation / feature-map values.
    Input,
    /// Weight values.
    Weight,
    /// Bias values.
    Bias,
    /// Partial accumulations.
    PartialSum,
    /// Completed output neuron values.
    Output,
}

impl VarType {
    /// Every variable type.
    pub const ALL: [VarType; 5] = [
        VarType::Input,
        VarType::Weight,
        VarType::Bias,
        VarType::PartialSum,
        VarType::Output,
    ];
}

impl fmt::Display for VarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VarType::Input => "input",
            VarType::Weight => "weight",
            VarType::Bias => "bias",
            VarType::PartialSum => "partial sum",
            VarType::Output => "output",
        };
        f.write_str(s)
    }
}

/// Full FF category: the rows of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FfCategory {
    /// A datapath FF at `stage` holding a `var` value.
    Datapath {
        /// Pipeline position.
        stage: PipelineStage,
        /// Variable type held.
        var: VarType,
    },
    /// Control coupled to a deterministic set of datapath FFs (valid bits,
    /// mux selects).
    LocalControl,
    /// Layer-wide configuration and sequencing control (sizes, base
    /// addresses, precision selectors, address counters).
    GlobalControl,
}

impl FfCategory {
    /// Enumerates the full finite category domain: every
    /// `stage × var` datapath combination plus the two control classes
    /// (3 · 5 + 2 = 17 categories). Static analyses iterate this set to
    /// prove totality of per-category derivations.
    pub fn enumerate() -> impl Iterator<Item = FfCategory> {
        PipelineStage::ALL
            .into_iter()
            .flat_map(|stage| {
                VarType::ALL
                    .into_iter()
                    .map(move |var| FfCategory::Datapath { stage, var })
            })
            .chain([FfCategory::LocalControl, FfCategory::GlobalControl])
    }

    /// The Table-II census row this category is counted under. The census
    /// merges bias storage with the weight path it rides on and partial
    /// sums with the output registers they become, so several fine-grained
    /// categories share one `%FF` row:
    ///
    /// * `Bias` at `BeforeBuffer`/`BufferToMac` → the `Weight` row,
    /// * `PartialSum`/`Bias` at `AfterMac` → the `Output` row,
    /// * everything else maps to itself.
    pub fn census_category(self) -> FfCategory {
        match self {
            FfCategory::Datapath {
                stage: stage @ (PipelineStage::BeforeBuffer | PipelineStage::BufferToMac),
                var: VarType::Bias,
            } => FfCategory::Datapath {
                stage,
                var: VarType::Weight,
            },
            FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::PartialSum | VarType::Bias,
            } => FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::Output,
            },
            other => other,
        }
    }
}

impl fmt::Display for FfCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfCategory::Datapath { stage, var } => {
                let stage_s = match stage {
                    PipelineStage::BeforeBuffer => "before buffer",
                    PipelineStage::BufferToMac => "buffer-to-MAC",
                    PipelineStage::AfterMac => "after MAC",
                };
                write!(f, "datapath {var} ({stage_s})")
            }
            FfCategory::LocalControl => f.write_str("local control"),
            FfCategory::GlobalControl => f.write_str("global control"),
        }
    }
}

/// What made a census invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CensusErrorKind {
    /// A fraction was NaN or infinite.
    NonFiniteFraction,
    /// A fraction was negative.
    NegativeFraction,
    /// The same category appeared twice.
    DuplicateCategory,
    /// The fractions do not sum to 1 (within `1e-6`).
    BadSum,
}

/// Error for an inconsistent FF census.
#[derive(Debug, Clone, PartialEq)]
pub struct CensusError {
    kind: CensusErrorKind,
    message: String,
}

impl CensusError {
    /// Which invariant was violated.
    pub fn kind(&self) -> CensusErrorKind {
        self.kind
    }
}

impl fmt::Display for CensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ff census: {}", self.message)
    }
}

impl std::error::Error for CensusError {}

/// Fraction of an accelerator's FFs falling in each category (`%FF` of
/// Table II). Fractions must be non-negative and sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FfCensus {
    entries: Vec<(FfCategory, f64)>,
}

impl FfCensus {
    /// Builds a census, validating the fractions.
    ///
    /// # Errors
    ///
    /// Returns [`CensusError`] when a fraction is negative/non-finite, a
    /// category repeats, or the sum deviates from 1 by more than `1e-6`.
    pub fn new(entries: Vec<(FfCategory, f64)>) -> Result<Self, CensusError> {
        let mut sum = 0.0;
        for (i, (cat, frac)) in entries.iter().enumerate() {
            if !frac.is_finite() {
                return Err(CensusError {
                    kind: CensusErrorKind::NonFiniteFraction,
                    message: format!("fraction for {cat} is {frac}"),
                });
            }
            if *frac < 0.0 {
                return Err(CensusError {
                    kind: CensusErrorKind::NegativeFraction,
                    message: format!("fraction for {cat} is {frac}"),
                });
            }
            if entries[..i].iter().any(|(c, _)| c == cat) {
                return Err(CensusError {
                    kind: CensusErrorKind::DuplicateCategory,
                    message: format!("category {cat} appears twice"),
                });
            }
            sum += frac;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(CensusError {
                kind: CensusErrorKind::BadSum,
                message: format!("fractions sum to {sum}, expected 1.0"),
            });
        }
        Ok(FfCensus { entries })
    }

    /// Iterates over `(category, fraction)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (FfCategory, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Fraction of FFs in `cat` (0.0 when absent).
    pub fn fraction(&self, cat: FfCategory) -> f64 {
        self.entries
            .iter()
            .find(|(c, _)| *c == cat)
            .map_or(0.0, |(_, f)| *f)
    }

    /// Number of distinct categories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the census is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(stage: PipelineStage, var: VarType) -> FfCategory {
        FfCategory::Datapath { stage, var }
    }

    #[test]
    fn census_validates_sum() {
        assert!(FfCensus::new(vec![
            (FfCategory::LocalControl, 0.5),
            (FfCategory::GlobalControl, 0.4),
        ])
        .is_err());
        assert!(FfCensus::new(vec![
            (FfCategory::LocalControl, 0.5),
            (FfCategory::GlobalControl, 0.5),
        ])
        .is_ok());
    }

    #[test]
    fn census_rejects_duplicates_and_negatives() {
        assert!(FfCensus::new(vec![
            (FfCategory::LocalControl, 1.5),
            (FfCategory::LocalControl, -0.5),
        ])
        .is_err());
        assert!(FfCensus::new(vec![(FfCategory::GlobalControl, -1.0)]).is_err());
    }

    #[test]
    fn fraction_lookup() {
        let census = FfCensus::new(vec![
            (dp(PipelineStage::BeforeBuffer, VarType::Input), 0.3),
            (FfCategory::GlobalControl, 0.7),
        ])
        .unwrap();
        assert_eq!(
            census.fraction(dp(PipelineStage::BeforeBuffer, VarType::Input)),
            0.3
        );
        assert_eq!(census.fraction(FfCategory::LocalControl), 0.0);
    }

    #[test]
    fn display_is_readable() {
        let cat = dp(PipelineStage::BufferToMac, VarType::Weight);
        assert_eq!(cat.to_string(), "datapath weight (buffer-to-MAC)");
    }

    #[test]
    fn enumerate_covers_the_full_domain() {
        let all: Vec<FfCategory> = FfCategory::enumerate().collect();
        assert_eq!(all.len(), 3 * 5 + 2);
        // No duplicates.
        for (i, a) in all.iter().enumerate() {
            assert!(!all[..i].contains(a), "{a} enumerated twice");
        }
        assert!(all.contains(&FfCategory::LocalControl));
        assert!(all.contains(&FfCategory::GlobalControl));
        assert!(all.contains(&dp(PipelineStage::AfterMac, VarType::PartialSum)));
    }

    #[test]
    fn census_category_merges_into_table2_rows() {
        assert_eq!(
            dp(PipelineStage::AfterMac, VarType::PartialSum).census_category(),
            dp(PipelineStage::AfterMac, VarType::Output)
        );
        assert_eq!(
            dp(PipelineStage::BufferToMac, VarType::Bias).census_category(),
            dp(PipelineStage::BufferToMac, VarType::Weight)
        );
        assert_eq!(
            dp(PipelineStage::AfterMac, VarType::Bias).census_category(),
            dp(PipelineStage::AfterMac, VarType::Output)
        );
        // Fixed point: a census row maps to itself.
        for cat in FfCategory::enumerate() {
            let row = cat.census_category();
            assert_eq!(row.census_category(), row);
        }
    }

    #[test]
    fn census_error_kinds_are_distinguished() {
        let nan = FfCensus::new(vec![(FfCategory::LocalControl, f64::NAN)]).unwrap_err();
        assert_eq!(nan.kind(), CensusErrorKind::NonFiniteFraction);

        let inf = FfCensus::new(vec![(FfCategory::LocalControl, f64::INFINITY)]).unwrap_err();
        assert_eq!(inf.kind(), CensusErrorKind::NonFiniteFraction);

        let neg = FfCensus::new(vec![
            (FfCategory::LocalControl, 1.5),
            (FfCategory::GlobalControl, -0.5),
        ])
        .unwrap_err();
        assert_eq!(neg.kind(), CensusErrorKind::NegativeFraction);
        assert!(neg.to_string().contains("global control"));

        let dup = FfCensus::new(vec![
            (FfCategory::LocalControl, 0.5),
            (FfCategory::LocalControl, 0.5),
        ])
        .unwrap_err();
        assert_eq!(dup.kind(), CensusErrorKind::DuplicateCategory);

        let sum = FfCensus::new(vec![(FfCategory::LocalControl, 0.9)]).unwrap_err();
        assert_eq!(sum.kind(), CensusErrorKind::BadSum);
        assert!(sum.to_string().contains("0.9"));
    }
}
