//! Ready-made accelerator configurations.

use crate::arch::{AcceleratorConfig, DataflowKind, InactiveModel};
use crate::dataflow::{EyerissDataflow, NvdlaDataflow};
use crate::ff::{FfCategory, FfCensus, PipelineStage, VarType};

fn dp(stage: PipelineStage, var: VarType) -> FfCategory {
    FfCategory::Datapath { stage, var }
}

/// The NVDLA-like configuration the paper validates: 16 MAC lanes (`k = 4`),
/// 16-cycle weight hold (`t = 16`), single-level on-chip buffer, and the FF
/// census of Table II.
///
/// `total_ff_bits` is an estimate of the sequential state of an NVDLA-class
/// design (≈0.9 Mbit ≈ 0.11 MB of flip-flops), calibrated so the paper's
/// Eq.-2 magnitudes are reproduced (e.g. Yolo ≈ 9.5 FIT at the 10% metric
/// implies the global-control term `600 · MB · 11.3%` must stay below that);
/// like every input of the framework, it can be varied for sensitivity
/// analysis (see the `sensitivity_sweep` example).
pub fn nvdla_like() -> AcceleratorConfig {
    let census = FfCensus::new(vec![
        (dp(PipelineStage::BeforeBuffer, VarType::Input), 0.025),
        (dp(PipelineStage::BeforeBuffer, VarType::Weight), 0.048),
        (dp(PipelineStage::BufferToMac, VarType::Input), 0.162),
        (dp(PipelineStage::BufferToMac, VarType::Weight), 0.216),
        (dp(PipelineStage::AfterMac, VarType::Output), 0.379),
        (FfCategory::LocalControl, 0.057),
        (FfCategory::GlobalControl, 0.113),
    ])
    .expect("Table II census sums to 1");
    AcceleratorConfig {
        name: "nvdla-like".into(),
        dataflow: DataflowKind::Nvdla(NvdlaDataflow::paper_config()),
        total_ff_bits: 900_000,
        census,
        fetch_values_per_cycle: 8.0,
        post_values_per_cycle: 4.0,
        inactive: InactiveModel::default(),
    }
}

/// A scaled-down NVDLA-like design point (8 lanes, 8-cycle weight hold,
/// roughly half the sequential state) for design-space exploration: fewer
/// lanes mean smaller reuse factors (fewer neurons per fault) but also less
/// parallelism (longer exposure per layer).
pub fn nvdla_small_like() -> AcceleratorConfig {
    let mut cfg = nvdla_like();
    cfg.name = "nvdla-small-like".into();
    cfg.dataflow = DataflowKind::Nvdla(NvdlaDataflow {
        lanes: 8,
        weight_hold: 8,
    });
    cfg.total_ff_bits = 500_000;
    cfg.fetch_values_per_cycle = 4.0;
    cfg
}

/// A scaled-up NVDLA-like design point (32 lanes, 32-cycle weight hold,
/// about double the sequential state).
pub fn nvdla_large_like() -> AcceleratorConfig {
    let mut cfg = nvdla_like();
    cfg.name = "nvdla-large-like".into();
    cfg.dataflow = DataflowKind::Nvdla(NvdlaDataflow {
        lanes: 32,
        weight_hold: 32,
    });
    cfg.total_ff_bits = 1_800_000;
    cfg.fetch_values_per_cycle = 16.0;
    cfg
}

/// An Eyeriss-like row-stationary configuration used by the Fig. 2(b)
/// examples and the `custom_accelerator` example: a 12×12 PE array with
/// 16-channel input reuse and a plausible FF census.
pub fn eyeriss_like() -> AcceleratorConfig {
    let census = FfCensus::new(vec![
        (dp(PipelineStage::BeforeBuffer, VarType::Input), 0.030),
        (dp(PipelineStage::BeforeBuffer, VarType::Weight), 0.050),
        (dp(PipelineStage::BufferToMac, VarType::Input), 0.140),
        (dp(PipelineStage::BufferToMac, VarType::Weight), 0.200),
        (dp(PipelineStage::AfterMac, VarType::Output), 0.400),
        (FfCategory::LocalControl, 0.060),
        (FfCategory::GlobalControl, 0.120),
    ])
    .expect("census sums to 1");
    AcceleratorConfig {
        name: "eyeriss-like".into(),
        dataflow: DataflowKind::Eyeriss(EyerissDataflow {
            k: 12,
            channel_reuse: 16,
        }),
        total_ff_bits: 800_000,
        census,
        fetch_values_per_cycle: 6.0,
        post_values_per_cycle: 4.0,
        inactive: InactiveModel::default(),
    }
}

/// Every shipped preset, in documentation order. Static analyses iterate
/// this list so a newly added preset is verified without further wiring.
pub fn all() -> Vec<AcceleratorConfig> {
    vec![
        nvdla_like(),
        nvdla_small_like(),
        nvdla_large_like(),
        eyeriss_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate_and_have_unique_names() {
        let presets = all();
        assert_eq!(presets.len(), 4);
        for (i, cfg) in presets.iter().enumerate() {
            cfg.validate().unwrap();
            assert!(
                !presets[..i].iter().any(|p| p.name == cfg.name),
                "duplicate preset name {}",
                cfg.name
            );
        }
    }

    #[test]
    fn nvdla_census_matches_table2() {
        let cfg = nvdla_like();
        assert!((cfg.census.fraction(FfCategory::GlobalControl) - 0.113).abs() < 1e-12);
        assert!(
            (cfg.census
                .fraction(dp(PipelineStage::AfterMac, VarType::Output))
                - 0.379)
                .abs()
                < 1e-12
        );
        assert_eq!(cfg.census.len(), 7);
    }

    #[test]
    fn design_points_validate_and_scale() {
        let small = nvdla_small_like();
        let large = nvdla_large_like();
        small.validate().unwrap();
        large.validate().unwrap();
        assert!(small.total_ff_bits < nvdla_like().total_ff_bits);
        assert!(large.total_ff_bits > nvdla_like().total_ff_bits);
        assert_eq!(small.dataflow.lanes(), 8);
        assert_eq!(large.dataflow.lanes(), 32);
    }

    #[test]
    fn nvdla_geometry_matches_paper() {
        let cfg = nvdla_like();
        match cfg.dataflow {
            DataflowKind::Nvdla(d) => {
                assert_eq!(d.lanes, 16);
                assert_eq!(d.weight_hold, 16);
            }
            _ => panic!("expected NVDLA dataflow"),
        }
    }
}
