//! Whole-accelerator configuration.

use std::fmt;

use crate::dataflow::{EyerissDataflow, NvdlaDataflow, ReuseAxis, RfaInputs};
use crate::ff::{FfCategory, FfCensus};

/// Which dataflow family an accelerator implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataflowKind {
    /// NVDLA-like broadcast-input, weight-stationary MAC bank.
    Nvdla(NvdlaDataflow),
    /// Eyeriss-like row-stationary systolic array.
    Eyeriss(EyerissDataflow),
}

impl DataflowKind {
    /// Number of output neurons produced per cycle at full throughput.
    pub fn lanes(&self) -> usize {
        match self {
            DataflowKind::Nvdla(d) => d.lanes,
            DataflowKind::Eyeriss(d) => d.k * d.k,
        }
    }

    /// The canonical Algorithm-1 input bundle for a Table-II FF category, or
    /// `None` when the category has no fixed dataflow reuse window. See
    /// [`NvdlaDataflow::rfa_inputs_for`].
    pub fn rfa_inputs_for(&self, cat: FfCategory) -> Option<RfaInputs> {
        match self {
            DataflowKind::Nvdla(d) => d.rfa_inputs_for(cat),
            DataflowKind::Eyeriss(d) => d.rfa_inputs_for(cat),
        }
    }

    /// The neuron axis this dataflow's temporal operand reuse walks.
    pub fn reuse_axis(&self) -> ReuseAxis {
        match self {
            DataflowKind::Nvdla(_) => ReuseAxis::Width,
            DataflowKind::Eyeriss(_) => ReuseAxis::Height,
        }
    }
}

/// Fractions of FFs that are structurally inactive under certain workloads —
/// the Class 1 ("component not used") and Class 2 ("signal not used") inputs
/// of the paper's activeness analysis (Sec. III-D, Eq. 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InactiveModel {
    /// Fraction of *before-buffer* FFs belonging to the weight decompression
    /// unit, idle whenever weights are stored uncompressed (Class 1; all our
    /// workloads use uncompressed weights, matching the paper's example).
    pub decompression_frac: f64,
    /// Fraction of datapath FFs implementing floating-point-only logic,
    /// inactive for integer deployments (Class 2).
    pub fp_only_frac: f64,
    /// Fraction of datapath FFs implementing integer-only logic, inactive
    /// for floating-point deployments (Class 2).
    pub int_only_frac: f64,
}

impl Default for InactiveModel {
    fn default() -> Self {
        InactiveModel {
            decompression_frac: 0.10,
            fp_only_frac: 0.15,
            int_only_frac: 0.10,
        }
    }
}

/// Error for invalid accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid accelerator config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// High-level description of a DNN inference accelerator: everything the
/// FIdelity framework needs, and nothing that would require RTL.
///
/// All fields are the kind of information available from block diagrams,
/// architectural descriptions or prior design generations (and can be varied
/// for sensitivity analysis — see the `sensitivity_sweep` example).
#[derive(Clone, Debug, PartialEq)]
pub struct AcceleratorConfig {
    /// Design name.
    pub name: String,
    /// Dataflow family and geometry.
    pub dataflow: DataflowKind,
    /// Total number of flip-flops, in bits.
    pub total_ff_bits: u64,
    /// FF census per Table-II category.
    pub census: FfCensus,
    /// On-chip-buffer fill bandwidth in values per cycle (drives the fetch
    /// phase of the performance model).
    pub fetch_values_per_cycle: f64,
    /// Post-processing (bias/activation/pooling/writeback) throughput in
    /// values per cycle.
    pub post_values_per_cycle: f64,
    /// Class 1/2 inactive-FF fractions.
    pub inactive: InactiveModel,
}

impl AcceleratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on non-positive bandwidths, zero FF count, or
    /// out-of-range inactive fractions.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.total_ff_bits == 0 {
            return Err(ConfigError {
                message: "total_ff_bits must be positive".into(),
            });
        }
        if self.fetch_values_per_cycle <= 0.0 || self.post_values_per_cycle <= 0.0 {
            return Err(ConfigError {
                message: "bandwidths must be positive".into(),
            });
        }
        if self.dataflow.lanes() == 0 {
            return Err(ConfigError {
                message: "dataflow must have at least one lane".into(),
            });
        }
        if self.census.is_empty() {
            return Err(ConfigError {
                message: "ff census must not be empty".into(),
            });
        }
        for (label, v) in [
            ("decompression_frac", self.inactive.decompression_frac),
            ("fp_only_frac", self.inactive.fp_only_frac),
            ("int_only_frac", self.inactive.int_only_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError {
                    message: format!("{label} = {v} outside [0, 1]"),
                });
            }
        }
        Ok(())
    }

    /// FF storage in megabytes (the unit of the raw FIT rate constant:
    /// 600 FIT/MB in the paper, from 40nm flip-flop measurements).
    pub fn ff_megabytes(&self) -> f64 {
        self.total_ff_bits as f64 / 8.0 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn preset_validates() {
        presets::nvdla_like().validate().unwrap();
        presets::eyeriss_like().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut cfg = presets::nvdla_like();
        cfg.total_ff_bits = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = presets::nvdla_like();
        cfg.fetch_values_per_cycle = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = presets::nvdla_like();
        cfg.inactive.fp_only_frac = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ff_megabytes_conversion() {
        let mut cfg = presets::nvdla_like();
        cfg.total_ff_bits = 8 * 1024 * 1024;
        assert!((cfg.ff_megabytes() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lanes_from_dataflow() {
        assert_eq!(
            DataflowKind::Nvdla(NvdlaDataflow {
                lanes: 16,
                weight_hold: 16
            })
            .lanes(),
            16
        );
        assert_eq!(
            DataflowKind::Eyeriss(EyerissDataflow {
                k: 3,
                channel_reuse: 2
            })
            .lanes(),
            9
        );
    }
}
