//! `fidelity-par` — a hand-rolled work-stealing thread pool for
//! fault-injection campaigns.
//!
//! The build environment is offline (no crates.io), so this crate implements
//! the minimal scheduling substrate the campaign runner needs from scratch,
//! on `std` alone and without `unsafe`:
//!
//! * **Work stealing** — every worker owns a deque of task indices; it pops
//!   work from its own front (draining its shard in ascending index order,
//!   which keeps ordered-commit consumers moving) and, when empty, steals
//!   the back half of a randomly-probed victim. Long-running cells
//!   therefore never leave sibling workers idle, whatever the initial shard
//!   layout.
//! * **Exactly-once execution** — each task index is executed exactly once
//!   regardless of worker count, steal order, or panics in other tasks; the
//!   pool never loses or duplicates work.
//! * **Panic containment** — a panicking task is caught, counted, and its
//!   payload re-raised only after every other task has finished, so one
//!   poisoned cell cannot discard the rest of a campaign sweep.
//! * **No leaked threads** — workers are scoped (`std::thread::scope`); by
//!   construction every worker has exited when [`WorkStealPool::run`]
//!   returns.
//!
//! Determinism: the pool makes no ordering promises. Callers that need
//! bit-reproducible results (the campaign runner) must make each task a pure
//! function of its index — per-task derived RNG seeds, commutative shared
//! accounting — which is exactly the contract `fidelity-core` follows.
//! Victim probing is seeded ([`PoolSpec::seed`]) so even scheduling noise is
//! reproducible under a single-threaded victim pattern, but nothing in the
//! result may depend on it.

#![warn(missing_docs)]

mod cancel;
#[cfg(feature = "loom_model")]
pub mod modelcheck;
mod pool;

pub use cancel::CancelToken;
pub use pool::{run_indexed, PoolSpec, RunStats, ShardPlan, WorkStealPool};

/// Minimal xorshift64* generator for victim selection. Scheduling noise must
/// not come from ambient entropy (the workspace determinism lint forbids
/// it), so each worker derives its probe stream from the pool seed.
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point.
        XorShift64 { state: seed | 1 }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[cfg(test)]
mod tests {
    use super::XorShift64;

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 12, "poor variation: {xs:?}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = XorShift64::new(7);
        for _ in 0..100 {
            assert!(rng.below(5) < 5);
        }
    }
}
