//! Cooperative cancellation for pool runs and the campaigns built on them.
//!
//! A [`CancelToken`] is a cloneable flag shared between a supervisor (a
//! deadline monitor, a service handling `DELETE /campaigns/:id`, a graceful
//! shutdown path) and the workers it governs. Cancellation is cooperative:
//! nothing is interrupted mid-task, so a task that started before the flag
//! flipped runs to completion and commits its result — the property that
//! lets a cancelled campaign leave a clean checkpoint behind.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag. All clones observe the same state; once
/// cancelled, a token never resets.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested. One acquire load — cheap
    /// enough to poll from worker loops.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }
}
