//! Deterministic interleaving model of the work-stealing deque protocol.
//!
//! Re-expresses the [`crate::pool`] worker loop — owner pops the front of
//! its own deque, thieves take the back half of a victim's — against the
//! `loom` model types, so the scheduler in `loom::rt` can enumerate every
//! interleaving of lock acquisitions and atomic operations. The production
//! loop and this model share the same protocol decisions in the same order;
//! what the model omits is the task closure itself (replaced by a per-task
//! hit counter) and the seeded victim-probe shuffle (replaced by a fixed
//! probe order — the shuffle only permutes which victim is tried first, it
//! adds no new protocol states).
//!
//! Checked invariants, asserted after both workers join, in every explored
//! interleaving:
//!
//! - **exactly-once**: every task index is executed exactly once — no task
//!   is lost when a steal races the owner's pop, and none is duplicated
//!   when two thieves race the same victim;
//! - **termination accounting**: `remaining` reaches zero and every deque
//!   is empty when the last worker exits.
//!
//! The model's idle path is bounded (a worker that finds nothing to pop or
//! steal retries a few times, then exits) where the real loop spins until
//! `remaining == 0`; an unbounded spin has infinitely many schedules. The
//! early exit is safe for the invariants: a worker only idles when its own
//! deque is empty, and nobody ever pushes into another worker's deque, so
//! an early-exiting worker cannot strand work it owns.

use std::collections::VecDeque;

use loom::model::sync::atomic::{AtomicUsize, Ordering};
use loom::model::sync::{Arc, Mutex};
use loom::model::thread;

/// Shared run state, mirroring `pool::Shared` with model primitives.
///
/// `hits` is instrumentation, not protocol: no worker ever branches on it,
/// so it uses plain `std` atomics that are invisible to the scheduler.
/// Keeping non-protocol state out of the model is what makes the 2-worker
/// space exhaustible — every model operation is a scheduling point, and
/// the decision tree grows exponentially in their count.
struct Shared {
    queues: Vec<Mutex<VecDeque<usize>>>,
    remaining: AtomicUsize,
    hits: Vec<std::sync::atomic::AtomicUsize>,
}

fn execute(idx: usize, shared: &Shared) {
    shared.hits[idx].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    shared.remaining.fetch_sub(1, Ordering::Release);
}

/// One model worker: the protocol skeleton of `pool::worker_loop`.
fn worker(w: usize, shared: &Shared) {
    let nworkers = shared.queues.len();
    let mut idle = 0usize;
    loop {
        // Own work first, front-pop (ascending index order per shard).
        let own = shared.queues[w]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front();
        if let Some(idx) = own {
            execute(idx, shared);
            idle = 0;
            continue;
        }
        if shared.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        // Steal round: fixed probe order (the production seeded shuffle
        // only permutes victims). Take the back half, keep the first task,
        // bank the rest in our own deque.
        let mut got = None;
        for probe in 1..nworkers {
            let victim = (w + probe) % nworkers;
            let batch: Vec<usize> = {
                let mut q = shared.queues[victim]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let keep = q.len() / 2;
                q.split_off(keep).into_iter().collect()
            };
            if let Some((&first, rest)) = batch.split_first() {
                if !rest.is_empty() {
                    shared.queues[w]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(rest.iter().copied());
                }
                got = Some(first);
                break;
            }
        }
        match got {
            Some(idx) => {
                execute(idx, shared);
                idle = 0;
            }
            None => {
                if shared.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Bounded idle (model-only): see module docs.
                idle += 1;
                if idle > 1 {
                    break;
                }
                thread::yield_now();
            }
        }
    }
}

/// One model execution: `tasks` funneled onto worker 0 (maximum steal
/// pressure — every other worker can make progress only by stealing),
/// `workers` model threads, full invariant check after the join.
fn run_model(workers: usize, tasks: usize) {
    let shared = Arc::new(Shared {
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        remaining: AtomicUsize::new(tasks),
        hits: (0..tasks)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect(),
    });
    shared.queues[0]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .extend(0..tasks);
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker(w, &shared))
        })
        .collect();
    for h in handles {
        h.join().expect("model worker panicked");
    }
    for (idx, hit) in shared.hits.iter().enumerate() {
        let n = hit.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(
            n, 1,
            "task {idx} executed {n} times (exactly-once violated)"
        );
    }
    assert_eq!(shared.remaining.load(Ordering::Acquire), 0);
    for (w, q) in shared.queues.iter().enumerate() {
        let len = q
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        assert_eq!(len, 0, "worker {w} deque not drained");
    }
}

/// Exhaustively model-checks owner-pop vs thief-steal with 2 workers and 3
/// funneled tasks, under a 3-preemption bound. Unbounded, this scenario is
/// 2.5 M interleavings (~6 min of wall clock); every schedule with at most
/// three preemptions — which covers steal-vs-pop, steal-vs-steal-bank, and
/// exit-check races — is 3 061 schedules in well under a second. Panics on
/// the first interleaving that loses or duplicates a task; returns the
/// coverage report otherwise.
pub fn deque_exhaustive() -> loom::Report {
    loom::Builder {
        preemption_bound: Some(3),
        ..loom::Builder::default()
    }
    .check(|| run_model(2, 3))
}

/// Seeded random-walk check of the same protocol at 3 workers / 6 tasks —
/// a state space too large to exhaust in a CI-sized budget.
pub fn deque_random_walk(seed: u64, walks: usize) -> loom::Report {
    loom::Builder {
        max_executions: walks,
        seed: Some(seed),
        ..loom::Builder::default()
    }
    .check(|| run_model(3, 6))
}
