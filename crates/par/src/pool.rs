//! The work-stealing pool: sharding, worker loops, steal protocol.
//!
//! Deques are `Mutex<VecDeque<usize>>` — the workspace forbids `unsafe`, so
//! a lock-free Chase-Lev deque is off the table. Campaign tasks are
//! milliseconds each, which dwarfs an uncontended lock; the steal protocol
//! moves half a victim's queue per steal so lock traffic stays O(log n) per
//! worker, not O(n).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::{CancelToken, XorShift64};

/// How task indices are dealt onto worker deques before execution starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlan {
    /// Contiguous, evenly-sized shards — one per worker. The default: keeps
    /// index locality (adjacent campaign cells share a layer) and lets
    /// stealing correct any cost imbalance.
    Balanced,
    /// Blocks of the given size dealt round-robin across workers. Smaller
    /// blocks raise steal pressure; used by the concurrency stress tests.
    RoundRobin(usize),
    /// Every task starts on worker 0, so all other workers can make
    /// progress only by stealing — maximum steal pressure, used to prove
    /// the steal path end to end.
    Funnel,
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Worker threads. Clamped to `1..=tasks` at run time.
    pub workers: usize,
    /// Seed for the victim-probe streams (scheduling noise must be
    /// reproducible, never ambient).
    pub seed: u64,
    /// Initial task distribution.
    pub plan: ShardPlan,
    /// Cooperative cancellation. Once the token fires, queued tasks are
    /// drained without executing (counted in [`RunStats::skipped`]); tasks
    /// already executing run to completion. `None` never cancels.
    pub cancel: Option<CancelToken>,
}

impl PoolSpec {
    /// A balanced pool with the given worker count.
    pub fn new(workers: usize) -> Self {
        PoolSpec {
            workers,
            seed: 0x5EED_F1DE,
            plan: ShardPlan::Balanced,
            cancel: None,
        }
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// What a finished run did, aggregated over all workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Tasks executed (always equals the task count: exactly-once).
    pub executed: u64,
    /// Tasks that ran on a worker other than the one they were dealt to.
    pub stolen: u64,
    /// Tasks whose closure panicked (payload re-raised by [`WorkStealPool::run`]).
    pub panicked: u64,
    /// Tasks drained without executing because the run was cancelled.
    /// `executed + skipped` always equals the task count.
    pub skipped: u64,
    /// Workers that actually ran (after clamping).
    pub workers: usize,
}

/// A work-stealing thread pool executing indexed tasks.
///
/// The pool is configuration only; workers are spawned scoped inside each
/// [`WorkStealPool::run`] call and have all exited when it returns, so there
/// is nothing to shut down and no thread can leak.
#[derive(Debug, Clone)]
pub struct WorkStealPool {
    spec: PoolSpec,
}

/// Shared run state: per-worker deques plus the open-task count that drives
/// termination.
struct Shared {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Tasks not yet finished (queued or executing). Workers exit when this
    /// reaches zero; a non-empty queue guarantees it is non-zero, so no task
    /// can be stranded.
    remaining: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
    panicked: AtomicU64,
    skipped: AtomicU64,
    /// First panic payload, re-raised after the run drains.
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Locks, recovering from poisoning: the pool's own bookkeeping never
/// panics while holding a lock, and task panics are caught before any lock
/// is touched, so a poisoned mutex still holds consistent data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl WorkStealPool {
    /// A pool with the given spec.
    pub fn new(spec: PoolSpec) -> Self {
        WorkStealPool { spec }
    }

    /// Executes `f(0), f(1), …, f(tasks - 1)`, each exactly once, across the
    /// configured workers, and blocks until all have finished.
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic — after every other task has run, so
    /// callers that catch it still observe a fully-drained run.
    pub fn run<F>(&self, tasks: usize, f: F) -> RunStats
    where
        F: Fn(usize) + Sync,
    {
        let (stats, payload) = self.run_catching(tasks, f);
        if let Some(p) = payload {
            resume_unwind(p);
        }
        stats
    }

    /// Like [`WorkStealPool::run`], but returns the first panic payload
    /// instead of re-raising it. Used by callers (and the concurrency
    /// stress tests) that need the run statistics even on the panic path.
    pub fn run_catching<F>(
        &self,
        tasks: usize,
        f: F,
    ) -> (RunStats, Option<Box<dyn std::any::Any + Send>>)
    where
        F: Fn(usize) + Sync,
    {
        self.run_with_catching(tasks, |_| (), |(), idx| f(idx))
    }

    /// Like [`WorkStealPool::run`], but every worker owns a mutable state
    /// value built by `init(worker_index)` before its first task; each task
    /// the worker executes (own or stolen) receives `&mut` to that state.
    ///
    /// Worker state exists for allocation reuse only (e.g. one tensor
    /// workspace per campaign worker). Which tasks share a state value
    /// depends on scheduling, so state must never influence task results —
    /// the pool's determinism contract assumes exactly that.
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic, as [`WorkStealPool::run`] does. A
    /// panicking task may leave its worker's state partially updated; the
    /// state is still reused for subsequent tasks, which is sound only
    /// under the results-independence rule above.
    pub fn run_with<S, I, F>(&self, tasks: usize, init: I, f: F) -> RunStats
    where
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        let (stats, payload) = self.run_with_catching(tasks, init, f);
        if let Some(p) = payload {
            resume_unwind(p);
        }
        stats
    }

    /// [`WorkStealPool::run_with`] returning the first panic payload instead
    /// of re-raising it.
    pub fn run_with_catching<S, I, F>(
        &self,
        tasks: usize,
        init: I,
        f: F,
    ) -> (RunStats, Option<Box<dyn std::any::Any + Send>>)
    where
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        let workers = self.spec.workers.clamp(1, tasks.max(1));
        let shared = Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(tasks),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            payload: Mutex::new(None),
        };
        distribute(&shared, tasks, workers, self.spec.plan);
        if tasks > 0 {
            std::thread::scope(|s| {
                for w in 0..workers {
                    let shared = &shared;
                    let init = &init;
                    let f = &f;
                    let seed = self.spec.seed;
                    let cancel = self.spec.cancel.clone();
                    s.spawn(move || {
                        let mut state = init(w);
                        worker_loop(w, seed, cancel, shared, &mut state, f);
                    });
                }
            });
        }
        let stats = RunStats {
            executed: shared.executed.load(Ordering::Relaxed),
            stolen: shared.stolen.load(Ordering::Relaxed),
            panicked: shared.panicked.load(Ordering::Relaxed),
            skipped: shared.skipped.load(Ordering::Relaxed),
            workers,
        };
        let payload = lock(&shared.payload).take();
        (stats, payload)
    }
}

/// Convenience: run `tasks` over `workers` balanced workers.
pub fn run_indexed<F>(workers: usize, tasks: usize, f: F) -> RunStats
where
    F: Fn(usize) + Sync,
{
    WorkStealPool::new(PoolSpec::new(workers)).run(tasks, f)
}

/// Deals task indices onto the worker deques per the shard plan.
fn distribute(shared: &Shared, tasks: usize, workers: usize, plan: ShardPlan) {
    match plan {
        ShardPlan::Balanced => {
            // Contiguous shards; the first `tasks % workers` shards take the
            // extra task.
            let base = tasks / workers;
            let extra = tasks % workers;
            let mut next = 0usize;
            for w in 0..workers {
                let len = base + usize::from(w < extra);
                lock(&shared.queues[w]).extend(next..next + len);
                next += len;
            }
        }
        ShardPlan::RoundRobin(block) => {
            let block = block.max(1);
            let mut w = 0usize;
            let mut idx = 0usize;
            while idx < tasks {
                let end = (idx + block).min(tasks);
                lock(&shared.queues[w]).extend(idx..end);
                idx = end;
                w = (w + 1) % workers;
            }
        }
        ShardPlan::Funnel => {
            lock(&shared.queues[0]).extend(0..tasks);
        }
    }
}

fn worker_loop<S, F: Fn(&mut S, usize) + Sync>(
    w: usize,
    seed: u64,
    cancel: Option<CancelToken>,
    shared: &Shared,
    state: &mut S,
    f: &F,
) {
    let nworkers = shared.queues.len();
    let mut rng = XorShift64::new(seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    loop {
        // Cooperative cancellation: drain the local deque without executing,
        // then spin down once every in-flight task elsewhere has finished.
        // Each queue is drained by its owning worker, so no task is stranded
        // and `remaining` still reaches zero.
        if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            let drained: Vec<usize> = lock(&shared.queues[w]).drain(..).collect();
            for _ in &drained {
                shared.skipped.fetch_add(1, Ordering::Relaxed);
                shared.remaining.fetch_sub(1, Ordering::Release);
            }
            if shared.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        }
        // Own work first: pop the front of the local deque, so a worker
        // drains its shard in ascending index order. Consumers that commit
        // results in index order (the campaign's ordered checkpoint buffer)
        // rely on this: the single-worker schedule is exactly 0, 1, 2, …,
        // and under contention each shard still completes front-first.
        let own = lock(&shared.queues[w]).pop_front();
        if let Some(idx) = own {
            execute(idx, shared, state, f);
            continue;
        }
        if shared.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        // Steal round: probe victims from a seeded-random start so thieves
        // don't convoy on worker 0. Taking half the victim's back moves
        // O(queue) work per successful steal while leaving the victim the
        // low-indexed half it was about to commit.
        let mut got = None;
        if nworkers > 1 {
            let start = rng.below(nworkers as u64) as usize;
            for probe in 0..nworkers {
                let victim = (start + probe) % nworkers;
                if victim == w {
                    continue;
                }
                let batch = {
                    let mut q = lock(&shared.queues[victim]);
                    let keep = q.len() / 2;
                    q.split_off(keep).into_iter().collect::<Vec<usize>>()
                };
                if let Some((&first, rest)) = batch.split_first() {
                    shared
                        .stolen
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    if !rest.is_empty() {
                        lock(&shared.queues[w]).extend(rest.iter().copied());
                    }
                    got = Some(first);
                    break;
                }
            }
        }
        match got {
            Some(idx) => execute(idx, shared, state, f),
            None => {
                // Every queue looked empty but tasks are still executing on
                // other workers. Tasks never enqueue new work, so this tail
                // lasts at most one task's duration — yield, don't sleep.
                if shared.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::thread::yield_now();
            }
        }
    }
}

fn execute<S, F: Fn(&mut S, usize) + Sync>(idx: usize, shared: &Shared, state: &mut S, f: &F) {
    if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(state, idx))) {
        shared.panicked.fetch_add(1, Ordering::Relaxed);
        let mut slot = lock(&shared.payload);
        if slot.is_none() {
            *slot = Some(p);
        }
    }
    shared.executed.fetch_add(1, Ordering::Relaxed);
    // Release pairs with the Acquire in the exit check: a worker observing
    // zero sees every task's effects.
    shared.remaining.fetch_sub(1, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once_balanced() {
        let counts: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
        let stats = run_indexed(4, counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.executed, 257);
        assert_eq!(stats.panicked, 0);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn funnel_forces_steals() {
        let pool = WorkStealPool::new(PoolSpec {
            workers: 4,
            seed: 1,
            plan: ShardPlan::Funnel,
            cancel: None,
        });
        let counts: Vec<AtomicU32> = (0..512).map(|_| AtomicU32::new(0)).collect();
        // Make each task slow enough that worker 0 cannot drain the funnel
        // alone before the thief threads have even spawned.
        let stats = pool.run(counts.len(), |i| {
            for s in 0..20_000u64 {
                std::hint::black_box(s.wrapping_mul(i as u64));
            }
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.executed, 512);
        assert!(stats.stolen > 0, "funnel run must steal: {stats:?}");
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    /// A single worker must execute its shard in ascending index order —
    /// the campaign's ordered checkpoint commit depends on the serial
    /// schedule being exactly 0, 1, 2, … so an interrupted run leaves a
    /// deterministic prefix on disk.
    #[test]
    fn single_worker_runs_in_index_order() {
        let order = Mutex::new(Vec::new());
        for plan in [ShardPlan::Balanced, ShardPlan::Funnel] {
            lock(&order).clear();
            let pool = WorkStealPool::new(PoolSpec {
                workers: 1,
                seed: 5,
                plan,
                cancel: None,
            });
            pool.run(50, |i| lock(&order).push(i));
            assert_eq!(*lock(&order), (0..50).collect::<Vec<_>>(), "{plan:?}");
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let stats = run_indexed(8, 0, |_| panic!("must not run"));
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.panicked, 0);
    }

    /// Cancellation mid-run: every task is either executed or skipped
    /// (never lost, never both), and no task starts after the drain begins.
    #[test]
    fn cancel_drains_without_losing_tasks() {
        let token = CancelToken::new();
        let pool = WorkStealPool::new(PoolSpec {
            workers: 4,
            seed: 3,
            plan: ShardPlan::Balanced,
            cancel: Some(token.clone()),
        });
        let ran: Vec<AtomicU32> = (0..400).map(|_| AtomicU32::new(0)).collect();
        let stats = pool.run(ran.len(), |i| {
            if i == 5 {
                token.cancel();
            }
            // Slow tasks keep queues non-empty when the cancel lands.
            for s in 0..20_000u64 {
                std::hint::black_box(s.wrapping_mul(i as u64));
            }
            ran[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.executed + stats.skipped, 400, "{stats:?}");
        assert!(stats.skipped > 0, "cancel must skip queued work: {stats:?}");
        let executed: u64 = ran
            .iter()
            .map(|c| u64::from(c.load(Ordering::Relaxed)))
            .sum();
        assert_eq!(executed, stats.executed, "skipped tasks must not run");
        assert!(ran.iter().all(|c| c.load(Ordering::Relaxed) <= 1));
    }

    /// A token cancelled before the run starts skips everything.
    #[test]
    fn pre_cancelled_run_executes_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let pool = WorkStealPool::new(PoolSpec::new(4).with_cancel(token));
        let stats = pool.run(64, |_| panic!("must not run"));
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.skipped, 64);
    }

    #[test]
    fn workers_clamp_to_task_count() {
        let stats = run_indexed(64, 3, |_| {});
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.executed, 3);
    }

    #[test]
    fn panic_is_contained_then_reraised() {
        let counts: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let pool = WorkStealPool::new(PoolSpec::new(4));
        let (stats, payload) = pool.run_catching(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            if i == 17 {
                panic!("task 17 is poisoned");
            }
        });
        assert_eq!(stats.executed, 64, "panic must not lose tasks");
        assert_eq!(stats.panicked, 1);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        let text = payload
            .and_then(|p| p.downcast::<&str>().ok())
            .map(|s| *s)
            .unwrap_or_default();
        assert_eq!(text, "task 17 is poisoned");
    }

    #[test]
    fn run_reraises_the_payload() {
        let caught = catch_unwind(|| {
            run_indexed(2, 8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn run_with_builds_one_state_per_worker() {
        let pool = WorkStealPool::new(PoolSpec::new(4));
        let inits = AtomicU32::new(0);
        let done = AtomicU32::new(0);
        let stats = pool.run_with(
            128,
            |_w| {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |local, _idx| {
                *local += 1;
                done.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(stats.executed, 128);
        assert_eq!(done.load(Ordering::Relaxed), 128);
        // One state per spawned worker, built exactly once.
        assert_eq!(inits.load(Ordering::Relaxed) as usize, stats.workers);
    }

    #[test]
    fn round_robin_small_blocks_cover_everything() {
        for workers in [1, 2, 3, 8] {
            let pool = WorkStealPool::new(PoolSpec {
                workers,
                seed: 99,
                plan: ShardPlan::RoundRobin(1),
                cancel: None,
            });
            let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
            let stats = pool.run(counts.len(), |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(stats.executed, 100);
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }
}
