//! Concurrency stress tests for the work-stealing pool: randomized steal
//! pressure, a panicking task in the mix, and exactness of the shared `obs`
//! counters the campaign runner aggregates through the pool (mirroring the
//! 8-thread contention test in `crates/obs`).

use std::panic::catch_unwind;
use std::sync::atomic::{AtomicU32, Ordering};

use fidelity_par::{PoolSpec, ShardPlan, WorkStealPool};

/// N workers × M tasks under every shard plan and a sweep of seeds: every
/// task executes exactly once, the pool returns (scoped workers exited), and
/// the executed count is exact.
#[test]
fn no_lost_or_duplicated_tasks_under_steal_pressure() {
    const TASKS: usize = 600;
    for workers in [1, 2, 3, 4, 8] {
        for (seed, plan) in [
            (1, ShardPlan::Balanced),
            (2, ShardPlan::RoundRobin(1)),
            (3, ShardPlan::RoundRobin(7)),
            (4, ShardPlan::Funnel),
            (0xDEAD_BEEF, ShardPlan::Funnel),
        ] {
            let pool = WorkStealPool::new(PoolSpec {
                workers,
                seed,
                plan,
                cancel: None,
            });
            let counts: Vec<AtomicU32> = (0..TASKS).map(|_| AtomicU32::new(0)).collect();
            let stats = pool.run(TASKS, |i| {
                // Uneven task costs drive rebalancing: every 13th task is
                // ~100x heavier than the rest.
                let spins = if i % 13 == 0 { 5_000 } else { 50 };
                for s in 0..spins {
                    std::hint::black_box(s);
                }
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(
                stats.executed, TASKS as u64,
                "workers={workers} plan={plan:?}"
            );
            assert_eq!(stats.panicked, 0);
            assert_eq!(stats.workers, workers.min(TASKS));
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Relaxed),
                    1,
                    "task {i} ran wrong number of times (workers={workers}, plan={plan:?})"
                );
            }
        }
    }
}

/// A panicking task in the middle of a funnel run: the payload is re-raised
/// from `run`, but only after every other task executed exactly once — the
/// panic neither loses nor duplicates work, and the pool still shuts down
/// cleanly (the scope in `run` cannot return with live workers).
#[test]
fn panicking_task_loses_nothing() {
    const TASKS: usize = 300;
    let counts: Vec<AtomicU32> = (0..TASKS).map(|_| AtomicU32::new(0)).collect();
    let pool = WorkStealPool::new(PoolSpec {
        workers: 8,
        seed: 11,
        plan: ShardPlan::Funnel,
        cancel: None,
    });
    let result = catch_unwind(|| {
        pool.run(TASKS, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            assert!(i != 150, "chaos: task 150 panics");
        });
    });
    assert!(result.is_err(), "the task panic must be re-raised");
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} lost or duplicated");
    }
}

/// Exactness of `obs` metrics under pool contention: 8 workers hammering one
/// shared counter and histogram through the pool lose no increments. This is
/// the cross-crate version of the obs-internal contention test — the
/// campaign runner relies on it when aggregating per-worker telemetry.
#[test]
fn obs_counters_are_exact_across_workers() {
    const TASKS: usize = 4_000;
    const PER_TASK: u64 = 5;
    let counter = fidelity_obs::metrics::counter("par.stress.increments");
    let histogram = fidelity_obs::metrics::histogram("par.stress.values");
    let before = counter.get();
    let pool = WorkStealPool::new(PoolSpec {
        workers: 8,
        seed: 77,
        plan: ShardPlan::RoundRobin(3),
        cancel: None,
    });
    let stats = pool.run(TASKS, |i| {
        for _ in 0..PER_TASK {
            counter.inc();
        }
        histogram.record(i as u64);
    });
    assert_eq!(stats.executed, TASKS as u64);
    assert_eq!(
        counter.get() - before,
        TASKS as u64 * PER_TASK,
        "lost counter increments under contention"
    );
    assert_eq!(histogram.count(), TASKS as u64);
}

/// Repeated runs on one pool object: the pool is reusable configuration,
/// and sequential runs do not interfere (fresh deques and termination state
/// per run).
#[test]
fn pool_is_reusable_across_runs() {
    let pool = WorkStealPool::new(PoolSpec::new(4));
    for round in 0..5 {
        let counts: Vec<AtomicU32> = (0..128).map(|_| AtomicU32::new(0)).collect();
        let stats = pool.run(128, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.executed, 128, "round {round}");
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
