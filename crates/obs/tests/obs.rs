//! Integration tests for the observability layer: histogram bucket
//! boundaries (including the +∞ overflow bucket and zero-valued samples),
//! JSONL sink round-trips through the trace parser, and counter exactness
//! under concurrency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fidelity_obs::json::Json;
use fidelity_obs::metrics::{bucket_index, bucket_upper_bound, Counter, Histogram, LOG2_BUCKETS};
use fidelity_obs::trace::{JsonlSink, TraceEvent, TraceSink, Value};
use fidelity_obs::{json, report};

#[test]
fn histogram_bucket_boundaries_are_exact() {
    // Bucket 0 is exact zeros; bucket i (i >= 1) is [2^(i-1), 2^i).
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    for i in 1..LOG2_BUCKETS {
        let lower = 1u64 << (i - 1);
        assert_eq!(bucket_index(lower), i, "lower edge of bucket {i}");
        assert_eq!(bucket_index(2 * lower - 1), i, "upper edge of bucket {i}");
    }
    // Everything at or past 2^(LOG2_BUCKETS-1) lands in the overflow bucket.
    assert_eq!(bucket_index(1u64 << (LOG2_BUCKETS - 1)), LOG2_BUCKETS);
    assert_eq!(bucket_index(u64::MAX), LOG2_BUCKETS);

    assert_eq!(bucket_upper_bound(0), Some(1));
    assert_eq!(bucket_upper_bound(1), Some(2));
    assert_eq!(
        bucket_upper_bound(LOG2_BUCKETS - 1),
        Some(1u64 << (LOG2_BUCKETS - 1))
    );
    assert_eq!(
        bucket_upper_bound(LOG2_BUCKETS),
        None,
        "overflow bucket is +inf"
    );
}

#[test]
fn histogram_handles_zero_and_overflow_samples() {
    let h = Histogram::default();
    h.record(0);
    h.record(0);
    h.record(7);
    h.record(u64::MAX / 2); // far past the last finite bucket
    let snap = h.snapshot();
    assert_eq!(snap.count, 4);
    assert_eq!(snap.buckets[0], 2, "zeros land in bucket 0");
    assert_eq!(snap.buckets[bucket_index(7)], 1);
    assert_eq!(snap.overflow(), 1);
    // p50 falls among the zeros; p99 falls in the overflow bucket (+inf).
    assert_eq!(snap.quantile_bound(0.50), Some(1));
    assert_eq!(snap.quantile_bound(0.99), None);
    assert!(snap.mean() > 0.0);
}

#[test]
fn jsonl_sink_round_trips_through_the_parser() {
    let dir = std::env::temp_dir().join(format!("fidelity-obs-test-{}", std::process::id()));
    let path = dir.join("roundtrip.jsonl");
    let sink = JsonlSink::create(&path).expect("create sink");

    let events: &[(&str, &[(&'static str, Value<'_>)])] = &[
        (
            "campaign.start",
            &[("cells", Value::U64(12)), ("seed", Value::U64(7))],
        ),
        (
            "cell.done",
            &[
                ("node", Value::U64(3)),
                ("cat", Value::Str("dp_s1_act \"q\"")),
                ("masked", Value::U64(9)),
                ("p", Value::F64(0.75)),
                ("timed_out", Value::Bool(false)),
            ],
        ),
        (
            "campaign.finish",
            &[("masked", Value::U64(9)), ("delta", Value::I64(-2))],
        ),
    ];
    for (i, (name, fields)) in events.iter().enumerate() {
        sink.record(&TraceEvent {
            name,
            t_us: i as u64 * 10,
            seq: i as u64,
            fields,
        });
    }
    sink.flush().expect("flush");
    assert_eq!(sink.dropped(), 0);

    let text = std::fs::read_to_string(&path).expect("read trace");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (line, (name, _)) in lines.iter().zip(events) {
        let v = json::parse(line).expect("every line parses");
        assert_eq!(v.get("ev").and_then(Json::as_str), Some(*name));
    }
    let cell = json::parse(lines[1]).expect("cell line");
    assert_eq!(
        cell.get("cat").and_then(Json::as_str),
        Some("dp_s1_act \"q\"")
    );
    assert_eq!(cell.get("p").and_then(Json::as_f64), Some(0.75));

    // The report layer consumes the same file end to end.
    let summary = report::summarize_file(&path).expect("summarize");
    assert_eq!(summary.events, 3);
    assert_eq!(summary.cells_done, 1);
    assert_eq!(summary.masked, 9);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn counters_are_exact_under_concurrency() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let counter = Arc::new(Counter::default());
    let histogram = Arc::new(Histogram::default());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = Arc::clone(&counter);
            let histogram = Arc::clone(&histogram);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total);
    let snap = histogram.snapshot();
    assert_eq!(snap.count, total);
    assert_eq!(snap.buckets.iter().sum::<u64>(), total);
}

#[test]
fn memory_sink_sees_every_event_from_every_thread() {
    // Exercise the full emit path (sequence numbering + sink dispatch)
    // concurrently through a counting sink.
    struct CountingSink(AtomicU64);
    impl TraceSink for CountingSink {
        fn record(&self, _event: &TraceEvent<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    let sink = Arc::new(CountingSink(AtomicU64::new(0)));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let sink = Arc::clone(&sink);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    fidelity_obs::trace::record_now(
                        sink.as_ref(),
                        "bench.tick",
                        &[("i", Value::U64(i))],
                    );
                }
            });
        }
    });
    assert_eq!(sink.0.load(Ordering::Relaxed), THREADS * PER_THREAD);
}
