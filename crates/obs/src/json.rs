//! Minimal JSON support for the JSONL trace format.
//!
//! The build environment is offline (no serde), and the trace schema is flat
//! and small, so this module hand-rolls the two halves the observability
//! layer needs: string escaping for the writer, and a recursive-descent
//! parser for `fidelity report` and the round-trip tests. The parser accepts
//! general JSON (nested objects/arrays included) so traces survive schema
//! growth.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Numbers are kept as `f64` (trace fields are counts,
/// durations, and probabilities — all exactly representable or tolerant).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order stable for tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, when a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Exact integrality test on a parsed JSON number: `fract() == 0.0`
            // is the definition of "integral", not a rounding-sensitive verdict.
            // statcheck:allow(float-eq)
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup, when an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Appends `s` as a JSON string literal (quotes included) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/∞, and telemetry readers prefer a missing value over a
/// parse error).
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parses one JSON document (one trace line).
///
/// # Errors
///
/// Returns a human-readable description with a byte offset on malformed
/// input or trailing garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream: step back and take
                    // the full character.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(&rest[..utf8_len(rest[0])])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_trace_record() {
        let v = parse(r#"{"t_us":12,"ev":"cell.done","layer":"conv block 2","p":0.5}"#).unwrap();
        assert_eq!(v.get("t_us").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("cell.done"));
        assert_eq!(v.get("p").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{0001}ü";
        let mut line = String::from("{\"k\":");
        escape_into(&mut line, nasty);
        line.push('}');
        let v = parse(&line).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let mut s = String::new();
        number_into(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        number_into(&mut s, 2.5);
        assert_eq!(s, "2.5");
    }
}
