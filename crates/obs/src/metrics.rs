//! Atomic metrics: counters, gauges, and fixed-bucket log2 histograms, with
//! a process-global registry snapshotted into a [`MetricsReport`].
//!
//! Recording is lock-free (relaxed atomics) and always-on — a counter
//! increment costs one `fetch_add`, cheap against the microsecond-scale
//! injections it counts. The expensive part of latency metrics is reading
//! the clock, which callers gate behind [`crate::timing_enabled`] via
//! [`crate::clock::Stopwatch::start_if`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of finite log2 buckets. Bucket `0` holds exact zeros; bucket `i`
/// (1 ≤ i < `LOG2_BUCKETS`) holds `[2^(i-1), 2^i)`; bucket `LOG2_BUCKETS`
/// is the +∞ overflow bucket, `[2^(LOG2_BUCKETS-1), ∞)`. With 40 finite
/// buckets the histogram resolves nanosecond latencies up to ~550 s and
/// cycle counts up to ~5·10¹¹ before overflowing.
pub const LOG2_BUCKETS: usize = 40;

/// The bucket index a value lands in (see [`LOG2_BUCKETS`]).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(LOG2_BUCKETS)
    }
}

/// The exclusive upper bound of bucket `i`, or `None` for the overflow
/// bucket (+∞).
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i >= LOG2_BUCKETS {
        None
    } else if i == 0 {
        Some(1)
    } else {
        Some(1u64 << i)
    }
}

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; LOG2_BUCKETS + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sample only when `Some` — pairs with
    /// [`crate::clock::Stopwatch::elapsed_ns`] so disabled timing costs one
    /// branch.
    pub fn record_opt(&self, v: Option<u64>) {
        if let Some(v) = v {
            self.record(v);
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (individual loads are atomic;
    /// concurrent recording may skew count/sum by in-flight samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts (`LOG2_BUCKETS + 1` entries, last is overflow).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0 < q ≤ 1);
    /// `None` when the quantile falls in the overflow bucket or the
    /// histogram is empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        None
    }

    /// Samples in the overflow (+∞) bucket.
    pub fn overflow(&self) -> u64 {
        self.buckets.last().copied().unwrap_or(0)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The counter registered under `name`, creating it on first use. A name
/// already registered as a different kind yields a detached instance (still
/// functional, absent from reports) — telemetry must not panic the process.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => Arc::clone(c),
        _ => Arc::new(Counter::default()),
    }
}

/// The gauge registered under `name` (see [`counter`] for the semantics).
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => Arc::clone(g),
        _ => Arc::new(Gauge::default()),
    }
}

/// The histogram registered under `name` (see [`counter`] for the
/// semantics).
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
    {
        Metric::Histogram(h) => Arc::clone(h),
        _ => Arc::new(Histogram::default()),
    }
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Snapshots the registry.
pub fn snapshot() -> MetricsReport {
    let reg = lock_registry();
    let mut report = MetricsReport::default();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => report.counters.push((name.clone(), c.get())),
            Metric::Gauge(g) => report.gauges.push((name.clone(), g.get())),
            Metric::Histogram(h) => report.histograms.push((name.clone(), h.snapshot())),
        }
    }
    report
}

fn bound_str(b: Option<u64>) -> String {
    b.map_or_else(|| "+inf".to_owned(), |v| v.to_string())
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics")?;
        for (name, v) in &self.counters {
            writeln!(f, "  counter   {name:<32} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "  gauge     {name:<32} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  histogram {name:<32} count {} mean {:.0} p50<={} p90<={} p99<={} overflow {}",
                h.count,
                h.mean(),
                bound_str(h.quantile_bound(0.50)),
                bound_str(h.quantile_bound(0.90)),
                bound_str(h.quantile_bound(0.99)),
                h.overflow(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_same_instance() {
        let a = counter("test.metrics.same");
        let b = counter("test.metrics.same");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_panicking() {
        let c = counter("test.metrics.kind");
        c.inc();
        let h = histogram("test.metrics.kind");
        h.record(5);
        assert_eq!(h.count(), 1); // detached but functional
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_lists_registered_metrics() {
        counter("test.metrics.snap").add(7);
        gauge("test.metrics.snapg").set(-3);
        let report = snapshot();
        assert!(report
            .counters
            .iter()
            .any(|(n, v)| n == "test.metrics.snap" && *v == 7));
        assert!(report
            .gauges
            .iter()
            .any(|(n, v)| n == "test.metrics.snapg" && *v == -3));
        assert!(!format!("{report}").is_empty());
    }
}
