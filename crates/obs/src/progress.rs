//! Live campaign progress: injections/sec, ETA, running masking estimates
//! with Wilson bounds, and failure-budget consumption, rendered to stderr.
//!
//! The reporter is fed by the campaign runner through lock-free atomic
//! recording calls; rendering happens opportunistically from whichever
//! worker thread crosses the configured interval (no dedicated thread, no
//! locks on the hot path). On a terminal the line redraws in place (`\r`);
//! when stderr is redirected (CI logs) each render is a plain line.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::clock;
use crate::stats::wilson95;
use crate::trace::SinkHandle;

/// How a campaign's progress should be reported.
#[derive(Debug, Clone)]
pub struct ProgressSpec {
    /// Minimum time between renders.
    pub interval: Duration,
    /// Render the live line to stderr. Services that consume snapshots
    /// programmatically (via [`ProgressSpec::share`]) turn this off.
    pub render: bool,
    /// Optional shared outlet: every render also publishes a
    /// [`ProgressSnapshot`] here, for status endpoints and event streams.
    pub share: Option<ProgressShare>,
    /// Optional per-campaign trace outlet: the runner mirrors its lifecycle
    /// events here in addition to the process-global sink, so a service can
    /// keep one trace file per job. Not part of any campaign fingerprint.
    pub sink: Option<SinkHandle>,
}

impl Default for ProgressSpec {
    fn default() -> Self {
        ProgressSpec {
            interval: Duration::from_millis(500),
            render: true,
            share: None,
            sink: None,
        }
    }
}

/// Coarse flip-flop category kind, as the progress line tallies masking.
/// (The observability crate is dependency-free, so it cannot name
/// `fidelity_accel::ff::FfCategory`; the campaign runner maps onto this.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoryKind {
    /// Datapath FFs (any stage × variable).
    Datapath,
    /// Local-control FFs.
    LocalControl,
    /// Global-control FFs.
    GlobalControl,
}

impl CategoryKind {
    const ALL: [CategoryKind; 3] = [
        CategoryKind::Datapath,
        CategoryKind::LocalControl,
        CategoryKind::GlobalControl,
    ];

    fn short(self) -> &'static str {
        match self {
            CategoryKind::Datapath => "dp",
            CategoryKind::LocalControl => "lc",
            CategoryKind::GlobalControl => "gc",
        }
    }

    fn index(self) -> usize {
        match self {
            CategoryKind::Datapath => 0,
            CategoryKind::LocalControl => 1,
            CategoryKind::GlobalControl => 2,
        }
    }
}

/// Injection outcome, as the progress line tallies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Fault masked.
    Masked,
    /// Application output error.
    OutputError,
    /// System anomaly (including watchdog resets).
    Anomaly,
}

#[derive(Debug, Default)]
struct KindTally {
    samples: AtomicU64,
    masked: AtomicU64,
}

/// Per-category slice of a [`ProgressSnapshot`].
#[derive(Debug, Clone)]
pub struct KindSnapshot {
    /// Category the tally covers.
    pub kind: CategoryKind,
    /// Injections tallied for this category.
    pub samples: u64,
    /// Masked outcomes.
    pub masked: u64,
    /// Wilson 95% lower bound on the masking probability.
    pub lo: f64,
    /// Wilson 95% upper bound.
    pub hi: f64,
}

/// A point-in-time copy of a campaign's progress counters, with derived
/// rates and Wilson bounds — the machine-readable twin of the stderr line.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// Campaign label (network name).
    pub label: String,
    /// Cells finished so far, including restored ones.
    pub cells_done: usize,
    /// Total cells planned.
    pub cells_total: usize,
    /// Cells restored from a checkpoint at start.
    pub restored: usize,
    /// Injections run.
    pub injections: u64,
    /// Masked outcomes.
    pub masked: u64,
    /// Application output errors.
    pub output_error: u64,
    /// System anomalies.
    pub anomaly: u64,
    /// Injections per second since the campaign started.
    pub rate_per_sec: f64,
    /// Wilson 95% lower bound on the overall masking probability.
    pub masked_lo: f64,
    /// Wilson 95% upper bound.
    pub masked_hi: f64,
    /// Per-category tallies (only categories with samples).
    pub per_kind: Vec<KindSnapshot>,
    /// Cell attempts retried.
    pub retries: u64,
    /// Watchdog-classified injections.
    pub watchdog: u64,
    /// Cells that exhausted their retries.
    pub failures: usize,
    /// The campaign's failure budget.
    pub failure_budget: usize,
    /// Microseconds since the campaign started.
    pub elapsed_us: u64,
    /// Estimated seconds to completion (upper bound), when the rate is
    /// non-zero.
    pub eta_secs: Option<f64>,
    /// Adaptive campaigns: strata whose uncertainty contribution has
    /// resolved below their share of the target ε. 0 for fixed campaigns.
    pub strata_resolved: usize,
    /// Adaptive campaigns: strata that carry uncertainty at all. 0 for
    /// fixed campaigns (the strata display is then suppressed).
    pub strata_total: usize,
    /// Whether this is the final snapshot of the run.
    pub finished: bool,
}

impl ProgressSnapshot {
    /// Renders the snapshot as one JSON object (the event-stream wire
    /// format; hand-rolled via [`crate::json`], like the trace sink).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_str_field(&mut s, "label", &self.label);
        push_num_field(&mut s, "cells_done", self.cells_done as f64);
        push_num_field(&mut s, "cells_total", self.cells_total as f64);
        push_num_field(&mut s, "restored", self.restored as f64);
        push_num_field(&mut s, "injections", self.injections as f64);
        push_num_field(&mut s, "masked", self.masked as f64);
        push_num_field(&mut s, "output_error", self.output_error as f64);
        push_num_field(&mut s, "anomaly", self.anomaly as f64);
        push_num_field(&mut s, "rate_per_sec", self.rate_per_sec);
        push_num_field(&mut s, "masked_lo", self.masked_lo);
        push_num_field(&mut s, "masked_hi", self.masked_hi);
        s.push_str("\"per_kind\":[");
        for (i, k) in self.per_kind.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_str_field(&mut s, "kind", k.kind.short());
            push_num_field(&mut s, "samples", k.samples as f64);
            push_num_field(&mut s, "masked", k.masked as f64);
            push_num_field(&mut s, "lo", k.lo);
            push_num_field(&mut s, "hi", k.hi);
            s.pop(); // trailing comma
            s.push('}');
        }
        s.push_str("],");
        push_num_field(&mut s, "retries", self.retries as f64);
        push_num_field(&mut s, "watchdog", self.watchdog as f64);
        push_num_field(&mut s, "failures", self.failures as f64);
        push_num_field(&mut s, "failure_budget", self.failure_budget as f64);
        push_num_field(&mut s, "elapsed_us", self.elapsed_us as f64);
        match self.eta_secs {
            Some(eta) => push_num_field(&mut s, "eta_secs", eta),
            None => s.push_str("\"eta_secs\":null,"),
        }
        push_num_field(&mut s, "strata_resolved", self.strata_resolved as f64);
        push_num_field(&mut s, "strata_total", self.strata_total as f64);
        s.push_str("\"finished\":");
        s.push_str(if self.finished { "true" } else { "false" });
        s.push('}');
        s
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    crate::json::escape_into(out, key);
    out.push(':');
    crate::json::escape_into(out, value);
    out.push(',');
}

fn push_num_field(out: &mut String, key: &str, value: f64) {
    crate::json::escape_into(out, key);
    out.push(':');
    crate::json::number_into(out, value);
    out.push(',');
}

/// Bounded per-subscriber buffer: a stalled event-stream consumer loses
/// intermediate snapshots (each one supersedes the last) instead of ever
/// back-pressuring the campaign.
const SUBSCRIBER_BUFFER: usize = 64;

#[derive(Debug, Default)]
struct ShareInner {
    latest: Mutex<Option<ProgressSnapshot>>,
    seq: AtomicU64,
    subscribers: Mutex<Vec<mpsc::SyncSender<ProgressSnapshot>>>,
}

/// A cloneable snapshot outlet shared between a running campaign and its
/// observers. The campaign publishes on every render; observers either poll
/// [`ProgressShare::latest`] (status endpoints) or [`ProgressShare::subscribe`]
/// for a pushed stream (event streams). Publishing never blocks: slow
/// subscribers drop intermediate snapshots.
#[derive(Debug, Clone, Default)]
pub struct ProgressShare {
    inner: Arc<ShareInner>,
}

impl ProgressShare {
    /// A fresh share with no snapshot yet.
    pub fn new() -> Self {
        ProgressShare::default()
    }

    /// The most recent snapshot, if any render has happened.
    pub fn latest(&self) -> Option<ProgressSnapshot> {
        self.inner
            .latest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Monotonic publish counter (0 before the first snapshot).
    pub fn seq(&self) -> u64 {
        self.inner.seq.load(Ordering::Acquire)
    }

    /// Subscribes to pushed snapshots. The stream ends (receiver errors)
    /// when every publisher clone of the share is gone; consumers should
    /// also stop on a snapshot with `finished == true`.
    pub fn subscribe(&self) -> mpsc::Receiver<ProgressSnapshot> {
        let (tx, rx) = mpsc::sync_channel(SUBSCRIBER_BUFFER);
        self.inner
            .subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(tx);
        rx
    }

    /// Publishes one snapshot: stores it as latest, bumps the sequence
    /// counter, and pushes it to every live subscriber (dropping it for
    /// subscribers with full buffers, pruning disconnected ones).
    pub fn publish(&self, snap: ProgressSnapshot) {
        {
            let mut latest = self
                .inner
                .latest
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *latest = Some(snap.clone());
        }
        self.inner.seq.fetch_add(1, Ordering::AcqRel);
        let mut subs = self
            .inner
            .subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        subs.retain(|tx| match tx.try_send(snap.clone()) {
            Ok(()) | Err(mpsc::TrySendError::Full(_)) => true,
            Err(mpsc::TrySendError::Disconnected(_)) => false,
        });
    }
}

/// Check the clock only every this many injections — keeps the hot path at
/// one `fetch_add` per injection between renders.
const RENDER_CHECK_EVERY: u64 = 128;

/// Live telemetry for one running campaign.
#[derive(Debug)]
pub struct CampaignProgress {
    label: String,
    interval_us: u64,
    cells_total: usize,
    samples_per_cell: usize,
    failure_budget: usize,
    start_us: u64,
    tty: bool,
    render_stderr: bool,
    share: Option<ProgressShare>,

    restored: AtomicUsize,
    cells_done: AtomicUsize,
    injections: AtomicU64,
    masked: AtomicU64,
    output_error: AtomicU64,
    anomaly: AtomicU64,
    per_kind: [KindTally; 3],
    retries: AtomicU64,
    watchdog: AtomicU64,
    failures: AtomicUsize,
    strata_resolved: AtomicUsize,
    strata_total: AtomicUsize,

    last_render_us: AtomicU64,
    rendering: AtomicBool,
    rendered_once: AtomicBool,
    finished: AtomicBool,
}

impl CampaignProgress {
    /// Creates a reporter for a campaign of `cells_total` cells, each up to
    /// `samples_per_cell` injections, with the given failure budget.
    pub fn new(
        label: impl Into<String>,
        spec: &ProgressSpec,
        cells_total: usize,
        samples_per_cell: usize,
        failure_budget: usize,
    ) -> Self {
        CampaignProgress {
            label: label.into(),
            interval_us: u64::try_from(spec.interval.as_micros()).unwrap_or(u64::MAX),
            cells_total,
            samples_per_cell,
            failure_budget,
            start_us: clock::since_epoch_us(),
            tty: std::io::stderr().is_terminal(),
            render_stderr: spec.render,
            share: spec.share.clone(),
            restored: AtomicUsize::new(0),
            cells_done: AtomicUsize::new(0),
            injections: AtomicU64::new(0),
            masked: AtomicU64::new(0),
            output_error: AtomicU64::new(0),
            anomaly: AtomicU64::new(0),
            per_kind: Default::default(),
            retries: AtomicU64::new(0),
            watchdog: AtomicU64::new(0),
            failures: AtomicUsize::new(0),
            strata_resolved: AtomicUsize::new(0),
            strata_total: AtomicUsize::new(0),
            last_render_us: AtomicU64::new(0),
            rendering: AtomicBool::new(false),
            rendered_once: AtomicBool::new(false),
            finished: AtomicBool::new(false),
        }
    }

    /// Reports cells restored from a checkpoint, so the display resumes from
    /// where the interrupted campaign stopped instead of from zero.
    pub fn set_restored(&self, restored: usize) {
        self.restored.store(restored, Ordering::Relaxed);
        self.maybe_render(true);
    }

    /// Records one injection outcome.
    pub fn on_injection(&self, kind: CategoryKind, outcome: OutcomeKind) {
        let n = self.injections.fetch_add(1, Ordering::Relaxed) + 1;
        match outcome {
            OutcomeKind::Masked => &self.masked,
            OutcomeKind::OutputError => &self.output_error,
            OutcomeKind::Anomaly => &self.anomaly,
        }
        .fetch_add(1, Ordering::Relaxed);
        let tally = &self.per_kind[kind.index()];
        tally.samples.fetch_add(1, Ordering::Relaxed);
        if outcome == OutcomeKind::Masked {
            tally.masked.fetch_add(1, Ordering::Relaxed);
        }
        if n.is_multiple_of(RENDER_CHECK_EVERY) {
            self.maybe_render(false);
        }
    }

    /// Reports adaptive per-stratum convergence: `resolved` of `total`
    /// strata have their uncertainty contribution below their share of the
    /// target ε. Called at every wave barrier; fixed campaigns never call
    /// it, which keeps the strata segment off their display.
    pub fn set_strata(&self, resolved: usize, total: usize) {
        self.strata_resolved.store(resolved, Ordering::Relaxed);
        self.strata_total.store(total, Ordering::Relaxed);
        self.maybe_render(false);
    }

    /// Records a completed cell.
    pub fn on_cell_done(&self) {
        self.cells_done.fetch_add(1, Ordering::Relaxed);
        self.maybe_render(false);
    }

    /// Records a retried cell attempt.
    pub fn on_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a watchdog-classified injection (deadline overrun).
    pub fn on_watchdog(&self) {
        self.watchdog.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cell that exhausted its retries (failure-budget
    /// consumption).
    pub fn on_cell_failed(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.maybe_render(false);
    }

    /// Forces a final render (publishing a `finished` snapshot to the
    /// share) and terminates the in-place line.
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Relaxed);
        self.maybe_render(true);
        // Cosmetic render state: the flag only decides whether a trailing
        // newline is printed, and `finish` runs after every renderer call
        // has completed.
        // statcheck:allow(relaxed-flag)
        if self.render_stderr && self.tty && self.rendered_once.load(Ordering::Relaxed) {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
        }
    }

    /// A point-in-time copy of the counters with derived rates and bounds —
    /// the same data the stderr line renders, machine-readable.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.snapshot_at(clock::since_epoch_us())
    }

    fn snapshot_at(&self, now_us: u64) -> ProgressSnapshot {
        let restored = self.restored.load(Ordering::Relaxed);
        let done = self.cells_done.load(Ordering::Relaxed) + restored;
        let injections = self.injections.load(Ordering::Relaxed);
        let masked = self.masked.load(Ordering::Relaxed);
        let elapsed_us = now_us.saturating_sub(self.start_us);
        let elapsed_s = elapsed_us as f64 / 1e6;
        let rate = if elapsed_s > 0.0 {
            injections as f64 / elapsed_s
        } else {
            0.0
        };
        // ETA from the remaining-cell injection estimate at the current rate
        // (adaptive sampling can finish cells early, so this is an upper
        // bound).
        let remaining_cells = self.cells_total.saturating_sub(done);
        let remaining_inj = remaining_cells as u64 * self.samples_per_cell as u64;
        let eta_secs = (rate > 0.0).then(|| remaining_inj as f64 / rate);
        let (lo, hi) = wilson95(masked as usize, injections as usize);
        let per_kind = CategoryKind::ALL
            .iter()
            .filter_map(|&kind| {
                let t = &self.per_kind[kind.index()];
                let n = t.samples.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let m = t.masked.load(Ordering::Relaxed);
                let (klo, khi) = wilson95(m as usize, n as usize);
                Some(KindSnapshot {
                    kind,
                    samples: n,
                    masked: m,
                    lo: klo,
                    hi: khi,
                })
            })
            .collect();
        ProgressSnapshot {
            label: self.label.clone(),
            cells_done: done,
            cells_total: self.cells_total,
            restored,
            injections,
            masked,
            output_error: self.output_error.load(Ordering::Relaxed),
            anomaly: self.anomaly.load(Ordering::Relaxed),
            rate_per_sec: rate,
            masked_lo: lo,
            masked_hi: hi,
            per_kind,
            retries: self.retries.load(Ordering::Relaxed),
            watchdog: self.watchdog.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            failure_budget: self.failure_budget,
            elapsed_us,
            eta_secs,
            strata_resolved: self.strata_resolved.load(Ordering::Relaxed),
            strata_total: self.strata_total.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
        }
    }

    fn maybe_render(&self, force: bool) {
        let now_us = clock::since_epoch_us();
        let last = self.last_render_us.load(Ordering::Relaxed);
        if !force && now_us.saturating_sub(last) < self.interval_us {
            return;
        }
        // Single-flight: a second thread arriving mid-render just skips.
        if self.rendering.swap(true, Ordering::Acquire) {
            return;
        }
        self.last_render_us.store(now_us, Ordering::Relaxed);
        self.render(now_us);
        self.rendering.store(false, Ordering::Release);
    }

    fn render(&self, now_us: u64) {
        let snap = self.snapshot_at(now_us);
        if let Some(share) = &self.share {
            share.publish(snap.clone());
        }
        if !self.render_stderr {
            return;
        }

        let eta = match snap.eta_secs {
            Some(s) => fmt_secs(s),
            None => "?".to_owned(),
        };
        let mut kinds = String::new();
        for k in &snap.per_kind {
            let _ = std::fmt::Write::write_fmt(
                &mut kinds,
                format_args!(
                    " {} {:.2}±{:.2}",
                    k.kind.short(),
                    k.masked as f64 / k.samples as f64,
                    (k.hi - k.lo) / 2.0
                ),
            );
        }
        let restored_note = if snap.restored > 0 {
            format!(" ({} restored)", snap.restored)
        } else {
            String::new()
        };
        let strata_note = if snap.strata_total > 0 {
            format!(" | strata {}/{}", snap.strata_resolved, snap.strata_total)
        } else {
            String::new()
        };
        let line = format!(
            "[{}] cells {}/{}{} | inj {} ({}/s) | mask {:.2} [{:.2},{:.2}]{}{} | retry {} wdt {} fail {}/{} | ETA {}",
            snap.label,
            snap.cells_done,
            snap.cells_total,
            restored_note,
            snap.injections,
            snap.rate_per_sec.round() as u64,
            if snap.injections == 0 {
                0.0
            } else {
                snap.masked as f64 / snap.injections as f64
            },
            snap.masked_lo,
            snap.masked_hi,
            kinds,
            strata_note,
            snap.retries,
            snap.watchdog,
            snap.failures,
            snap.failure_budget,
            eta,
        );
        self.rendered_once.store(true, Ordering::Relaxed);
        let mut err = std::io::stderr().lock();
        if self.tty {
            // Redraw in place, clearing any longer previous line.
            let _ = write!(err, "\r{line}\x1b[K");
            let _ = err.flush();
        } else {
            let _ = writeln!(err, "{line}");
        }
    }
}

fn fmt_secs(s: f64) -> String {
    let s = s.round().max(0.0) as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_finish_does_not_panic() {
        let p = CampaignProgress::new(
            "test",
            &ProgressSpec {
                interval: Duration::from_secs(3600),
                ..ProgressSpec::default()
            },
            4,
            10,
            2,
        );
        p.set_restored(1);
        for _ in 0..10 {
            p.on_injection(CategoryKind::Datapath, OutcomeKind::Masked);
        }
        p.on_injection(CategoryKind::GlobalControl, OutcomeKind::Anomaly);
        p.on_cell_done();
        p.on_retry();
        p.on_watchdog();
        p.on_cell_failed();
        p.finish();
        assert_eq!(p.injections.load(Ordering::Relaxed), 11);
        assert_eq!(p.masked.load(Ordering::Relaxed), 10);
        assert_eq!(p.cells_done.load(Ordering::Relaxed), 1);
        assert_eq!(p.restored.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn seconds_format_is_compact() {
        assert_eq!(fmt_secs(5.2), "5s");
        assert_eq!(fmt_secs(65.0), "1m05s");
        assert_eq!(fmt_secs(3700.0), "1h01m");
    }

    fn quiet_spec(share: Option<ProgressShare>) -> ProgressSpec {
        ProgressSpec {
            interval: Duration::from_micros(0),
            render: false,
            share,
            sink: None,
        }
    }

    #[test]
    fn snapshot_reflects_counters_and_serializes() {
        let p = CampaignProgress::new("snapnet", &quiet_spec(None), 4, 10, 2);
        for _ in 0..8 {
            p.on_injection(CategoryKind::Datapath, OutcomeKind::Masked);
        }
        p.on_injection(CategoryKind::Datapath, OutcomeKind::OutputError);
        p.on_injection(CategoryKind::LocalControl, OutcomeKind::Anomaly);
        p.on_cell_done();
        let snap = p.snapshot();
        assert_eq!(snap.label, "snapnet");
        assert_eq!(snap.injections, 10);
        assert_eq!(snap.masked, 8);
        assert_eq!(snap.output_error, 1);
        assert_eq!(snap.anomaly, 1);
        assert_eq!(snap.cells_done, 1);
        assert_eq!(snap.cells_total, 4);
        assert!(!snap.finished);
        assert_eq!(snap.per_kind.len(), 2);
        let dp = &snap.per_kind[0];
        assert_eq!((dp.samples, dp.masked), (9, 8));
        assert!(dp.lo <= 8.0 / 9.0 && 8.0 / 9.0 <= dp.hi);
        // The JSON form parses back and carries the same counters.
        let json = crate::json::parse(&snap.to_json()).unwrap();
        assert_eq!(
            json.get("injections").and_then(crate::json::Json::as_u64),
            Some(10)
        );
        assert_eq!(
            json.get("label").and_then(crate::json::Json::as_str),
            Some("snapnet")
        );
        assert_eq!(
            json.get("per_kind").and_then(|v| match v {
                crate::json::Json::Arr(a) => Some(a.len()),
                _ => None,
            }),
            Some(2)
        );
    }

    #[test]
    fn strata_convergence_flows_into_snapshot_and_json() {
        let p = CampaignProgress::new("adaptive", &quiet_spec(None), 4, 10, 2);
        let before = p.snapshot();
        assert_eq!((before.strata_resolved, before.strata_total), (0, 0));
        p.set_strata(41, 54);
        let snap = p.snapshot();
        assert_eq!((snap.strata_resolved, snap.strata_total), (41, 54));
        let json = crate::json::parse(&snap.to_json()).unwrap();
        assert_eq!(
            json.get("strata_resolved")
                .and_then(crate::json::Json::as_u64),
            Some(41)
        );
        assert_eq!(
            json.get("strata_total").and_then(crate::json::Json::as_u64),
            Some(54)
        );
    }

    #[test]
    fn share_publishes_latest_and_streams_to_subscribers() {
        let share = ProgressShare::new();
        let rx = share.subscribe();
        let p = CampaignProgress::new("sharenet", &quiet_spec(Some(share.clone())), 2, 4, 0);
        assert_eq!(share.seq(), 0);
        for _ in 0..RENDER_CHECK_EVERY {
            p.on_injection(CategoryKind::Datapath, OutcomeKind::Masked);
        }
        assert!(share.seq() > 0, "render interval elapsed, must publish");
        let first = share.latest().unwrap();
        assert_eq!(first.label, "sharenet");
        p.finish();
        let last = share.latest().unwrap();
        assert!(last.finished);
        // The subscriber saw every published snapshot in order, ending with
        // the finished one.
        let mut streamed = Vec::new();
        while let Ok(s) = rx.try_recv() {
            streamed.push(s);
        }
        assert_eq!(streamed.len() as u64, share.seq());
        assert!(streamed.last().unwrap().finished);
    }

    #[test]
    fn slow_subscribers_never_block_publish() {
        let share = ProgressShare::new();
        let _rx = share.subscribe(); // never drained
        let p = CampaignProgress::new("noblock", &quiet_spec(Some(share.clone())), 1, 1, 0);
        // Publish far more snapshots than the subscriber buffer holds; the
        // campaign side must not stall or error.
        for _ in 0..(SUBSCRIBER_BUFFER as u64 + 16) * RENDER_CHECK_EVERY {
            p.on_injection(CategoryKind::Datapath, OutcomeKind::Masked);
        }
        p.finish();
        assert!(share.seq() > SUBSCRIBER_BUFFER as u64);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let share = ProgressShare::new();
        let rx = share.subscribe();
        drop(rx);
        let p = CampaignProgress::new("prune", &quiet_spec(Some(share.clone())), 1, 1, 0);
        p.on_cell_done();
        p.finish();
        assert!(share.seq() >= 1);
        assert!(share
            .inner
            .subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty());
    }
}
