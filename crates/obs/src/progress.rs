//! Live campaign progress: injections/sec, ETA, running masking estimates
//! with Wilson bounds, and failure-budget consumption, rendered to stderr.
//!
//! The reporter is fed by the campaign runner through lock-free atomic
//! recording calls; rendering happens opportunistically from whichever
//! worker thread crosses the configured interval (no dedicated thread, no
//! locks on the hot path). On a terminal the line redraws in place (`\r`);
//! when stderr is redirected (CI logs) each render is a plain line.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::clock;
use crate::stats::wilson95;

/// How a campaign's progress should be reported.
#[derive(Debug, Clone)]
pub struct ProgressSpec {
    /// Minimum time between renders.
    pub interval: Duration,
}

impl Default for ProgressSpec {
    fn default() -> Self {
        ProgressSpec {
            interval: Duration::from_millis(500),
        }
    }
}

/// Coarse flip-flop category kind, as the progress line tallies masking.
/// (The observability crate is dependency-free, so it cannot name
/// `fidelity_accel::ff::FfCategory`; the campaign runner maps onto this.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoryKind {
    /// Datapath FFs (any stage × variable).
    Datapath,
    /// Local-control FFs.
    LocalControl,
    /// Global-control FFs.
    GlobalControl,
}

impl CategoryKind {
    const ALL: [CategoryKind; 3] = [
        CategoryKind::Datapath,
        CategoryKind::LocalControl,
        CategoryKind::GlobalControl,
    ];

    fn short(self) -> &'static str {
        match self {
            CategoryKind::Datapath => "dp",
            CategoryKind::LocalControl => "lc",
            CategoryKind::GlobalControl => "gc",
        }
    }

    fn index(self) -> usize {
        match self {
            CategoryKind::Datapath => 0,
            CategoryKind::LocalControl => 1,
            CategoryKind::GlobalControl => 2,
        }
    }
}

/// Injection outcome, as the progress line tallies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Fault masked.
    Masked,
    /// Application output error.
    OutputError,
    /// System anomaly (including watchdog resets).
    Anomaly,
}

#[derive(Debug, Default)]
struct KindTally {
    samples: AtomicU64,
    masked: AtomicU64,
}

/// Check the clock only every this many injections — keeps the hot path at
/// one `fetch_add` per injection between renders.
const RENDER_CHECK_EVERY: u64 = 128;

/// Live telemetry for one running campaign.
#[derive(Debug)]
pub struct CampaignProgress {
    label: String,
    interval_us: u64,
    cells_total: usize,
    samples_per_cell: usize,
    failure_budget: usize,
    start_us: u64,
    tty: bool,

    restored: AtomicUsize,
    cells_done: AtomicUsize,
    injections: AtomicU64,
    masked: AtomicU64,
    output_error: AtomicU64,
    anomaly: AtomicU64,
    per_kind: [KindTally; 3],
    retries: AtomicU64,
    watchdog: AtomicU64,
    failures: AtomicUsize,

    last_render_us: AtomicU64,
    rendering: AtomicBool,
    rendered_once: AtomicBool,
}

impl CampaignProgress {
    /// Creates a reporter for a campaign of `cells_total` cells, each up to
    /// `samples_per_cell` injections, with the given failure budget.
    pub fn new(
        label: impl Into<String>,
        spec: &ProgressSpec,
        cells_total: usize,
        samples_per_cell: usize,
        failure_budget: usize,
    ) -> Self {
        CampaignProgress {
            label: label.into(),
            interval_us: u64::try_from(spec.interval.as_micros()).unwrap_or(u64::MAX),
            cells_total,
            samples_per_cell,
            failure_budget,
            start_us: clock::since_epoch_us(),
            tty: std::io::stderr().is_terminal(),
            restored: AtomicUsize::new(0),
            cells_done: AtomicUsize::new(0),
            injections: AtomicU64::new(0),
            masked: AtomicU64::new(0),
            output_error: AtomicU64::new(0),
            anomaly: AtomicU64::new(0),
            per_kind: Default::default(),
            retries: AtomicU64::new(0),
            watchdog: AtomicU64::new(0),
            failures: AtomicUsize::new(0),
            last_render_us: AtomicU64::new(0),
            rendering: AtomicBool::new(false),
            rendered_once: AtomicBool::new(false),
        }
    }

    /// Reports cells restored from a checkpoint, so the display resumes from
    /// where the interrupted campaign stopped instead of from zero.
    pub fn set_restored(&self, restored: usize) {
        self.restored.store(restored, Ordering::Relaxed);
        self.maybe_render(true);
    }

    /// Records one injection outcome.
    pub fn on_injection(&self, kind: CategoryKind, outcome: OutcomeKind) {
        let n = self.injections.fetch_add(1, Ordering::Relaxed) + 1;
        match outcome {
            OutcomeKind::Masked => &self.masked,
            OutcomeKind::OutputError => &self.output_error,
            OutcomeKind::Anomaly => &self.anomaly,
        }
        .fetch_add(1, Ordering::Relaxed);
        let tally = &self.per_kind[kind.index()];
        tally.samples.fetch_add(1, Ordering::Relaxed);
        if outcome == OutcomeKind::Masked {
            tally.masked.fetch_add(1, Ordering::Relaxed);
        }
        if n.is_multiple_of(RENDER_CHECK_EVERY) {
            self.maybe_render(false);
        }
    }

    /// Records a completed cell.
    pub fn on_cell_done(&self) {
        self.cells_done.fetch_add(1, Ordering::Relaxed);
        self.maybe_render(false);
    }

    /// Records a retried cell attempt.
    pub fn on_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a watchdog-classified injection (deadline overrun).
    pub fn on_watchdog(&self) {
        self.watchdog.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cell that exhausted its retries (failure-budget
    /// consumption).
    pub fn on_cell_failed(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.maybe_render(false);
    }

    /// Forces a final render and terminates the in-place line.
    pub fn finish(&self) {
        self.maybe_render(true);
        if self.tty && self.rendered_once.load(Ordering::Relaxed) {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
        }
    }

    fn maybe_render(&self, force: bool) {
        let now_us = clock::since_epoch_us();
        let last = self.last_render_us.load(Ordering::Relaxed);
        if !force && now_us.saturating_sub(last) < self.interval_us {
            return;
        }
        // Single-flight: a second thread arriving mid-render just skips.
        if self.rendering.swap(true, Ordering::Acquire) {
            return;
        }
        self.last_render_us.store(now_us, Ordering::Relaxed);
        self.render(now_us);
        self.rendering.store(false, Ordering::Release);
    }

    fn render(&self, now_us: u64) {
        let restored = self.restored.load(Ordering::Relaxed);
        let done = self.cells_done.load(Ordering::Relaxed) + restored;
        let injections = self.injections.load(Ordering::Relaxed);
        let masked = self.masked.load(Ordering::Relaxed);
        let failures = self.failures.load(Ordering::Relaxed);
        let elapsed_s = (now_us.saturating_sub(self.start_us)) as f64 / 1e6;
        let rate = if elapsed_s > 0.0 {
            injections as f64 / elapsed_s
        } else {
            0.0
        };

        // ETA from the remaining-cell injection estimate at the current rate
        // (adaptive sampling can finish cells early, so this is an upper
        // bound).
        let remaining_cells = self.cells_total.saturating_sub(done);
        let remaining_inj = remaining_cells as u64 * self.samples_per_cell as u64;
        let eta = if rate > 0.0 {
            fmt_secs(remaining_inj as f64 / rate)
        } else {
            "?".to_owned()
        };

        let (lo, hi) = wilson95(masked as usize, injections as usize);
        let mut kinds = String::new();
        for kind in CategoryKind::ALL {
            let t = &self.per_kind[kind.index()];
            let n = t.samples.load(Ordering::Relaxed) as usize;
            if n == 0 {
                continue;
            }
            let m = t.masked.load(Ordering::Relaxed) as usize;
            let (klo, khi) = wilson95(m, n);
            let _ = std::fmt::Write::write_fmt(
                &mut kinds,
                format_args!(
                    " {} {:.2}±{:.2}",
                    kind.short(),
                    m as f64 / n as f64,
                    (khi - klo) / 2.0
                ),
            );
        }

        let restored_note = if restored > 0 {
            format!(" ({restored} restored)")
        } else {
            String::new()
        };
        let line = format!(
            "[{}] cells {}/{}{} | inj {} ({}/s) | mask {:.2} [{:.2},{:.2}]{} | retry {} wdt {} fail {}/{} | ETA {}",
            self.label,
            done,
            self.cells_total,
            restored_note,
            injections,
            rate.round() as u64,
            if injections == 0 { 0.0 } else { masked as f64 / injections as f64 },
            lo,
            hi,
            kinds,
            self.retries.load(Ordering::Relaxed),
            self.watchdog.load(Ordering::Relaxed),
            failures,
            self.failure_budget,
            eta,
        );
        self.rendered_once.store(true, Ordering::Relaxed);
        let mut err = std::io::stderr().lock();
        if self.tty {
            // Redraw in place, clearing any longer previous line.
            let _ = write!(err, "\r{line}\x1b[K");
            let _ = err.flush();
        } else {
            let _ = writeln!(err, "{line}");
        }
    }
}

fn fmt_secs(s: f64) -> String {
    let s = s.round().max(0.0) as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_finish_does_not_panic() {
        let p = CampaignProgress::new(
            "test",
            &ProgressSpec {
                interval: Duration::from_secs(3600),
            },
            4,
            10,
            2,
        );
        p.set_restored(1);
        for _ in 0..10 {
            p.on_injection(CategoryKind::Datapath, OutcomeKind::Masked);
        }
        p.on_injection(CategoryKind::GlobalControl, OutcomeKind::Anomaly);
        p.on_cell_done();
        p.on_retry();
        p.on_watchdog();
        p.on_cell_failed();
        p.finish();
        assert_eq!(p.injections.load(Ordering::Relaxed), 11);
        assert_eq!(p.masked.load(Ordering::Relaxed), 10);
        assert_eq!(p.cells_done.load(Ordering::Relaxed), 1);
        assert_eq!(p.restored.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn seconds_format_is_compact() {
        assert_eq!(fmt_secs(5.2), "5s");
        assert_eq!(fmt_secs(65.0), "1m05s");
        assert_eq!(fmt_secs(3700.0), "1h01m");
    }
}
