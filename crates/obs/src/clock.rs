//! The workspace's single wall-clock authority.
//!
//! FIdelity's statistical claims require campaigns to be deterministic in
//! their seed, so the determinism lint bans wall-clock reads everywhere on
//! campaign paths (`fidelity lint`, rule `wall-clock`). Telemetry and the
//! watchdogs still need real time, though — this module is the one place
//! allowed to read it. Everything here is *monotonic* process time: absolute
//! (calendar) time is deliberately not exposed, so no timestamp can leak
//! host-identifying state into traces, and no instrumented value can ever
//! feed campaign statistics by accident.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The process epoch: first read wins, every timestamp is relative to it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // The single sanctioned wall-clock read: monotonic, telemetry-only.
    // statcheck:allow(wall-clock)
    *EPOCH.get_or_init(Instant::now)
}

/// Current monotonic instant. Watchdog deadlines and telemetry timing must
/// come from here rather than reading the clock directly, so the lint keeps
/// a single audited wall-clock site.
pub fn now() -> Instant {
    let e = epoch();
    // Monotonic watchdog/telemetry clock; never feeds campaign statistics.
    // statcheck:allow(wall-clock)
    let n = Instant::now();
    // `epoch()` is also the first read, so `n >= e` always holds; the max
    // guards the theoretical equal-instant case on coarse clocks.
    n.max(e)
}

/// Microseconds since the process epoch (the `t_us` field of trace events).
pub fn since_epoch_us() -> u64 {
    u64::try_from(now().duration_since(epoch()).as_micros()).unwrap_or(u64::MAX)
}

/// Nanoseconds since the process epoch. The self-profiler ([`crate::prof`])
/// uses this resolution because phase self-times can be sub-microsecond.
pub fn since_epoch_ns() -> u64 {
    u64::try_from(now().duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX)
}

/// A stopwatch that only reads the clock when armed — the facade's way of
/// keeping timing off hot paths unless telemetry asked for it.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts a running stopwatch.
    pub fn start() -> Self {
        Stopwatch { start: Some(now()) }
    }

    /// Starts only when `armed`; otherwise the stopwatch is inert and every
    /// later call is a no-op costing one branch.
    pub fn start_if(armed: bool) -> Self {
        Stopwatch {
            start: armed.then(now),
        }
    }

    /// Elapsed time, when the stopwatch was armed.
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|s| now().duration_since(s))
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`; `None` when inert.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.elapsed()
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Elapsed microseconds, saturating; `None` when inert.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.elapsed()
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_monotone_and_relative() {
        let a = since_epoch_us();
        let b = since_epoch_us();
        assert!(b >= a);
    }

    #[test]
    fn inert_stopwatch_reports_nothing() {
        let sw = Stopwatch::start_if(false);
        assert!(sw.elapsed_ns().is_none());
        let sw = Stopwatch::start_if(true);
        assert!(sw.elapsed_ns().is_some());
    }
}
